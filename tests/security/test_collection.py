"""Multi-document collection tests."""

import pytest

from repro.security import Policy, SubjectHierarchy
from repro.security.collection import (
    CollectionError,
    SecureCollection,
)
from repro.security.subjects import SubjectError
from repro.xupdate import Rename, UpdateContent


@pytest.fixture
def collection():
    c = SecureCollection()
    c.subjects.add_role("staff")
    c.subjects.add_role("nurse", member_of="staff")
    c.subjects.add_user("nina", member_of="nurse")
    c.subjects.add_user("admin_user", member_of="staff")
    c.policy.grant("read", "//node()", "staff")
    c.policy.deny("read", "//salary", "nurse")
    c.policy.deny("read", "//salary/text()", "nurse")
    c.policy.grant("update", "//bed/text()", "nurse")
    c.add_document("patients", "<patients><p1><bed>12</bed></p1></patients>")
    c.add_document(
        "payroll", "<payroll><emp><salary>9000</salary></emp></payroll>"
    )
    return c


class TestManagement:
    def test_names_and_membership(self, collection):
        assert collection.names() == ["patients", "payroll"]
        assert "patients" in collection
        assert len(collection) == 2

    def test_duplicate_name_rejected(self, collection):
        with pytest.raises(CollectionError):
            collection.add_document("patients", "<x/>")

    def test_unknown_document_rejected(self, collection):
        with pytest.raises(CollectionError):
            collection.database("ghost")

    def test_remove_document(self, collection):
        collection.remove_document("payroll")
        assert collection.names() == ["patients"]
        with pytest.raises(CollectionError):
            collection.remove_document("payroll")

    def test_mismatched_policy_rejected(self):
        subjects = SubjectHierarchy()
        other = SubjectHierarchy()
        with pytest.raises(ValueError):
            SecureCollection(subjects, Policy(other))

    def test_add_existing_document_object(self, collection):
        from repro.xmltree import parse_xml

        doc = parse_xml("<wards/>")
        db = collection.add_document("wards", doc)
        assert db.document is doc


class TestPolicySharing:
    def test_one_policy_governs_all_documents(self, collection):
        session = collection.login("nina")
        # Nurse sees patients fully...
        assert "bed" in session.read_xml("patients")
        # ...but salaries are pruned in the payroll document.
        assert "9000" not in session.read_xml("payroll")
        # Staff admin sees both.
        admin = collection.login("admin_user")
        assert "9000" in admin.read_xml("payroll")

    def test_policy_change_affects_every_document(self, collection):
        session = collection.login("admin_user")
        session.read_xml("payroll")  # warm
        collection.policy.deny("read", "//salary/text()", "staff")
        assert "9000" not in collection.login("admin_user").read_xml("payroll")

    def test_query_all(self, collection):
        session = collection.login("nina")
        counts = session.query_all("count(//*)")
        assert set(counts) == {"patients", "payroll"}
        assert counts["patients"] > 0


class TestWrites:
    def test_write_confined_to_one_document(self, collection):
        session = collection.login("nina")
        result = session.execute(
            "patients", UpdateContent("//bed", "7"), strict=True
        )
        assert result.fully_applied
        assert "7" in session.read_xml("patients")
        # Other document untouched.
        assert "<emp>" in collection.login("admin_user").read_xml("payroll")

    def test_denied_write_in_other_document(self, collection):
        session = collection.login("nina")
        result = session.execute(
            "payroll", Rename("//emp", "employee")
        )
        assert result.affected == []

    def test_shared_audit_log(self, collection):
        session = collection.login("nina")
        session.execute("patients", UpdateContent("//bed", "7"))
        session.execute("payroll", Rename("//emp", "employee"))
        users = {record.user for record in collection.audit}
        assert users == {"nina"}
        assert len(collection.audit) >= 2


class TestSessions:
    def test_role_cannot_login(self, collection):
        with pytest.raises(SubjectError):
            collection.login("nurse")

    def test_unknown_user_cannot_login(self, collection):
        with pytest.raises(SubjectError):
            collection.login("ghost")

    def test_lazy_enforcement_supported(self, collection):
        lazy = collection.login("nina", enforcement="lazy")
        materialized = collection.login("nina")
        assert lazy.read_xml("payroll") == materialized.read_xml("payroll")

    def test_per_document_sessions_cached(self, collection):
        session = collection.login("nina")
        assert session.session("patients") is session.session("patients")
