"""The section-2.2 covert channel, demonstrated and closed.

The paper's motivating attack: SQL (and the author's earlier XML model
[10]) evaluates write operations on the *source* database, so a user
holding only a write privilege can smuggle read predicates into the
operation's WHERE clause / PATH parameter and decode invisible data
from the success pattern:

    UPDATE user_A.employee SET salary=salary+100 WHERE salary > 3000;
    2 rows updated      -- user_B just learned something she cannot SELECT

Here the secretary (who may rename patient elements but may *not* read
diagnosis content) plays user_B and probes robert's diagnosis one
candidate illness at a time.  Under the insecure source-evaluated
semantics the probe works perfectly; under the paper's view-evaluated
semantics (axioms 18-25) every probe selects nothing, because the
predicate is evaluated against a view in which the diagnosis text reads
RESTRICTED.

Run with::

    python examples/covert_channel.py
"""

from repro import InsecureWriteExecutor, Rename
from repro.core import hospital_database

CANDIDATE_ILLNESSES = [
    "influenza",
    "tonsillitis",
    "pneumonia",
    "angina",
    "measles",
]


def probe(path_template: str, illness: str) -> Rename:
    """A write whose PATH leaks one bit: does robert have ``illness``?

    The rename is chosen to be *idempotent-looking* (renaming robert to
    robert) so the attacker leaves no trace when a probe hits.
    """
    return Rename(path_template.format(illness=illness), "robert")


def main() -> None:
    db = hospital_database()
    template = "/patients/robert[diagnosis/text()='{illness}']"

    # --- the attack against the insecure (SQL/[10]) semantics ---------
    print("== Insecure semantics: PATH evaluated on the source ==")
    insecure = InsecureWriteExecutor()
    view = db.build_view("beaufort")  # the secretary's privileges
    learned = None
    for illness in CANDIDATE_ILLNESSES:
        result = insecure.apply(view, probe(template, illness))
        hit = bool(result.selected)
        print(f"  probe {illness!r:15} -> selected={len(result.selected)}")
        if hit:
            learned = illness
    print(f"  ATTACK RESULT: the secretary inferred robert has "
          f"{learned!r}\n")

    # --- the same attack against the paper's semantics ----------------
    print("== Secure semantics: PATH evaluated on the view (axioms 18-25) ==")
    secretary = db.login("beaufort")
    for illness in CANDIDATE_ILLNESSES:
        result = secretary.execute(probe(template, illness))
        print(f"  probe {illness!r:15} -> selected={len(result.selected)}")
    print("  ATTACK RESULT: every probe selects nothing -- in the "
          "secretary's view the diagnosis text is RESTRICTED, so the "
          "predicate can never match.  The channel is closed.")

    # Sanity: the secretary's legitimate rename still works.
    legit = secretary.execute(Rename("/patients/robert", "robert"))
    print(f"\n  (legitimate rename still fine: affected="
          f"{len(legit.affected)}, denied={len(legit.denials)})")


if __name__ == "__main__":
    main()
