"""Sessions and the database facade."""

import pytest

from repro.security import AccessDenied, SubjectError
from repro.security.database import SecureXMLDatabase
from repro.xmltree import element
from repro.xupdate import Append, Rename, UpdateContent


class TestLogin:
    def test_declared_user_logs_in(self, db):
        session = db.login("laporte")
        assert session.user == "laporte"
        assert session.database is db

    def test_unknown_subject_rejected(self, db):
        with pytest.raises(SubjectError):
            db.login("ghost")

    def test_role_cannot_log_in(self, db):
        with pytest.raises(SubjectError):
            db.login("doctor")


class TestQueries:
    def test_query_runs_on_view(self, db):
        secretary = db.login("beaufort")
        # Diagnosis content is RESTRICTED in the secretary's view.
        assert secretary.query("count(//text()[.='tonsillitis'])") == 0.0
        doctor = db.login("laporte")
        assert doctor.query("count(//text()[.='tonsillitis'])") == 1.0

    def test_user_variable_bound(self, db):
        robert = db.login("robert")
        got = robert.select("/patients/*[$USER]")
        assert len(got) == 1

    def test_select_requires_node_set(self, db):
        from repro.xpath import XPathEvaluationError

        with pytest.raises(XPathEvaluationError):
            db.login("laporte").select("count(//*)")

    def test_can_checks_privilege(self, db):
        doctor = db.login("laporte")
        diag = doctor.select("/patients/franck/diagnosis/text()")[0]
        assert doctor.can("update", diag)
        assert doctor.can("delete", diag)
        secretary = db.login("beaufort")
        assert not secretary.can("update", diag)

    def test_read_xml_and_tree(self, db):
        s = db.login("robert")
        assert "<robert>" in s.read_xml()
        assert "/robert" in s.read_tree()


class TestExecution:
    def test_execute_commits(self, db):
        doctor = db.login("laporte")
        doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        assert db.version == 1
        # Another session observes the change.
        assert db.login("laporte").query(
            "string(/patients/franck/diagnosis)"
        ) == "flu"

    def test_execute_xupdate_xml_text(self, db):
        doctor = db.login("laporte")
        doctor.execute(
            '<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">'
            '<xupdate:update select="/patients/franck/diagnosis">flu'
            "</xupdate:update></xupdate:modifications>"
        )
        assert "flu" in doctor.read_xml()

    def test_view_cache_invalidated_on_commit(self, db):
        secretary = db.login("beaufort")
        before = secretary.read_xml()
        secretary.execute(
            Append("/patients", element("new_patient", element("diagnosis")))
        )
        after = secretary.read_xml()
        assert before != after
        assert "new_patient" in after

    def test_view_cached_between_reads(self, db):
        session = db.login("beaufort")
        assert session.view() is session.view()

    def test_other_sessions_see_commits(self, db):
        doctor = db.login("laporte")
        secretary = db.login("beaufort")
        secretary.view()  # warm the cache
        doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        # Secretary's next view reflects the doctor's write (content
        # still RESTRICTED for her, but the version moved).
        assert secretary.view().source is db.document

    def test_strict_mode_propagates(self, db):
        secretary = db.login("beaufort")
        with pytest.raises(AccessDenied):
            secretary.execute(
                UpdateContent("/patients/franck/diagnosis", "x"),
                strict=True,
            )
        # Nothing was committed.
        assert db.version == 0


class TestAdminPath:
    def test_admin_update_bypasses_control(self, db):
        db.admin_update(Rename("//diagnosis", "dx"))
        assert db.engine.select(db.document, "//dx")
        assert db.version == 1

    def test_from_xml_constructor(self):
        db = SecureXMLDatabase.from_xml("<r><a/></r>")
        assert db.document.root is not None
        assert len(db.policy) == 0

    def test_mismatched_policy_subjects_rejected(self, subjects):
        from repro.security import Policy, SubjectHierarchy
        from repro.xmltree import parse_xml

        other = SubjectHierarchy()
        policy = Policy(other)
        with pytest.raises(ValueError):
            SecureXMLDatabase(parse_xml("<r/>"), subjects, policy)

    def test_permissions_for_role(self, db):
        """perm can be derived for roles too (not only users)."""
        table = db.permissions_for("secretary")
        assert table.user == "secretary"


class TestExplain:
    def test_explain_reports_deciding_rule(self, db):
        secretary = db.login("beaufort")
        entries = secretary.explain("read", "//diagnosis")
        assert len(entries) == 2
        for entry in entries:
            assert entry.held  # rule 1 grants read on the element
            assert entry.rule is not None
            assert entry.rule.priority == 10

    def test_explain_denied_content(self, db):
        secretary = db.login("beaufort")
        # The diagnosis text appears in her view (as RESTRICTED), so it
        # is selectable; read is denied by rule 2.
        entries = secretary.explain("read", "//diagnosis/node()")
        assert entries
        for entry in entries:
            assert not entry.held
            assert entry.rule.effect == "deny"
            assert entry.rule.priority == 11
            assert "DENIED" in str(entry)

    def test_explain_default_deny_has_no_rule(self, db):
        robert = db.login("robert")
        entries = robert.explain("delete", "/patients/robert")
        assert len(entries) == 1
        assert not entries[0].held
        assert entries[0].rule is None
        assert "no rule" in str(entries[0])

    def test_explain_path_selects_on_view(self, db):
        # franck is invisible to robert: nothing to explain.
        robert = db.login("robert")
        assert robert.explain("read", "//franck") == []
