"""Retry budgets: exponential backoff with decorrelated jitter, and
per-request deadlines.

Under contention, optimistic concurrency turns into commit races
(:class:`~repro.errors.ConcurrentUpdateError`); the serving layer
absorbs them by re-running the write after a randomized pause.  The
pause schedule is *decorrelated jitter* (Brooker's variant of
exponential backoff): each delay is drawn uniformly from ``[base,
previous * multiplier]`` and capped, so colliding writers spread out
instead of re-colliding in synchronized waves.

:class:`Deadline` is the other half of the budget: a monotonic-clock
expiry that a request checks at every blocking point -- admission
queue, lock wait, between retries, and (via the write executor's
checkpoint hook) before every script operation, so even a mid-script
expiry aborts through the savepoint path with nothing committed.

Both classes take injectable clocks (and the server an injectable
``sleep``), so tests drive them with virtual time -- no real waiting,
fully deterministic schedules.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import DeadlineExceeded

__all__ = ["Deadline", "RetryPolicy"]


class Deadline:
    """A per-request time budget on a monotonic clock.

    Args:
        budget: seconds from now until expiry; None means "no
            deadline" (every query returns infinity and
            :meth:`check` never raises).
        clock: monotonic time source, injectable for tests.

    Example::

        deadline = Deadline(0.250)
        deadline.check("admission")     # raises DeadlineExceeded if late
        lock.acquire_write(timeout=deadline.remaining())
    """

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self._expires = None if budget is None else clock() + budget

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return self._expires is not None and self._clock() >= self._expires

    def remaining(self) -> float:
        """Seconds left (never negative; ``inf`` with no deadline)."""
        if self._expires is None:
            return float("inf")
        return max(0.0, self._expires - self._clock())

    def timeout(self) -> Optional[float]:
        """The remaining budget in the form lock/queue waits expect:
        None for "wait forever", else seconds (possibly 0)."""
        return None if self._expires is None else self.remaining()

    def check(self, what: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` when expired.

        Args:
            what: phase name for the error message (``"admission"``,
                ``"script operation 3"``, ...).
        """
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.budget:.6g}s exceeded during {what}",
                budget=self.budget,
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Decorrelated-jitter backoff for commit races.

    Attributes:
        max_attempts: total tries per write, first included; 1 means
            "never retry".
        base: minimum delay between tries, seconds.
        cap: maximum delay between tries, seconds.
        multiplier: upper-bound growth per round -- delay *n+1* is
            drawn from ``uniform(base, delay_n * multiplier)``.
    """

    max_attempts: int = 8
    base: float = 0.002
    cap: float = 0.250
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not (0 < self.base <= self.cap):
            raise ValueError("need 0 < base <= cap")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def next_delay(self, previous: float, rng: random.Random) -> float:
        """The delay after a failed try whose preceding delay was
        ``previous`` (0.0 for the first failure)."""
        if previous <= 0.0:
            return self.base
        return min(self.cap, rng.uniform(self.base, previous * self.multiplier))

    def delays(self, rng: random.Random) -> Iterator[float]:
        """The full backoff schedule: ``max_attempts - 1`` delays."""
        delay = 0.0
        for _ in range(self.max_attempts - 1):
            delay = self.next_delay(delay, rng)
            yield delay
