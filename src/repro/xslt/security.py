"""The XSLT-based security processor (the paper's conclusion, realized).

The paper's conclusion: "We are also currently implementing an
XSLT-based [5] security processor based on our model, on top of a
native XML database".  This module is that processor:
:func:`view_stylesheet` compiles a user's derived permissions into a
stylesheet which, applied to the *source* document, produces exactly
the authorized view of axioms 15-17:

- invisible subtree roots get an **empty template** (highest priority):
  processing them emits nothing, pruning the subtree;
- RESTRICTED nodes get a **rewriting template**: elements re-emit as
  ``<RESTRICTED>`` with templates applied to their content, text nodes
  emit the literal ``RESTRICTED``, attributes emit
  ``RESTRICTED="RESTRICTED"``;
- everything else falls to a low-priority **copy-through template**.

Per-node match patterns are positional absolute paths
(``/node()[1]/node()[2]``), which identify nodes uniquely regardless of
labels -- labels are exactly what the stylesheet may be rewriting.

The equivalence stylesheet(source) == materialized view is verified in
``tests/xslt/test_security_processor.py`` on the paper's example and on
random document/policy pairs.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..security.lazy import LazyView
from ..security.perm import PermissionResolver, PermissionTable
from ..security.policy import Policy
from ..security.privileges import Privilege
from ..security.view import View, ViewBuilder
from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import NodeKind, RESTRICTED
from .ast import (
    ApplyTemplates,
    AttributeNamed,
    Copy,
    ElementNamed,
    Stylesheet,
    TemplateRule,
    TextLiteral,
)

__all__ = ["view_stylesheet", "match_path"]

#: Template priorities: prune > rewrite > copy-through.
_PRUNE_PRIORITY = 2.0
_RESTRICT_PRIORITY = 1.0
_COPY_PRIORITY = -1.0


def match_path(doc: XMLDocument, nid: NodeId) -> str:
    """A label-independent absolute pattern uniquely matching ``nid``.

    Steps are positional ``node()[i]`` tests over the child axis;
    attributes terminate with an ``@*[i]`` step.  Because the pattern
    never mentions labels, it stays valid while the stylesheet rewrites
    them.
    """
    steps: List[str] = []
    current = nid
    while not current.is_document:
        parent = current.parent()
        node = doc.node(current)
        if node.kind is NodeKind.ATTRIBUTE:
            position = doc.attributes(parent).index(current) + 1
            steps.append(f"@*[{position}]")
        else:
            position = doc.children(parent).index(current) + 1
            steps.append(f"node()[{position}]")
        current = parent
    return "/" + "/".join(reversed(steps))


def view_stylesheet(
    subject: Union[View, LazyView, PermissionTable],
    doc: Optional[XMLDocument] = None,
) -> Stylesheet:
    """Compile a view (or a permission table + document) into XSLT.

    Args:
        subject: a derived :class:`View`/:class:`LazyView`, or a bare
            :class:`PermissionTable` (then ``doc`` is required).
        doc: the source document when ``subject`` is a permission table.

    Returns:
        A stylesheet whose application to the source document yields
        the user's authorized view.
    """
    if isinstance(subject, (View, LazyView)):
        permissions = subject.permissions
        source = subject.source
    else:
        permissions = subject
        if doc is None:
            raise ValueError("a document is required with a PermissionTable")
        source = doc

    readable = permissions.nodes_with(Privilege.READ)
    positioned = permissions.nodes_with(Privilege.POSITION)

    templates: List[TemplateRule] = [
        # Copy-through default for everything the specific templates
        # do not override.
        TemplateRule("//node() | //@*", (Copy(),), _COPY_PRIORITY),
    ]

    stack: List[NodeId] = [DOCUMENT_ID]
    while stack:
        parent = stack.pop()
        children = list(source.children(parent))
        if source.kind(parent) is NodeKind.ELEMENT:
            children = source.attributes(parent) + children
        for child in children:
            if child in readable:
                stack.append(child)
                continue
            pattern = match_path(source, child)
            if child in positioned:
                templates.append(_restrict_template(source, child, pattern))
                stack.append(child)
            else:
                # Invisible: an empty template prunes the whole subtree.
                templates.append(
                    TemplateRule(pattern, (), _PRUNE_PRIORITY)
                )
    return Stylesheet(tuple(templates))


def _restrict_template(
    source: XMLDocument, nid: NodeId, pattern: str
) -> TemplateRule:
    kind = source.kind(nid)
    if kind is NodeKind.ELEMENT:
        body = (ElementNamed(RESTRICTED, (ApplyTemplates(),)),)
    elif kind is NodeKind.TEXT:
        body = (TextLiteral(RESTRICTED),)
    elif kind is NodeKind.ATTRIBUTE:
        body = (AttributeNamed(RESTRICTED, RESTRICTED),)
    else:  # pragma: no cover - comments/PIs are never RESTRICTED
        body = ()
    return TemplateRule(pattern, body, _RESTRICT_PRIORITY)
