"""Serializer for the XUpdate XML syntax: scripts back to documents.

The inverse of :mod:`repro.xupdate.parser`: an
:class:`~repro.xupdate.operations.UpdateScript` (or a single operation)
becomes an ``<xupdate:modifications>`` document that
:func:`~repro.xupdate.parser.parse_xupdate` turns back into an *equal*
script.  The write-ahead log (:mod:`repro.wal`) depends on that
round-trip to make committed scripts replayable: a record is only as
good as the script it reconstructs, so :func:`dump_xupdate` emits the
constructor syntax (``xupdate:element`` / ``xupdate:attribute`` /
``xupdate:text`` / ``xupdate:comment``) rather than literal XML --
constructors carry any label, including ones that would collide with
the ``xupdate:`` prefix itself.

Not every programmatically built operation has an XUpdate spelling: a
bare attribute fragment, a whitespace-only text tree, or a rename whose
new name the parser would strip differently all refuse to serialize
with :class:`XUpdateSerializeError`.  Callers that must persist such an
operation fall back to logging a full database snapshot instead (see
``repro.wal.log``).
"""

from __future__ import annotations

from typing import List, Union

from ..xmltree.document import XMLDocument
from ..xmltree.fragments import Fragment, element, text
from ..xmltree.node import NodeKind
from ..xmltree.serializer import serialize
from .operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateOperation,
)
from .parser import parse_xupdate

__all__ = ["XUpdateSerializeError", "dump_xupdate"]

_XUPDATE_NS = ("xmlns:xupdate", "http://www.xmldb.org/xupdate")


class XUpdateSerializeError(ValueError):
    """The operation has no faithful XUpdate spelling."""


def _constructor(fragment: Fragment) -> Fragment:
    """Rewrite a tree fragment in xupdate constructor syntax."""
    if fragment.kind is NodeKind.TEXT:
        if not fragment.label.strip():
            raise XUpdateSerializeError(
                "whitespace-only text trees parse back as empty content"
            )
        return element("xupdate:text", text(fragment.label))
    if fragment.kind is NodeKind.COMMENT:
        return element("xupdate:comment", text(fragment.label))
    if fragment.kind is not NodeKind.ELEMENT:
        raise XUpdateSerializeError(
            f"{fragment.kind.name.lower()} fragments have no XUpdate "
            f"constructor"
        )
    children: List[Fragment] = [
        element("xupdate:attribute", text(value), attributes={"name": name})
        for name, value in fragment.attributes
    ]
    for child in fragment.children:
        if child.kind is NodeKind.TEXT:
            children.append(child)  # literal text is kept verbatim
        else:
            children.append(_constructor(child))
    return element(
        "xupdate:element", *children, attributes={"name": fragment.label}
    )


def _instruction(op: XUpdateOperation) -> Fragment:
    """One operation as its ``<xupdate:...>`` instruction element."""
    if isinstance(op, Rename):
        if op.new_name != op.new_name.strip():
            raise XUpdateSerializeError(
                f"rename target {op.new_name!r} would be stripped on parse"
            )
        body = [text(op.new_name)] if op.new_name else []
        return element(
            "xupdate:rename", *body, attributes={"select": op.path}
        )
    if isinstance(op, UpdateContent):
        body = [text(op.new_value)] if op.new_value else []
        return element(
            "xupdate:update", *body, attributes={"select": op.path}
        )
    if isinstance(op, Remove):
        return element("xupdate:remove", attributes={"select": op.path})
    if isinstance(op, (Append, InsertBefore, InsertAfter)):
        name = {
            Append: "xupdate:append",
            InsertBefore: "xupdate:insert-before",
            InsertAfter: "xupdate:insert-after",
        }[type(op)]
        return element(
            name, _constructor(op.tree), attributes={"select": op.path}
        )
    raise XUpdateSerializeError(f"unknown operation {op!r}")


def dump_xupdate(
    operation: Union[XUpdateOperation, UpdateScript], verify: bool = True
) -> str:
    """Serialize a script (or one operation) to XUpdate XML text.

    Args:
        operation: an :class:`UpdateScript` or a single operation; a
            single operation is emitted as a one-instruction script.
        verify: re-parse the output and require equality with the input
            script (the default) -- guarantees the text is a faithful,
            replayable description, which is what the write-ahead log
            needs.

    Raises:
        XUpdateSerializeError: the operation has no XUpdate spelling,
            or (with ``verify``) the round-trip is not exact.
    """
    script = (
        operation
        if isinstance(operation, UpdateScript)
        else UpdateScript((operation,))
    )
    bundle = element(
        "xupdate:modifications",
        *[_instruction(op) for op in script],
        attributes={_XUPDATE_NS[0]: _XUPDATE_NS[1]},
    )
    carrier = XMLDocument()
    bundle.attach(carrier, carrier.document_node.nid)
    out = serialize(carrier)
    if verify:
        try:
            reparsed = parse_xupdate(out)
        except Exception as exc:
            raise XUpdateSerializeError(
                f"serialized script does not re-parse: {exc}"
            ) from exc
        if reparsed != script:
            raise XUpdateSerializeError(
                "serialized script does not round-trip to an equal script"
            )
    return out
