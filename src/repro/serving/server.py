"""The governed serving front-end over :class:`SecureXMLDatabase`.

One :class:`DatabaseServer` wraps one database and turns the library's
one-shot calls into *requests* with a serving contract:

1. **Lock discipline.**  Reads (views, queries) run under the shared
   side of a :class:`~repro.serving.rwlock.RWLock`, so any number of
   sessions serve views concurrently; writes take the exclusive side
   per attempt, so a script's selection, privilege checks and commit
   all observe one frozen database generation.  The backoff *sleep*
   between write attempts happens outside the lock -- a retrying
   writer never starves readers.
2. **Retry with backoff.**  A commit race
   (:class:`~repro.errors.ConcurrentUpdateError` from an interleaved
   commit -- another server, an administrative update) is absorbed by
   re-running the write under the
   :class:`~repro.serving.retry.RetryPolicy`'s decorrelated-jitter
   schedule; the race is invisible to the client unless the policy's
   attempts run out (:class:`~repro.errors.RetryExhausted`).
3. **Deadlines.**  Every request carries a
   :class:`~repro.serving.retry.Deadline` (per-call or the server
   default) checked at each blocking point; on the write path it rides
   the executor's checkpoint hook, so an expired script aborts through
   the savepoint path with nothing committed.
4. **Admission control + circuit breaker.**  An
   :class:`~repro.serving.admission.AdmissionController` bounds
   in-flight requests (``block`` queues, ``shed`` fails fast with
   :class:`~repro.errors.OverloadError`); a
   :class:`~repro.serving.admission.CircuitBreaker` refuses writes
   outright after repeated write failures until a timed probe
   succeeds.
5. **Graceful degradation.**  View serving never fails on a cache
   bug: the shared cache falls back internally (patch -> full build ->
   per-session rebuild, see ``SecureXMLDatabase.build_view``), and
   every degradation is logged and counted in :meth:`stats`.

Shed, timed-out and retry-exhausted requests are recorded in the
database's audit log (events ``"shed"`` / ``"deadline"`` /
``"retry-exhausted"``), exactly like aborted scripts are.

Example::

    server = DatabaseServer(
        db,
        retry=RetryPolicy(max_attempts=8),
        max_in_flight=64,
        overload="shed",
        default_deadline=0.5,
    )
    xml = server.read_xml("laporte")
    result = server.execute("laporte", script, strict=True)
"""

from __future__ import annotations

import logging
import random
import threading
import time
from typing import Callable, Dict, Optional, Union

from ..errors import (
    ConcurrentUpdateError,
    DeadlineExceeded,
    OverloadError,
    RetryExhausted,
    UpdateAborted,
)
from ..security.database import SecureXMLDatabase
from ..security.session import Session
from ..security.write import AccessDenied, SecureUpdateResult
from ..xpath.values import NodeSet, XPathValue
from ..xupdate.operations import UpdateScript, XUpdateOperation
from .admission import AdmissionController, CircuitBreaker
from .retry import Deadline, RetryPolicy
from .rwlock import RWLock

__all__ = ["DatabaseServer"]

logger = logging.getLogger("repro.serving")


class DatabaseServer:
    """A thread-safe, overload-aware front-end over one database.

    Args:
        database: the :class:`SecureXMLDatabase` being served.
        retry: backoff schedule for commit races (default
            :class:`RetryPolicy()`).
        max_in_flight: admission budget; None disables admission
            control.
        overload: ``"block"`` or ``"shed"`` (see
            :class:`AdmissionController`).
        breaker: write circuit breaker; None builds a default one on
            this server's clock.
        default_deadline: seconds applied to requests that pass no
            per-call deadline; None means unbounded.
        clock: monotonic time source (injectable for tests).
        sleep: how to wait out a backoff delay (injectable for tests).
        rng: randomness source for jitter (seedable for tests).
    """

    def __init__(
        self,
        database: SecureXMLDatabase,
        *,
        retry: Optional[RetryPolicy] = None,
        max_in_flight: Optional[int] = None,
        overload: str = "block",
        breaker: Optional[CircuitBreaker] = None,
        default_deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._database = database
        self._retry = retry if retry is not None else RetryPolicy()
        self._admission = AdmissionController(max_in_flight, overload)
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(clock=clock)
        )
        self._default_deadline = default_deadline
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = RWLock()
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "reads": 0,  # read requests served
            "writes": 0,  # write requests committed or cleanly refused
            "commits": 0,  # writes that installed a new generation
            "retries": 0,  # backoff sleeps taken
            "commit_races": 0,  # ConcurrentUpdateError absorbed or not
            "shed": 0,  # requests refused by admission control
            "deadline_exceeded": 0,  # requests that ran out of budget
            "retry_exhausted": 0,  # writes that gave up after max_attempts
        }

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    @property
    def database(self) -> SecureXMLDatabase:
        """The wrapped database (not thread-safe to mutate directly
        while the server is live, except through ``transaction()``)."""
        return self._database

    @property
    def admission(self) -> AdmissionController:
        """The in-flight budget (shared by reads and writes)."""
        return self._admission

    @property
    def breaker(self) -> CircuitBreaker:
        """The write circuit breaker."""
        return self._breaker

    @property
    def retry(self) -> RetryPolicy:
        """The commit-race backoff schedule."""
        return self._retry

    def session(self, user: str) -> Session:
        """The served (cached, per-user) session for ``user``.

        Sessions are only safe to use through the server's own
        read/write discipline; use :meth:`SecureXMLDatabase.login` for
        an unmanaged session.
        """
        with self._sessions_lock:
            session = self._sessions.get(user)
            if session is None:
                session = self._database.login(user)
                self._sessions[user] = session
            return session

    # ------------------------------------------------------------------
    # reads (shared lock)
    # ------------------------------------------------------------------
    def view(self, user: str, deadline: Optional[float] = None):
        """The user's current authorized view, served under the read
        discipline (admission + deadline + shared lock)."""
        return self._read(user, lambda s: s.view(), deadline, "view")

    def query(
        self, user: str, path: str, deadline: Optional[float] = None
    ) -> XPathValue:
        """Evaluate an XPath expression on the user's view."""
        return self._read(user, lambda s: s.query(path), deadline, "query")

    def select(
        self, user: str, path: str, deadline: Optional[float] = None
    ) -> NodeSet:
        """Evaluate a path on the user's view, requiring a node-set."""
        return self._read(user, lambda s: s.select(path), deadline, "select")

    def read_xml(
        self,
        user: str,
        indent: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """The user's view serialized as XML."""
        return self._read(
            user, lambda s: s.read_xml(indent=indent), deadline, "read_xml"
        )

    def _read(self, user, fn, budget, what):
        deadline = self._deadline(budget)
        session = self.session(user)
        self._admit(deadline, user, what, "")
        try:
            if not self._lock.acquire_read(deadline.timeout()):
                raise self._deadline_error(deadline, user, what, "read lock")
            try:
                self._check(deadline, user, what, "view serving")
                result = fn(session)
            finally:
                self._lock.release_read()
        finally:
            self._admission.release()
        self._count("reads")
        return result

    # ------------------------------------------------------------------
    # writes (exclusive lock + retry)
    # ------------------------------------------------------------------
    def execute(
        self,
        user: str,
        operation: Union[XUpdateOperation, UpdateScript, str],
        strict: bool = False,
        deadline: Optional[float] = None,
    ) -> SecureUpdateResult:
        """Apply an update as ``user``, absorbing commit races.

        The operation is executed through the user's session exactly
        like :meth:`Session.execute`, but governed: admission control
        and the circuit breaker gate entry, each attempt runs under
        the exclusive lock, a commit race is retried on the backoff
        schedule (sleeping *outside* the lock), and the deadline is
        checkpointed before every script operation so an expired
        request aborts via the savepoint path with nothing committed.

        Raises:
            OverloadError: shed by admission control (audited).
            DeadlineExceeded: the budget expired at any phase
                (audited; nothing committed).
            CircuitOpenError: the write circuit is open.
            RetryExhausted: every attempt hit a commit race (audited).
            AccessDenied, UpdateAborted: as for
                :meth:`Session.execute`; these are application
                outcomes and do not trip the circuit breaker.
        """
        deadline = self._deadline(deadline)
        opname, oppath = _describe(operation)
        self._breaker.allow()
        session = self.session(user)
        self._admit(deadline, user, opname, oppath)
        try:
            return self._execute_with_retry(
                session, operation, strict, deadline, opname, oppath
            )
        finally:
            self._admission.release()

    def _execute_with_retry(
        self, session, operation, strict, deadline, opname, oppath
    ):
        user = session.user
        delay = 0.0
        last: Optional[ConcurrentUpdateError] = None
        for attempt in range(1, self._retry.max_attempts + 1):
            if not self._lock.acquire_write(deadline.timeout()):
                self._breaker.record_failure()
                raise self._deadline_error(deadline, user, opname, "write lock")
            if deadline.expired:
                # Raised outside the try: the handler below is for
                # checkpoint expiries *inside* the script and must not
                # double-count this one.
                self._lock.release_write()
                self._breaker.record_failure()
                raise self._deadline_error(
                    deadline, user, opname, "write admission"
                )
            try:
                result = session.execute(
                    operation,
                    strict=strict,
                    checkpoint=lambda: deadline.check(f"{opname} script"),
                )
            except ConcurrentUpdateError as exc:
                last = exc
                self._count("commit_races")
                logger.debug(
                    "commit race for %s (%s attempt %d/%d)",
                    user, opname, attempt, self._retry.max_attempts,
                )
            except DeadlineExceeded:
                self._breaker.record_failure()
                self._count("deadline_exceeded")
                self._audit_rejection(
                    user, opname, oppath,
                    f"deadline of {deadline.budget:.6g}s exceeded "
                    f"mid-script (attempt {attempt})",
                    "deadline",
                )
                raise
            except (AccessDenied, UpdateAborted):
                # Application outcomes: access control and script
                # semantics worked exactly as specified, so they are
                # neither breaker failures nor breaker successes.
                self._count("writes")
                raise
            except Exception:
                self._breaker.record_failure()
                raise
            else:
                self._breaker.record_success()
                self._count("writes")
                self._count("commits")
                return result
            finally:
                self._lock.release_write()
            # Commit race: back off outside the lock, then go again.
            if attempt == self._retry.max_attempts:
                break
            remaining = deadline.remaining()
            if remaining <= 0.0:
                self._breaker.record_failure()
                raise self._deadline_error(deadline, user, opname, "backoff")
            delay = self._retry.next_delay(delay, self._rng)
            self._count("retries")
            self._sleep(min(delay, remaining))
        self._breaker.record_failure()
        self._count("retry_exhausted")
        self._audit_rejection(
            user, opname, oppath,
            f"gave up after {self._retry.max_attempts} attempts, every "
            f"commit raced a concurrent update",
            "retry-exhausted",
        )
        raise RetryExhausted(
            f"{opname} by {user!r} lost {self._retry.max_attempts} "
            f"commit race(s); giving up",
            attempts=self._retry.max_attempts,
            last_error=last,
        ) from last

    # ------------------------------------------------------------------
    # shared request plumbing
    # ------------------------------------------------------------------
    def _deadline(self, budget: Optional[float]) -> Deadline:
        if budget is None:
            budget = self._default_deadline
        return Deadline(budget, clock=self._clock)

    def _admit(self, deadline, user, opname, oppath) -> None:
        try:
            self._admission.acquire(deadline)
        except OverloadError as exc:
            self._count("shed")
            self._audit_rejection(user, opname, oppath, str(exc), "shed")
            raise
        except DeadlineExceeded as exc:
            self._count("deadline_exceeded")
            self._audit_rejection(user, opname, oppath, str(exc), "deadline")
            raise

    def _check(self, deadline, user, opname, what) -> None:
        try:
            deadline.check(what)
        except DeadlineExceeded:
            self._count("deadline_exceeded")
            self._audit_rejection(
                user, opname, "", f"deadline expired during {what}", "deadline"
            )
            raise

    def _deadline_error(self, deadline, user, opname, what) -> DeadlineExceeded:
        self._count("deadline_exceeded")
        reason = (
            f"deadline of {deadline.budget:.6g}s exceeded waiting for {what}"
            if deadline.budget is not None
            else f"timed out waiting for {what}"
        )
        self._audit_rejection(user, opname, "", reason, "deadline")
        return DeadlineExceeded(reason, budget=deadline.budget)

    def _audit_rejection(self, user, opname, oppath, reason, event) -> None:
        try:
            self._database.audit.record_rejected(
                user=user,
                operation=opname,
                path=oppath,
                reason=reason,
                event=event,
            )
        except Exception:  # the audit log must never break serving
            logger.exception("audit rejection record failed")

    def _count(self, key: str) -> None:
        with self._counters_lock:
            self._counters[key] += 1

    def stats(self) -> Dict[str, object]:
        """Serving counters: this server's request ledger, the
        admission controller's (``admission_`` prefix), the circuit
        breaker's (``breaker_`` prefix + ``breaker_state``), and the
        wrapped database's :meth:`SecureXMLDatabase.stats`."""
        with self._counters_lock:
            out: Dict[str, object] = dict(self._counters)
        out.update(
            {f"admission_{k}": v for k, v in self._admission.stats.items()}
        )
        out.update({f"breaker_{k}": v for k, v in self._breaker.stats.items()})
        out["breaker_state"] = self._breaker.state
        out.update(self._database.stats())
        return out


def _describe(operation) -> tuple:
    """(operation name, path) for audit records, best-effort."""
    if isinstance(operation, str):
        return ("xupdate", "")
    if isinstance(operation, UpdateScript):
        ops = list(operation)
        return ("UpdateScript", ops[0].path if ops else "")
    return (type(operation).__name__, getattr(operation, "path", ""))
