"""E20 (added): shared view cache + incremental maintenance at scale.

The serving scenario the paper's hospital implies but never measures:
many concurrent staff sessions whose permission tables are identical
(no ``$USER`` in any applicable rule), against a database that keeps
changing.  Before this layer, every session rebuilt its authorized
view from scratch on every commit -- O(sessions x document) per write.
With change-sets, fingerprint sharing and incremental patching, one
session pays a (subtree-sized) patch and the rest are O(1) facades.

Rows: mode | patients | sessions | total serve time for the series.
``test_e20_serving_speedup`` asserts the acceptance criteria: >= 10x
over rebuild-per-session at 100 sessions / 800 patients, with the
``db.stats()`` counters proving views were shared (``view_hits > 0``)
and no permission table was re-derived from nothing after warm-up
(``full_resolves`` unchanged).  The ``smoke`` variants run the same
series at three small sizes inside ``make verify``.
"""

import time

import pytest

from conftest import ILLNESSES, print_series, synthetic_hospital

from repro.security import SecureXMLDatabase
from repro.security.view import ViewBuilder
from repro.xmltree import serialize
from repro.xupdate import UpdateContent

PATIENTS = 800
SESSIONS = 100
ROUNDS = 3


def serving_database(
    patients: int, nurses: int, shared: bool = True
) -> SecureXMLDatabase:
    """A synthetic hospital with ``nurses`` extra secretarial users.

    All nurses are members of the paper's ``secretary`` role, and no
    secretary-applicable rule mentions ``$USER``, so every nurse shares
    one permission fingerprint -- the sharing case this experiment is
    about."""
    base = synthetic_hospital(patients)
    for index in range(nurses):
        base.subjects.add_user(f"nurse{index:03d}", member_of="secretary")
    if shared:
        return base
    return SecureXMLDatabase(
        base.document, base.subjects, base.policy, shared_views=False
    )


def nurse_sessions(db: SecureXMLDatabase, nurses: int):
    return [db.login(f"nurse{index:03d}") for index in range(nurses)]


def serve_series(db, sessions, patients: int, rounds: int) -> float:
    """Commit ``rounds`` single-diagnosis updates, refreshing every
    session's view after each; return the time spent serving views
    (commits excluded -- both modes pay the same commit cost)."""
    total = 0.0
    for r in range(rounds):
        target = (17 * r + 5) % patients
        db.admin_update(
            UpdateContent(
                f"//patient{target:05d}/diagnosis",
                ILLNESSES[r % len(ILLNESSES)],
            )
        )
        start = time.perf_counter()
        for session in sessions:
            session.view()
        total += time.perf_counter() - start
    return total


def run_comparison(patients: int, nurses: int, rounds: int):
    """Warm both modes, run the series, return (rebuild_s, shared_s,
    warm_stats, final_stats, one shared session for checking)."""
    shared_db = serving_database(patients, nurses)
    rebuild_db = serving_database(patients, nurses, shared=False)
    shared_sessions = nurse_sessions(shared_db, nurses)
    rebuild_sessions = nurse_sessions(rebuild_db, nurses)
    for session in shared_sessions:
        session.view()
    for session in rebuild_sessions:
        session.view()
    warm = shared_db.stats()
    rebuild_s = serve_series(rebuild_db, rebuild_sessions, patients, rounds)
    shared_s = serve_series(shared_db, shared_sessions, patients, rounds)
    final = shared_db.stats()
    return rebuild_s, shared_s, warm, final, shared_db


def assert_serving_counters(warm: dict, final: dict) -> None:
    # Views were shared across sessions...
    assert final["view_hits"] > warm["view_hits"]
    # ...maintained by patching, not rebuilt...
    assert final["view_incremental_patches"] > warm["view_incremental_patches"]
    assert final["view_full_builds"] == warm["view_full_builds"]
    # ...and no permission table was re-derived from nothing: every
    # post-warm-up resolve was a delta against maintained selections.
    assert final["full_resolves"] == warm["full_resolves"]


def assert_served_equals_scratch(db: SecureXMLDatabase, user: str) -> None:
    served = db.build_view(user)
    scratch = ViewBuilder().build(db.document, db.policy, user)
    assert served.facts() == scratch.facts()
    assert serialize(served.doc) == serialize(scratch.doc)


def test_e20_serving_speedup():
    rebuild_s, shared_s, warm, final, db = run_comparison(
        PATIENTS, SESSIONS, ROUNDS
    )
    ratio = rebuild_s / shared_s
    print_series(
        f"E20 serving series ({ROUNDS} commits, {SESSIONS} sessions, "
        f"{PATIENTS} patients)",
        [
            ("rebuild-per-session", f"{rebuild_s * 1000:.1f} ms"),
            ("shared+incremental", f"{shared_s * 1000:.1f} ms"),
            ("speedup", f"{ratio:.1f}x"),
        ],
    )
    assert ratio >= 10.0, f"only {ratio:.1f}x over rebuild-per-session"
    assert_serving_counters(warm, final)
    assert_served_equals_scratch(db, "nurse000")


@pytest.mark.parametrize(
    "patients,nurses",
    [(40, 8), (80, 12), (160, 16)],
    ids=lambda v: str(v),
)
def test_e20_smoke(patients, nurses):
    """Fast three-size variant of E20 for ``make verify``: the same
    counters and the differential check, with a loose timing bar."""
    rebuild_s, shared_s, warm, final, db = run_comparison(
        patients, nurses, rounds=2
    )
    assert_serving_counters(warm, final)
    assert_served_equals_scratch(db, "nurse000")
    assert rebuild_s / shared_s >= 2.0


@pytest.fixture(scope="module")
def shared_setup():
    db = serving_database(PATIENTS, SESSIONS)
    sessions = nurse_sessions(db, SESSIONS)
    for session in sessions:
        session.view()
    return db, sessions


@pytest.fixture(scope="module")
def rebuild_setup():
    db = serving_database(PATIENTS, SESSIONS, shared=False)
    sessions = nurse_sessions(db, SESSIONS)
    for session in sessions:
        session.view()
    return db, sessions


def test_e20_shared_incremental_timing(benchmark, shared_setup):
    db, sessions = shared_setup

    def run():
        return serve_series(db, sessions, PATIENTS, 1)

    benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)


def test_e20_rebuild_per_session_timing(benchmark, rebuild_setup):
    db, sessions = rebuild_setup

    def run():
        return serve_series(db, sessions, PATIENTS, 1)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
