"""E9 (section 4.4.1): derive the four printed views.

Regenerates: the secretary / patient / epidemiologist / doctor views
exactly as the paper prints them, timing full view materialization
(perm derivation + pruning + RESTRICTED relabelling).
"""

import pytest

SECRETARY_VIEW = [
    "/",
    "  /patients",
    "    /franck",
    "      /service",
    "        text()otolarynology",
    "      /diagnosis",
    "        text()RESTRICTED",
    "    /robert",
    "      /service",
    "        text()pneumology",
    "      /diagnosis",
    "        text()RESTRICTED",
]

ROBERT_VIEW = [
    "/",
    "  /patients",
    "    /robert",
    "      /service",
    "        text()pneumology",
    "      /diagnosis",
    "        text()pneumonia",
]

EPIDEMIOLOGIST_VIEW = [
    "/",
    "  /patients",
    "    /RESTRICTED",
    "      /service",
    "        text()otolarynology",
    "      /diagnosis",
    "        text()tonsillitis",
    "    /RESTRICTED",
    "      /service",
    "        text()pneumology",
    "      /diagnosis",
    "        text()pneumonia",
]

EXPECTED = {
    "beaufort": SECRETARY_VIEW,
    "robert": ROBERT_VIEW,
    "richard": EPIDEMIOLOGIST_VIEW,
}


@pytest.mark.parametrize("user", ["beaufort", "robert", "richard", "laporte"])
def test_e9_view_derivation(benchmark, paper_db, user):
    db = paper_db

    def run():
        return db.login(user).read_tree()

    tree = benchmark(run)
    if user == "laporte":
        assert "RESTRICTED" not in tree
        assert "tonsillitis" in tree
    else:
        assert tree.split("\n") == EXPECTED[user]
