"""XPath comparison and arithmetic semantics (spec sections 3.4-3.5)."""

import math

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine


@pytest.fixture
def doc():
    return parse_xml(
        "<r><v>1</v><v>2</v><v>3</v><w>2</w><w>9</w><empty/></r>"
    )


@pytest.fixture
def engine():
    return XPathEngine()


class TestEquality:
    def test_nodeset_vs_string_is_existential(self, engine, doc):
        assert engine.evaluate(doc, "//v = '2'") is True
        assert engine.evaluate(doc, "//v = '7'") is False

    def test_nodeset_vs_number(self, engine, doc):
        assert engine.evaluate(doc, "//v = 3") is True
        assert engine.evaluate(doc, "//v = 4") is False

    def test_nodeset_vs_nodeset(self, engine, doc):
        assert engine.evaluate(doc, "//v = //w") is True  # both contain "2"
        assert engine.evaluate(doc, "//v = //empty") is False

    def test_both_eq_and_neq_can_hold(self, engine, doc):
        """The classic XPath gotcha: existential on both sides."""
        assert engine.evaluate(doc, "//v = '2'") is True
        assert engine.evaluate(doc, "//v != '2'") is True

    def test_empty_nodeset_comparisons(self, engine, doc):
        assert engine.evaluate(doc, "//nope = '2'") is False
        assert engine.evaluate(doc, "//nope != '2'") is False

    def test_nodeset_vs_boolean(self, engine, doc):
        assert engine.evaluate(doc, "//v = true()") is True
        assert engine.evaluate(doc, "//nope = false()") is True
        assert engine.evaluate(doc, "//nope != true()") is True

    def test_scalar_equality_coercion(self, engine, doc):
        assert engine.evaluate(doc, "1 = '1'") is True
        assert engine.evaluate(doc, "true() = 1") is True
        assert engine.evaluate(doc, "true() = 'anything'") is True
        assert engine.evaluate(doc, "'a' = 'a'") is True
        assert engine.evaluate(doc, "'a' != 'b'") is True


class TestRelational:
    def test_numeric_comparison(self, engine, doc):
        assert engine.evaluate(doc, "2 < 3") is True
        assert engine.evaluate(doc, "3 <= 3") is True
        assert engine.evaluate(doc, "4 > 5") is False
        assert engine.evaluate(doc, "5 >= 5") is True

    def test_strings_compared_as_numbers(self, engine, doc):
        assert engine.evaluate(doc, "'10' > '9'") is True  # numeric!

    def test_nan_comparisons_false(self, engine, doc):
        assert engine.evaluate(doc, "'abc' < 1") is False
        assert engine.evaluate(doc, "'abc' >= 1") is False

    def test_nodeset_relational(self, engine, doc):
        assert engine.evaluate(doc, "//v > 2") is True
        assert engine.evaluate(doc, "//v > 3") is False
        assert engine.evaluate(doc, "2 < //v") is True
        assert engine.evaluate(doc, "//v < //w") is True

    def test_nodeset_vs_boolean_uses_boolean_conversion(self, engine, doc):
        """Spec 3.4: against a boolean, the node-set converts with
        boolean() -- no per-node existential.  An empty node-set is
        false (0), so ``//nope < true()`` is ``0 < 1``."""
        assert engine.evaluate(doc, "//nope < true()") is True
        assert engine.evaluate(doc, "//nope >= true()") is False
        assert engine.evaluate(doc, "true() > //nope") is True
        assert engine.evaluate(doc, "//nope <= false()") is True

    def test_nonempty_nodeset_vs_boolean_ignores_node_values(self, engine, doc):
        # //v is non-empty -> boolean true -> 1; the node *values*
        # (1, 2, 3) never enter the comparison.
        assert engine.evaluate(doc, "//v > true()") is False
        assert engine.evaluate(doc, "//v >= true()") is True
        assert engine.evaluate(doc, "//v <= true()") is True
        assert engine.evaluate(doc, "false() < //v") is True

    def test_empty_nodeset_vs_number_or_string_is_false(self, engine, doc):
        # Numbers/strings keep the existential reading: no node, no hit.
        assert engine.evaluate(doc, "//nope < 1") is False
        assert engine.evaluate(doc, "//nope >= 0") is False
        assert engine.evaluate(doc, "1 > //nope") is False

    def test_nodeset_vs_nan_number(self, engine, doc):
        nan = "(0 div 0)"
        assert engine.evaluate(doc, f"//v = {nan}") is False
        assert engine.evaluate(doc, f"//v != {nan}") is True
        assert engine.evaluate(doc, f"//v < {nan}") is False
        assert engine.evaluate(doc, f"//v >= {nan}") is False
        # An empty node-set against NaN: nothing to compare, both false.
        assert engine.evaluate(doc, f"//nope = {nan}") is False
        assert engine.evaluate(doc, f"//nope != {nan}") is False

    def test_boolean_vs_nodeset_equality_unchanged(self, engine, doc):
        # Equality already used boolean(): pin it against regression.
        assert engine.evaluate(doc, "//v = true()") is True
        assert engine.evaluate(doc, "//v != true()") is False
        assert engine.evaluate(doc, "//nope = false()") is True
        assert engine.evaluate(doc, "//nope != false()") is False


class TestArithmetic:
    def test_basic_ops(self, engine, doc):
        assert engine.evaluate(doc, "1 + 2") == 3.0
        assert engine.evaluate(doc, "5 - 2") == 3.0
        assert engine.evaluate(doc, "4 * 2.5") == 10.0
        assert engine.evaluate(doc, "7 div 2") == 3.5

    def test_mod_follows_dividend_sign(self, engine, doc):
        assert engine.evaluate(doc, "5 mod 2") == 1.0
        assert engine.evaluate(doc, "5 mod -2") == 1.0
        assert engine.evaluate(doc, "-5 mod 2") == -1.0
        assert engine.evaluate(doc, "-5 mod -2") == -1.0

    def test_division_by_zero(self, engine, doc):
        assert engine.evaluate(doc, "1 div 0") == math.inf
        assert engine.evaluate(doc, "-1 div 0") == -math.inf
        assert math.isnan(engine.evaluate(doc, "0 div 0"))

    def test_division_by_negative_zero(self, engine, doc):
        """IEEE-754: the divisor's sign survives even when it is zero,
        so ``1 div -0.0`` is -inf (was +inf before the copysign fix)."""
        assert engine.evaluate(doc, "1 div (-0.0)") == -math.inf
        assert engine.evaluate(doc, "-1 div (-0.0)") == math.inf
        assert engine.evaluate(doc, "1 div (0 - 0.0)") == math.inf
        assert math.isnan(engine.evaluate(doc, "0 div (-0.0)"))
        assert math.isnan(engine.evaluate(doc, "(-0.0) div 0"))
        assert math.isnan(engine.evaluate(doc, "'abc' div (-0.0)"))

    def test_negative_zero_literals(self, engine, doc):
        zero = engine.evaluate(doc, "-0.0")
        assert zero == 0.0 and math.copysign(1.0, zero) == -1.0
        assert engine.evaluate(doc, "-0.0 = 0") is True  # IEEE equality

    def test_mod_zero_is_nan(self, engine, doc):
        assert math.isnan(engine.evaluate(doc, "5 mod 0"))
        assert math.isnan(engine.evaluate(doc, "5 mod (-0.0)"))

    def test_mod_nan_and_infinity_edges(self, engine, doc):
        nan, inf = "(0 div 0)", "(1 div 0)"
        assert math.isnan(engine.evaluate(doc, f"{nan} mod 2"))
        assert math.isnan(engine.evaluate(doc, f"2 mod {nan}"))
        assert math.isnan(engine.evaluate(doc, f"{inf} mod 2"))
        assert math.isnan(engine.evaluate(doc, f"(-{inf}) mod 2"))
        # A finite dividend with an infinite divisor passes through
        # unchanged (Java % semantics, which XPath 1.0 mod follows).
        assert engine.evaluate(doc, f"5 mod {inf}") == 5.0
        assert engine.evaluate(doc, f"-5 mod {inf}") == -5.0

    def test_unary_minus(self, engine, doc):
        assert engine.evaluate(doc, "-(1 + 2)") == -3.0

    def test_nodeset_coerced_to_number(self, engine, doc):
        assert engine.evaluate(doc, "sum(//v) + 1") == 7.0
        assert engine.evaluate(doc, "//w + 1") == 3.0  # first node "2"


class TestBooleansOperators:
    def test_or_and(self, engine, doc):
        assert engine.evaluate(doc, "1 or 0") is True
        assert engine.evaluate(doc, "1 and 0") is False

    def test_short_circuit_or(self, engine, doc):
        # The right side would raise (unknown function) if evaluated.
        assert engine.evaluate(doc, "true() or frobnicate()") is True

    def test_short_circuit_and(self, engine, doc):
        assert engine.evaluate(doc, "false() and frobnicate()") is False
