"""The asyncio network front-end over a :class:`DatabaseServer`.

One :class:`NetServer` binds one listening socket and speaks the
framed protocol of :mod:`repro.netserve.protocol` to any number of
concurrent connections.  The asyncio event loop owns all socket I/O;
database work runs on a small thread pool (the engine itself is
blocking), so ten thousand idle or parked connections cost file
descriptors, not threads.

**Sessions.**  A connection's first request must be ``open_session``;
the subject named there is the connection's identity for its whole
life, so every later query or script is served through the paper's
access control for that one ``logged(s)``.

**Backpressure**, in rungs (the *ladder* -- cheapest first):

1. *Per-connection pipeline depth*: at most ``max_pipeline`` requests
   from one connection run at once; the reader coroutine itself holds
   the next frame until a slot frees, so TCP flow control pushes back
   on a client that pipelines faster than it drains responses.
2. *Pause reads when saturated*: when the underlying server's
   admission budget is full, every connection stops *reading* --
   requests queue in kernel buffers on the client's side of the pipe
   instead of as parsed frames in server memory (counted as
   ``net_reads_paused``).
3. *Admission itself*: requests that do get through still pass the
   :class:`~repro.serving.admission.AdmissionController`, so a
   ``shed`` policy answers :class:`~repro.errors.OverloadError`
   frames rather than queueing unboundedly.

**Deadlines.**  A request's ``deadline_ms`` becomes the
:class:`~repro.serving.retry.Deadline` the serving layer already
enforces everywhere (admission queue, lock waits, mid-script
checkpoints) -- the client's budget rides all the way down.

**Group commit.**  ``execute`` requests go through a
:class:`~repro.serving.group.GroupCommitter` (unless constructed with
``group_commit=False``): concurrently arriving scripts from different
connections batch into one WAL fsync.  Only the group's *leader*
occupies a pool thread; followers park on an asyncio future resolved
by a ticket callback, which is what lets a thousand concurrent writers
ride a pool of a few threads.  A member whose attempt hits a commit
race is re-submitted into a later group on the server's retry
schedule, sleeping on the event loop -- never inside a group.

The ``net-mid-frame`` kill-point (:mod:`repro.testing.faults`) makes
the server crash half-way through writing a response frame -- the
torn-frame case clients must treat exactly like a crashed ack:
outcome unknown.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from ..errors import ProtocolError, RetryExhausted
from ..serving.group import CommitTicket, GroupCommitter
from ..serving.server import DatabaseServer
from ..testing.faults import InjectedFault, kill_point
from ..xmltree import serialize
from ..xpath.values import is_node_set
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    error_response,
    ok_response,
    wire_number,
)

__all__ = ["NetServer", "NetServerHandle", "serve_in_thread"]

logger = logging.getLogger("repro.netserve")

#: How much to ask the transport for per read.
_READ_CHUNK = 64 * 1024

#: How long a saturated server naps before re-checking admission.
_PAUSE_POLL = 0.001


class _Connection:
    """Per-connection protocol state."""

    __slots__ = ("user", "tasks", "closing")

    def __init__(self) -> None:
        self.user: Optional[str] = None
        self.tasks: Set[asyncio.Task] = set()
        self.closing = False


class NetServer:
    """A framed-protocol listener over one :class:`DatabaseServer`.

    Args:
        server: the governed server every request runs through.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
        group_commit: batch concurrent ``execute`` requests through a
            :class:`GroupCommitter` (False falls back to one
            :meth:`DatabaseServer.execute` per request -- the
            one-fsync-per-commit baseline E25 measures against).
        max_batch / max_delay_ms: the group committer's window (see
            :class:`GroupCommitter`).
        max_frame: per-frame byte ceiling, both directions.
        max_pipeline: in-flight requests allowed per connection.
        executor_workers: pool threads for blocking database work.
    """

    def __init__(
        self,
        server: DatabaseServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        group_commit: bool = True,
        max_batch: int = 128,
        max_delay_ms: float = 2.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_pipeline: int = 32,
        executor_workers: int = 8,
    ) -> None:
        if max_pipeline < 1:
            raise ValueError("max_pipeline must be >= 1")
        if executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        self._server = server
        self._host = host
        self._port = port
        self._group = (
            GroupCommitter(server, max_batch=max_batch, max_delay_ms=max_delay_ms)
            if group_commit
            else None
        )
        self._max_frame = max_frame
        self._max_pipeline = max_pipeline
        self._executor_workers = executor_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._listener: Optional[asyncio.base_events.Server] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._counters_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "connections_opened": 0,
            "connections_closed": 0,
            "frames_in": 0,
            "frames_out": 0,
            "protocol_errors": 0,
            "reads_paused": 0,  # pause-loop naps taken while saturated
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def server(self) -> DatabaseServer:
        return self._server

    @property
    def group(self) -> Optional[GroupCommitter]:
        """The commit batcher, or None when running ungrouped."""
        return self._group

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved once :meth:`start` has run)."""
        return self._port

    async def start(self) -> None:
        """Bind the listener; resolves :attr:`port` when it was 0."""
        if self._listener is not None:
            raise RuntimeError("NetServer is already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="netserve",
        )
        self._listener = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._port = self._listener.sockets[0].getsockname()[1]
        logger.info("netserve listening on %s:%d", self._host, self._port)

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (starting if needed)."""
        if self._listener is None:
            await self.start()
        async with self._listener:
            await self._listener.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, hang up live connections, drain handlers,
        and shut the worker pool down."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(
                *list(self._handlers), return_exceptions=True
            )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def stats(self) -> Dict[str, int]:
        """The front-end's own counters (a snapshot)."""
        with self._counters_lock:
            return dict(self._counters)

    def _count(self, key: str, by: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += by

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection()
        decoder = FrameDecoder(self._max_frame)
        slots = asyncio.Semaphore(self._max_pipeline)
        send_lock = asyncio.Lock()
        self._count("connections_opened")
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            while not conn.closing:
                await self._pause_while_saturated()
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # The stream offset is gone: one final error frame,
                    # then hang up -- never leave the client hanging.
                    await self._fail_connection(writer, send_lock, None, exc)
                    return
                for frame in frames:
                    self._count("frames_in")
                    await slots.acquire()  # bounded pipeline depth
                    task = asyncio.get_running_loop().create_task(
                        self._dispatch(conn, frame, writer, send_lock, slots)
                    )
                    conn.tasks.add(task)
                    task.add_done_callback(conn.tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer vanished; in-flight work still answers below
        finally:
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            self._count("connections_closed")

    async def _pause_while_saturated(self) -> None:
        """Rung 2 of the ladder: stop reading while admission is full."""
        admission = self._server.admission
        limit = admission.limit
        if limit is None:
            return
        while admission.in_flight >= limit:
            self._count("reads_paused")
            await asyncio.sleep(_PAUSE_POLL)

    async def _dispatch(self, conn, frame, writer, send_lock, slots) -> None:
        request_id: Optional[int] = None
        try:
            request_id = self._request_id(frame)
            result = await self._respond(conn, frame)
            response = ok_response(request_id, result)
        except ProtocolError as exc:
            await self._fail_connection(writer, send_lock, request_id, exc)
            return
        except Exception as exc:  # noqa: BLE001 -- relayed, never fatal
            response = error_response(request_id, exc)
        finally:
            slots.release()
        await self._send(writer, send_lock, response)
        if conn.closing:
            writer.close()

    def _request_id(self, frame: Dict[str, Any]) -> int:
        request_id = frame.get("id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise ProtocolError(
                f"request id must be an integer, got {request_id!r}"
            )
        return request_id

    async def _fail_connection(self, writer, send_lock, request_id, exc):
        self._count("protocol_errors")
        try:
            await self._send(
                writer, send_lock, error_response(request_id, exc)
            )
        except Exception:  # noqa: BLE001 -- already tearing down
            pass
        writer.close()

    async def _send(self, writer, send_lock, response: Dict[str, Any]):
        payload = encode_frame(response, self._max_frame)
        async with send_lock:
            try:
                kill_point("net-mid-frame", bytes=len(payload))
            except InjectedFault:
                # Crash mid-frame: half the bytes hit the wire, then
                # the connection dies -- the client sees a torn frame
                # and must treat the request's outcome as unknown.
                writer.write(payload[: max(1, len(payload) // 2)])
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.close()
                return
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
        self._count("frames_out")

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _respond(self, conn: _Connection, frame: Dict[str, Any]) -> Any:
        op = frame.get("op")
        if op not in OPS:
            raise ProtocolError(f"unknown operation {op!r}")
        deadline = self._budget(frame)
        if op == "open_session":
            return await self._open_session(conn, frame)
        if op == "close":
            conn.closing = True
            return {"closed": True}
        if conn.user is None:
            raise ProtocolError(f"{op!r} before open_session")
        user = conn.user
        if op == "stats":
            stats = await self._blocking(self._server.stats)
            stats.update(
                {f"net_{k}": v for k, v in self.stats().items()}
            )
            stats["net_group_commit"] = self._group is not None
            return stats
        if op == "execute":
            return await self._execute(user, frame, deadline)
        if op == "query":
            path = self._field(frame, "path")
            return await self._blocking(
                self._server.serve, user,
                lambda s: _wire_value(s, s.query(path)),
                deadline, "query",
            )
        if op == "select":
            path = self._field(frame, "path")
            return await self._blocking(
                self._server.serve, user,
                lambda s: {"nodes": _wire_nodes(s, s.select(path))},
                deadline, "select",
            )
        # read_xml
        indent = frame.get("indent")
        if indent is not None and not isinstance(indent, str):
            raise ProtocolError("indent must be a string")
        xml = await self._blocking(
            self._server.read_xml, user, indent, deadline
        )
        return {"xml": xml}

    async def _open_session(self, conn, frame) -> Dict[str, Any]:
        if conn.user is not None:
            raise ProtocolError("session is already open")
        user = self._field(frame, "user")
        await self._blocking(self._server.session, user)
        conn.user = user
        return {
            "user": user,
            "version": self._server.database.version,
            "protocol": PROTOCOL_VERSION,
        }

    async def _execute(self, user, frame, deadline) -> Dict[str, Any]:
        script = self._field(frame, "script")
        strict = frame.get("strict", False)
        if not isinstance(strict, bool):
            raise ProtocolError("strict must be a boolean")
        idem = frame.get("idempotency_key")
        if idem is not None and (not isinstance(idem, str) or not idem):
            raise ProtocolError(
                "idempotency_key must be a non-empty string"
            )
        if self._group is None:
            result = await self._blocking(
                lambda: self._server.execute(
                    user, script, strict, deadline, idempotency_key=idem
                )
            )
        else:
            result = await self._group_commit(
                user, script, strict, deadline, idem
            )
        if getattr(result, "deduped", False):
            # Answered from the exactly-once ledger: the counts are the
            # original acknowledgement's, already scalars.
            return {
                "fully_applied": result.fully_applied,
                "selected": result.selected,
                "affected": result.affected,
                "denied": result.denied,
                "version": result.version,
                "deduped": True,
            }
        return {
            "fully_applied": result.fully_applied,
            "selected": len(result.selected),
            "affected": len(result.affected),
            "denied": len(result.denials),
            "version": self._server.database.version,
            "deduped": False,
        }

    async def _group_commit(self, user, script, strict, budget, idem=None):
        """The async twin of :meth:`GroupCommitter.commit`: lead on a
        pool thread, follow on an awaited ticket callback, re-submit
        races with the backoff sleep taken on the event loop."""
        server = self._server
        group = self._group
        deadline = server._deadline(budget)
        policy = server.retry
        loop = asyncio.get_running_loop()
        delay = 0.0
        last: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            ticket = group.submit(
                user, script, strict, deadline, idempotency_key=idem
            )
            resolved: asyncio.Future = loop.create_future()

            def _settle(t: CommitTicket, fut=resolved) -> None:
                loop.call_soon_threadsafe(
                    lambda: fut.done() or fut.set_result(t)
                )

            ticket.add_done_callback(_settle)
            if ticket.leader:
                await self._blocking(group.drive, ticket)
            timeout = deadline.timeout()
            try:
                await asyncio.wait_for(asyncio.shield(resolved), timeout)
            except asyncio.TimeoutError:
                raise server._deadline_error(
                    deadline, user, "group-commit", "group flush"
                )
            if not ticket.retry:
                if ticket.error is not None:
                    raise ticket.error
                return ticket.result
            last = ticket.error
            if attempt == policy.max_attempts:
                break
            remaining = deadline.remaining()
            if remaining <= 0.0:
                server._breaker.record_failure()
                raise server._deadline_error(
                    deadline, user, "group-commit", "backoff"
                )
            delay = policy.next_delay(delay, server._rng)
            server._count("retries")
            await asyncio.sleep(min(delay, remaining))
        server._breaker.record_failure()
        server._count("retry_exhausted")
        raise RetryExhausted(
            f"group commit by {user!r} lost {policy.max_attempts} "
            f"attempt(s); giving up",
            attempts=policy.max_attempts,
            last_error=last,
        ) from last

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _budget(self, frame: Dict[str, Any]) -> Optional[float]:
        value = frame.get("deadline_ms")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError("deadline_ms must be a number")
        if value <= 0:
            raise ProtocolError("deadline_ms must be > 0")
        return float(value) / 1000.0

    def _field(self, frame: Dict[str, Any], name: str) -> str:
        value = frame.get(name)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                f"{frame.get('op')!r} requires a non-empty string "
                f"{name!r} field"
            )
        return value

    async def _blocking(self, fn, *args):
        if self._pool is None:
            raise RuntimeError("NetServer is not started")
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, lambda: fn(*args)
        )


def _wire_value(session, value) -> Dict[str, Any]:
    """One XPath value as its typed wire form (under the read lock)."""
    if is_node_set(value):
        return {"type": "node-set", "nodes": _wire_nodes(session, value)}
    if isinstance(value, bool):
        return {"type": "boolean", "value": value}
    if isinstance(value, (int, float)):
        return {"type": "number", "value": wire_number(float(value))}
    return {"type": "string", "value": str(value)}


def _wire_nodes(session, nodes) -> list:
    doc = session.view().doc
    return [serialize(doc, nid) for nid in nodes]


# ----------------------------------------------------------------------
# hosting helpers
# ----------------------------------------------------------------------
class NetServerHandle:
    """A :class:`NetServer` running on its own event-loop thread.

    For tests and the synchronous CLI: the caller gets a live
    ``host:port`` without owning an event loop.  :meth:`stop` shuts
    the listener, the pool and the loop down, in that order.
    """

    def __init__(self, net: NetServer, loop, thread) -> None:
        self.net = net
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.net.host

    @property
    def port(self) -> int:
        return self.net.port

    def stop(self, timeout: float = 10.0) -> None:
        """Close the server and join its loop thread (idempotent)."""
        if self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.net.aclose(), self._loop
        )
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "NetServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(server: DatabaseServer, **options: Any) -> NetServerHandle:
    """Start a :class:`NetServer` on a daemon event-loop thread and
    return once it is accepting connections."""
    net = NetServer(server, **options)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(net.start())
        except BaseException as exc:  # noqa: BLE001 -- reported to caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="netserve-loop", daemon=True)
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return NetServerHandle(net, loop, thread)
