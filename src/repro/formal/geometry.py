"""Theory ``db``: document facts and tree-geometry axioms in Datalog.

Section 3.3 of the paper splits the proper axioms into the fact set
``F`` (the ``node(n, v)`` facts, equation 1) and the formulae deriving
tree-geometry predicates.  The paper omits the latter ("depend on the
numbering scheme and are not given in this paper"; they lived in the
Prolog prototype).  We supply them here:

- extensional (read off the numbering scheme, exactly what the paper's
  scheme-specific axioms would compute): ``node/2``, ``child/2``,
  ``imm_following_sibling/2``, and the kind predicates ``element/1``,
  ``text/1``, ``attribute/1`` needed by XPath node tests;
- intensional (scheme-independent Datalog rules): ``parent``,
  ``descendant``, ``ancestor``, ``descendant_or_self``,
  ``ancestor_or_self``, ``following_sibling``, ``preceding_sibling``.
"""

from __future__ import annotations

from ..logic.program import Program
from ..logic.terms import Var, atom, pos
from ..xmltree.document import XMLDocument
from ..xmltree.node import NodeKind

__all__ = ["document_facts", "geometry_rules", "document_theory"]

_KIND_PREDICATES = {
    NodeKind.ELEMENT: "element",
    NodeKind.TEXT: "text",
    NodeKind.ATTRIBUTE: "attribute",
    NodeKind.COMMENT: "comment",
    NodeKind.PROCESSING_INSTRUCTION: "processing_instruction",
}


def document_facts(
    doc: XMLDocument, program: Program, prefix: str = ""
) -> None:
    """Record one document's extensional facts into ``program``.

    Args:
        doc: the document.
        program: destination program.
        prefix: prepended to every predicate name, so one program can
            hold both ``node``/``child`` (the source theory) and
            ``view_node``/``view_child`` (a view theory).
    """
    node_p = prefix + "node"
    child_p = prefix + "child"
    sibling_p = prefix + "imm_following_sibling"
    for nid in doc.all_nodes():
        node = doc.node(nid)
        program.fact(node_p, nid, node.label)
        kind = _KIND_PREDICATES.get(node.kind)
        if kind is not None:
            program.fact(prefix + kind, nid)
        if node.kind is not NodeKind.DOCUMENT:
            parent = nid.parent()
            if node.kind is not NodeKind.ATTRIBUTE:
                program.fact(child_p, nid, parent)
    for nid in doc.all_nodes():
        kids = doc.children(nid)
        for left, right in zip(kids, kids[1:]):
            program.fact(sibling_p, right, left)


def geometry_rules(program: Program, prefix: str = "") -> None:
    """Add the scheme-independent geometry derivation rules.

    These are the axioms the paper's section 3.3 alludes to: from
    ``child`` and immediate sibling order, derive every other tree
    relation.
    """
    x, y, z = Var("X"), Var("Y"), Var("Z")

    def p(name: str) -> str:
        return prefix + name

    # parent(x, y): y is the parent of x -- the converse of child.
    program.rule(atom(p("parent"), y, x), pos(p("child"), x, y))
    # descendant(x, y): x is a proper descendant of y.
    program.rule(atom(p("descendant"), x, y), pos(p("child"), x, y))
    program.rule(
        atom(p("descendant"), x, z),
        pos(p("child"), x, y),
        pos(p("descendant"), y, z),
    )
    program.rule(atom(p("ancestor"), x, y), pos(p("descendant"), y, x))
    # *_or_self variants are reflexive over all recorded nodes.
    v = Var("V")
    program.rule(atom(p("descendant_or_self"), x, x), pos(p("node"), x, v))
    program.rule(
        atom(p("descendant_or_self"), x, y), pos(p("descendant"), x, y)
    )
    program.rule(atom(p("ancestor_or_self"), x, x), pos(p("node"), x, v))
    program.rule(atom(p("ancestor_or_self"), x, y), pos(p("ancestor"), x, y))
    # Sibling order: transitive closure of the immediate relation.
    # following_sibling(x, y): x follows y among one parent's children.
    program.rule(
        atom(p("following_sibling"), x, y),
        pos(p("imm_following_sibling"), x, y),
    )
    program.rule(
        atom(p("following_sibling"), x, z),
        pos(p("imm_following_sibling"), x, y),
        pos(p("following_sibling"), y, z),
    )
    program.rule(
        atom(p("preceding_sibling"), x, y), pos(p("following_sibling"), y, x)
    )


def document_theory(doc: XMLDocument, prefix: str = "") -> Program:
    """A fresh program holding one document's theory ``db``."""
    program = Program()
    document_facts(doc, program, prefix)
    geometry_rules(program, prefix)
    return program
