"""E19 (added, ablation): the ``//name`` label-index fast path.

E15 showed ``//``-paths dominating policy evaluation.  The document now
keeps a lazy element-label index (guarded by the mutation stamp) and
the evaluator answers the desugared ``//name`` pair straight from it.
This ablation measures the fast paths -- ``//name`` via the label
index, ``//*`` / ``//node()`` / ``//text()`` via the kind index --
against the generic evaluation of the *same semantics* (forced by a
vacuous predicate, which the fast path's predicate-free requirement
rejects).

Rows: path form | time.
"""

import pytest

from conftest import synthetic_hospital

from repro.xpath import XPathEngine

ENGINE = XPathEngine()
PATIENTS = 800


@pytest.fixture(scope="module")
def doc():
    return synthetic_hospital(PATIENTS).document


def test_e19_descendant_name_fast_path(benchmark, doc):
    def run():
        return ENGINE.select(doc, "//diagnosis")

    result = benchmark(run)
    assert len(result) == PATIENTS


def test_e19_descendant_name_generic(benchmark, doc):
    def run():
        # The [true()] predicate defeats the fast path; semantics match.
        return ENGINE.select(
            doc, "/descendant-or-self::node()/child::diagnosis[true()]"
        )

    result = benchmark(run)
    assert len(result) == PATIENTS


def test_e19_fast_path_under_policy_evaluation(benchmark, doc):
    """A realistic policy mix: two //name paths plus one rooted path."""

    def run():
        a = ENGINE.select(doc, "//diagnosis")
        b = ENGINE.select(doc, "//service")
        c = ENGINE.select(doc, "/patients")
        return len(a) + len(b) + len(c)

    total = benchmark(run)
    assert total == 2 * PATIENTS + 1


@pytest.mark.parametrize("test", ["*", "node()", "text()"], ids=["star", "node", "text"])
def test_e19_kind_fast_path(benchmark, doc, test):
    """The same machinery answers //*, //node() and //text()."""

    def run():
        return ENGINE.select(doc, f"//{test}")

    result = benchmark(run)
    assert len(result) >= 800


@pytest.mark.parametrize("test", ["*", "node()", "text()"], ids=["star", "node", "text"])
def test_e19_kind_generic(benchmark, doc, test):
    def run():
        return ENGINE.select(
            doc, f"/descendant-or-self::node()/child::{test}[true()]"
        )

    result = benchmark(run)
    assert len(result) >= 800


def test_e19_index_invalidation_cost(benchmark, doc):
    """Worst case: every query preceded by a mutation (index rebuild)."""
    scratch = doc.copy()
    target = scratch.children(scratch.root)[0]

    def run():
        scratch.relabel(target, "patientX")  # bump the stamp
        return ENGINE.select(scratch, "//diagnosis")

    result = benchmark(run)
    assert len(result) == PATIENTS
