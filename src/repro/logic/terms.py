"""Terms, atoms, literals and rules for the Datalog engine.

The paper's formal machinery is first-order logic restricted to Horn
clauses with closed-world negation (section 3, "All the logical formulae
given in this paper are Horn clauses").  The author's artifact was a
Prolog program; our substrate is a Datalog engine with stratified
negation, which is exactly sufficient: every axiom in the paper is a
Horn rule whose negative conditions are existentially-closed
conjunctions over already-derived predicates.

Constants are arbitrary hashable Python values (node identifiers,
strings, integers), so the paper's ``node(n1, patients)`` facts embed
directly without an encoding layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Var",
    "Term",
    "Atom",
    "Literal",
    "Comparison",
    "BodyItem",
    "Rule",
    "atom",
    "pos",
    "neg",
    "cmp",
    "Substitution",
]


@dataclass(frozen=True)
class Var:
    """A logic variable, identified by name within one rule."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


#: A term is a variable or any hashable constant.
Term = Union[Var, object]

#: A substitution binds variable names to constants.
Substitution = Dict[str, object]


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms: ``child(X, Y)``, ``node(n1, 'patients')``."""

    predicate: str
    args: Tuple[Term, ...]

    def __repr__(self) -> str:
        return f"{self.predicate}({', '.join(map(repr, self.args))})"

    def variables(self) -> Set[str]:
        """Names of the variables occurring in this atom."""
        return {t.name for t in self.args if isinstance(t, Var)}

    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return not any(isinstance(t, Var) for t in self.args)

    def substitute(self, binding: Substitution) -> "Atom":
        """Apply a substitution (unbound variables stay as variables)."""
        return Atom(
            self.predicate,
            tuple(
                binding.get(t.name, t) if isinstance(t, Var) else t
                for t in self.args
            ),
        )


@dataclass(frozen=True)
class Literal:
    """A possibly-negated atom in a rule body."""

    atom: Atom
    negated: bool = False

    def __repr__(self) -> str:
        return ("not " if self.negated else "") + repr(self.atom)

    def variables(self) -> Set[str]:
        """Names of the variables occurring in this literal."""
        return self.atom.variables()


_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison between two terms, e.g. ``t' > t`` in axiom 14.

    Both sides must be bound when the comparison is evaluated; the
    engine's planner guarantees that by scheduling comparisons after the
    positive literals that bind their variables.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def variables(self) -> Set[str]:
        """Names of the variables occurring in this comparison."""
        out = set()
        for term in (self.left, self.right):
            if isinstance(term, Var):
                out.add(term.name)
        return out

    def holds(self, binding: Substitution) -> bool:
        """Evaluate under a binding; raises if a side is unbound."""
        left = binding[self.left.name] if isinstance(self.left, Var) else self.left
        right = binding[self.right.name] if isinstance(self.right, Var) else self.right
        return _COMPARATORS[self.op](left, right)


BodyItem = Union[Literal, Comparison]


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body`` with optional negation and comparisons.

    Safety requirements (checked by the engine at load time):

    - every variable in the head occurs in a positive body literal;
    - every variable in a comparison occurs in a positive body literal;
    - a variable in a negated literal either occurs in a positive body
      literal, or occurs *only* inside that one negated literal -- the
      latter is read existentially (``not exists``), which is exactly
      the shape of the paper's negative conditions such as
      ``¬∃n'∃v' (xpath(PATH, n', v') ∧ child(n, n'))`` in formula 4.
    """

    head: Atom
    body: Tuple[BodyItem, ...] = ()

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."

    def positive_variables(self) -> Set[str]:
        """Variables bound by the rule's positive body literals."""
        out: Set[str] = set()
        for item in self.body:
            if isinstance(item, Literal) and not item.negated:
                out |= item.variables()
        return out

    def check_safety(self) -> None:
        """Raise ValueError if the rule is unsafe."""
        bound = self.positive_variables()
        unsafe_head = self.head.variables() - bound
        if unsafe_head:
            raise ValueError(
                f"unsafe rule {self!r}: head variables {sorted(unsafe_head)} "
                "not bound by a positive literal"
            )
        for item in self.body:
            if isinstance(item, Comparison):
                unsafe = item.variables() - bound
                if unsafe:
                    raise ValueError(
                        f"unsafe rule {self!r}: variables {sorted(unsafe)} in "
                        f"{item!r} not bound by a positive literal"
                    )
            elif isinstance(item, Literal) and item.negated:
                # Variables of a negated literal must either be bound by
                # positives or be local to this literal (existential).
                elsewhere: Set[str] = self.head.variables() | bound
                for other in self.body:
                    if other is not item:
                        elsewhere |= other.variables()
                unsafe = (item.variables() - bound) & elsewhere
                if unsafe:
                    raise ValueError(
                        f"unsafe rule {self!r}: variables {sorted(unsafe)} in "
                        f"{item!r} shared with other literals but never bound "
                        "positively"
                    )


# ---------------------------------------------------------------------------
# small DSL helpers
# ---------------------------------------------------------------------------
def atom(predicate: str, *args: Term) -> Atom:
    """Build an atom: ``atom("child", X, Y)``."""
    return Atom(predicate, tuple(args))


def pos(predicate: str, *args: Term) -> Literal:
    """A positive body literal."""
    return Literal(atom(predicate, *args), negated=False)


def neg(predicate: str, *args: Term) -> Literal:
    """A negated body literal (negation as failure)."""
    return Literal(atom(predicate, *args), negated=True)


def cmp(op: str, left: Term, right: Term) -> Comparison:
    """A comparison body item, e.g. ``cmp(">", Var("T2"), Var("T1"))``."""
    return Comparison(op, left, right)
