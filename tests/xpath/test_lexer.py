"""Tokenizer tests, focused on the XPath 3.7 disambiguation rules."""

import pytest

from repro.xpath.lexer import Token, XPathSyntaxError, tokenize


def kinds(expr):
    return [(t.kind, t.value) for t in tokenize(expr) if t.kind != "eof"]


class TestBasicTokens:
    def test_names_and_slashes(self):
        assert kinds("/a/b") == [
            ("op", "/"),
            ("name", "a"),
            ("op", "/"),
            ("name", "b"),
        ]

    def test_double_slash(self):
        assert kinds("//a")[0] == ("op", "//")

    def test_numbers(self):
        assert kinds("3.14") == [("number", "3.14")]
        assert kinds(".5") == [("number", ".5")]
        assert kinds("42") == [("number", "42")]

    def test_string_literals_both_quotes(self):
        assert kinds("'abc'") == [("literal", "abc")]
        assert kinds('"x y"') == [("literal", "x y")]

    def test_variables(self):
        assert kinds("$USER") == [("variable", "USER")]

    def test_axis_separator(self):
        assert kinds("child::a") == [
            ("name", "child"),
            ("op", "::"),
            ("name", "a"),
        ]

    def test_two_char_operators(self):
        assert kinds("a <= b != c >= d") == [
            ("name", "a"),
            ("op", "<="),
            ("name", "b"),
            ("op", "!="),
            ("name", "c"),
            ("op", ">="),
            ("name", "d"),
        ]

    def test_dotdot_and_dot(self):
        assert kinds("../.") == [("op", ".."), ("op", "/"), ("op", ".")]

    def test_qualified_names(self):
        assert kinds("xu:rename") == [("name", "xu:rename")]

    def test_names_with_hyphen(self):
        assert kinds("insert-before") == [("name", "insert-before")]


class TestDisambiguation:
    def test_star_after_slash_is_name(self):
        assert kinds("/*") == [("op", "/"), ("name", "*")]

    def test_star_after_operand_is_operator(self):
        assert kinds("2 * 3") == [
            ("number", "2"),
            ("op", "*"),
            ("number", "3"),
        ]

    def test_star_after_paren_close_is_operator(self):
        assert kinds("(1) * 2")[3] == ("op", "*")

    def test_and_as_operator_after_operand(self):
        assert ("op", "and") in kinds("a and b")

    def test_and_as_name_at_start(self):
        assert kinds("and")[0] == ("name", "and")

    def test_div_mod_names_after_slash(self):
        assert kinds("/div/mod") == [
            ("op", "/"),
            ("name", "div"),
            ("op", "/"),
            ("name", "mod"),
        ]

    def test_div_as_operator(self):
        assert ("op", "div") in kinds("4 div 2")


class TestErrors:
    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_bad_variable(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("$ ")

    def test_unknown_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")

    def test_error_position(self):
        try:
            tokenize("abc # d")
        except XPathSyntaxError as exc:
            assert exc.position == 4
        else:  # pragma: no cover
            pytest.fail("expected error")

    def test_eof_token_always_present(self):
        tokens = tokenize("")
        assert tokens[-1].kind == "eof"
