"""XML tree substrate: documents, persistent numbering, parsing.

This package is the operational form of the paper's section 3.1-3.3 --
documents as labelled trees over persistent node identifiers from which
all tree geometry is derivable.
"""

from .document import DocumentError, XMLDocument
from .fragments import Fragment, element, fragment_from_subtree, text
from .labels import (
    DOCUMENT_ID,
    LSDXScheme,
    NodeId,
    NumberingScheme,
    PersistentDeweyScheme,
    RenumberingRequired,
    RenumberingScheme,
    document_order_key,
)
from .node import RESTRICTED, Node, NodeKind
from .parser import XMLSyntaxError, parse_fragment, parse_xml
from .serializer import render_tree, serialize

__all__ = [
    "DOCUMENT_ID",
    "DocumentError",
    "Fragment",
    "LSDXScheme",
    "Node",
    "NodeId",
    "NodeKind",
    "NumberingScheme",
    "PersistentDeweyScheme",
    "RESTRICTED",
    "RenumberingRequired",
    "RenumberingScheme",
    "XMLDocument",
    "XMLSyntaxError",
    "document_order_key",
    "element",
    "fragment_from_subtree",
    "parse_fragment",
    "parse_xml",
    "render_tree",
    "serialize",
    "text",
]
