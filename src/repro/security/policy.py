"""The security policy: prioritized accept/deny rules (paper section 4.3).

A policy is the paper's set ``P`` of facts
``rule(accept|deny, privilege, path, subject, t)`` where ``t`` is the
priority -- "the timestamp indicating when the command was issued plays
the priority role.  The last issued command has the priority over the
previous ones and possibly cancels them."

:class:`Policy` therefore assigns strictly increasing priorities
automatically (explicit priorities are accepted for reproducing the
paper's numbered examples) and offers the administration verbs
``grant`` / ``deny``.  Rule paths may reference the ``$USER`` variable,
bound at evaluation time to the session user's login (rule 5 of the
example policy).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..xpath.parser import parse_xpath
from .privileges import Privilege
from .subjects import SubjectHierarchy

__all__ = ["Effect", "SecurityRule", "Policy", "PolicyError"]


class PolicyError(ValueError):
    """Invalid rule: unknown subject, bad path, duplicate priority..."""


#: Rule effects, the paper's first ``rule/5`` argument.
ACCEPT = "accept"
DENY = "deny"
Effect = str


@dataclass(frozen=True)
class SecurityRule:
    """One fact ``rule(effect, privilege, path, subject, priority)``."""

    effect: Effect
    privilege: Privilege
    path: str
    subject: str
    priority: int

    def __post_init__(self) -> None:
        if self.effect not in (ACCEPT, DENY):
            raise PolicyError(f"effect must be accept or deny, got {self.effect!r}")

    def __str__(self) -> str:
        return (
            f"rule({self.effect},{self.privilege},{self.path},"
            f"{self.subject},{self.priority})"
        )


class Policy:
    """An ordered set of security rules with unique priorities.

    Args:
        subjects: the hierarchy rules must reference; subjects are
            validated at insertion time.
    """

    def __init__(self, subjects: SubjectHierarchy) -> None:
        self._subjects = subjects
        self._rules: List[SecurityRule] = []
        self._next_priority = itertools.count(1)

    # ------------------------------------------------------------------
    # administration verbs
    # ------------------------------------------------------------------
    def grant(
        self,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int] = None,
    ) -> SecurityRule:
        """Add an accept rule; returns the recorded rule."""
        return self._add(ACCEPT, privilege, path, subject, priority)

    def deny(
        self,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int] = None,
    ) -> SecurityRule:
        """Add a deny rule; returns the recorded rule."""
        return self._add(DENY, privilege, path, subject, priority)

    def _add(
        self,
        effect: Effect,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int],
    ) -> SecurityRule:
        if subject not in self._subjects:
            raise PolicyError(f"unknown subject {subject!r}")
        try:
            parse_xpath(path)
        except ValueError as exc:
            raise PolicyError(f"invalid rule path {path!r}: {exc}") from exc
        if priority is None:
            priority = self._fresh_priority()
        elif any(r.priority == priority for r in self._rules):
            raise PolicyError(f"priority {priority} already used")
        rule = SecurityRule(effect, Privilege.parse(privilege), path, subject, priority)
        self._rules.append(rule)
        return rule

    def _fresh_priority(self) -> int:
        highest = max((r.priority for r in self._rules), default=0)
        candidate = next(self._next_priority)
        return max(candidate, highest + 1)

    def revoke(self, rule: SecurityRule) -> None:
        """Remove a rule (administration convenience; the paper itself
        models cancellation by issuing a later opposite rule).

        Raises:
            PolicyError: if the rule is not in the policy.
        """
        try:
            self._rules.remove(rule)
        except ValueError:
            raise PolicyError(f"rule not in policy: {rule}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SecurityRule]:
        return iter(sorted(self._rules, key=lambda r: r.priority))

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def subjects(self) -> SubjectHierarchy:
        return self._subjects

    def rules_for(self, user: str, privilege: Privilege) -> List[SecurityRule]:
        """Rules applying to ``user`` (via isa closure) for a privilege,
        in increasing priority order."""
        applicable = self._subjects.ancestors(user)
        return [
            r
            for r in self
            if r.privilege is privilege and r.subject in applicable
        ]

    def facts(self) -> Iterator[Tuple[str, str, str, str, int]]:
        """The paper's ``rule/5`` facts (set P), in priority order."""
        for rule in self:
            yield (rule.effect, rule.privilege.value, rule.path, rule.subject, rule.priority)
