"""The reader-writer lock: sharing, exclusion, writer preference."""

import threading
import time

import pytest

from repro.serving import RWLock


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return predicate()


class TestSharing:
    def test_readers_share(self):
        lock = RWLock()
        assert lock.acquire_read()
        assert lock.acquire_read(timeout=0.0)  # a reader never waits for one
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert not lock.acquire_read(timeout=0.01)
        lock.release_write()
        assert lock.acquire_read(timeout=0.01)

    def test_reader_excludes_writer(self):
        lock = RWLock()
        assert lock.acquire_read()
        assert not lock.acquire_write(timeout=0.01)
        lock.release_read()
        assert lock.acquire_write(timeout=0.01)

    def test_writers_exclude_each_other(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert not lock.acquire_write(timeout=0.01)
        lock.release_write()


class TestWriterPreference:
    def test_new_readers_queue_behind_a_waiting_writer(self):
        lock = RWLock()
        assert lock.acquire_read()
        got_write = threading.Event()

        def writer():
            assert lock.acquire_write(timeout=5.0)
            got_write.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert _wait_until(lambda: lock._writers_waiting == 1)
        # The writer is queued: a new reader must not jump it.
        assert not lock.acquire_read(timeout=0.02)
        lock.release_read()
        assert got_write.wait(5.0)
        lock.release_write()
        thread.join(5.0)
        assert lock.acquire_read(timeout=1.0)

    def test_writer_timeout_withdraws_the_claim(self):
        lock = RWLock()
        assert lock.acquire_read()
        # The writer gives up; its queued claim must not keep blocking
        # readers afterwards.
        assert not lock.acquire_write(timeout=0.01)
        assert lock.acquire_read(timeout=0.5)
        lock.release_read()
        lock.release_read()


class TestErrorsAndContextManagers:
    def test_release_without_acquire(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_context_managers_report_acquisition(self):
        lock = RWLock()
        with lock.read_locked() as ok:
            assert ok
        with lock.write_locked() as ok:
            assert ok
            with lock.read_locked(timeout=0.01) as nested:
                assert not nested  # timed out; block ran without the lock
        # everything was released on exit
        with lock.write_locked(timeout=0.5) as ok:
            assert ok

    def test_concurrent_reader_count(self):
        lock = RWLock()
        inside = threading.Barrier(4, timeout=5.0)

        def reader():
            with lock.read_locked() as ok:
                assert ok
                inside.wait()  # all 4 readers in the region at once

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert not any(t.is_alive() for t in threads)
