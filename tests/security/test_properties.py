"""Property-based tests of the security model's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import (
    Policy,
    PermissionResolver,
    Privilege,
    SecureWriteExecutor,
    ViewBuilder,
)
from repro.xmltree import RESTRICTED, NodeKind
from repro.xupdate import Remove, Rename, UpdateContent

from tests.strategies import (
    RULE_PATHS,
    build_policy,
    build_subjects,
    documents,
    policy_rules,
)

BUILDER = ViewBuilder()
RESOLVER = PermissionResolver()
EXECUTOR = SecureWriteExecutor()


@given(documents(), policy_rules())
@settings(max_examples=100, deadline=None)
def test_view_is_subset_of_source(doc, rules):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u2")
    source_ids = set(doc.all_nodes())
    for nid in view.doc.all_nodes():
        assert nid in source_ids


@given(documents(), policy_rules())
@settings(max_examples=100, deadline=None)
def test_view_is_parent_closed(doc, rules):
    """Axioms 16-17: a node is selected only if its parent is."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u2")
    for nid in view.doc.all_nodes():
        if not nid.is_document:
            assert nid.parent() in view.doc


@given(documents(), policy_rules())
@settings(max_examples=100, deadline=None)
def test_restricted_iff_position_without_read(doc, rules):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u2")
    perms = view.permissions
    for nid in view.doc.all_nodes():
        if nid.is_document:
            continue
        if view.is_restricted(nid):
            assert perms.holds(nid, Privilege.POSITION)
            assert not perms.holds(nid, Privilege.READ)
            assert view.doc.label(nid) == RESTRICTED
        else:
            assert perms.holds(nid, Privilege.READ)
            assert view.doc.label(nid) == doc.label(nid)


@given(documents(), policy_rules())
@settings(max_examples=100, deadline=None)
def test_monotonicity_of_blanket_grant(doc, rules):
    """Appending accept-read-everything at the end can only grow the
    view (the final rule wins all read conflicts)."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    before = set(BUILDER.build(doc, policy, "u2").doc.all_nodes())
    policy.grant("read", "//node()", "u2")
    policy.grant("read", "//@*", "u2")
    after = set(BUILDER.build(doc, policy, "u2").doc.all_nodes())
    assert before <= after


@given(documents(), policy_rules())
@settings(max_examples=100, deadline=None)
def test_trailing_total_deny_empties_view(doc, rules):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    policy.deny("read", "//node()", "u2")
    policy.deny("position", "//node()", "u2")
    policy.deny("read", "//@*", "u2")
    policy.deny("position", "//@*", "u2")
    view = BUILDER.build(doc, policy, "u2")
    assert len(view.doc) == 1  # document node only (axiom 15)


@given(
    documents(),
    policy_rules(),
    st.sampled_from(RULE_PATHS),
    st.sampled_from(["rename", "update", "remove"]),
)
@settings(max_examples=100, deadline=None)
def test_secure_writes_never_touch_invisible_labels(doc, rules, path, kind):
    """Non-interference: a secure write by u2 never changes the label
    of a node u2 cannot see -- except wholesale deletion of a visible
    node's subtree (the paper's confidentiality-over-integrity choice
    for remove)."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u2")
    if kind == "rename":
        op = Rename(path, "zzz")
    elif kind == "update":
        op = UpdateContent(path, "zzz")
    else:
        op = Remove(path)
    result = EXECUTOR.apply(view, op)
    new = result.document
    visible = set(view.doc.all_nodes())
    for nid in doc.all_nodes():
        if nid in visible:
            continue
        if nid not in new:
            # Only legal if an ancestor was visibly, permittedly removed.
            assert isinstance(op, Remove)
            assert any(anc in result.affected for anc in nid.ancestors())
        else:
            assert new.label(nid) == doc.label(nid)


@given(documents(), policy_rules(), st.sampled_from(RULE_PATHS))
@settings(max_examples=100, deadline=None)
def test_denied_operations_leave_database_identical(doc, rules, path):
    """If every target is denied, dbnew == db exactly."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u1")
    result = EXECUTOR.apply(view, Rename(path, "zzz"))
    if not result.affected:
        assert result.document.facts() == doc.facts()


@given(documents(), policy_rules())
@settings(max_examples=60, deadline=None)
def test_perm_resolution_matches_naive_axiom14(doc, rules):
    """The resolver's replay equals the literal axiom-14 definition:
    an accept with no strictly later matching deny."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    user = "u2"
    table = RESOLVER.resolve(doc, policy, user)
    engine = RESOLVER.engine
    ancestors = subjects.ancestors(user)
    all_rules = list(policy)
    for privilege in Privilege:
        matching = [
            (r, set(engine.select(doc, r.path, variables={"USER": user})))
            for r in all_rules
            if r.privilege is privilege and r.subject in ancestors
        ]
        for nid in doc.all_nodes():
            expected = False
            for rule, selected in matching:
                if rule.effect != "accept" or nid not in selected:
                    continue
                overridden = any(
                    later.effect == "deny"
                    and later.priority > rule.priority
                    and nid in later_sel
                    for later, later_sel in matching
                )
                if not overridden:
                    expected = True
                    break
            assert table.holds(nid, privilege) == expected
