"""E7 (figure 3 / equations 10-12): the subject hierarchy closure.

Regenerates: the explicit isa facts of equation 10 and the
reflexive-transitive closure of axioms 11-12, timing both the
procedural closure and the Datalog derivation, plus a scaling series
over deeper role chains.
"""

import pytest

from repro.core import hospital_subjects
from repro.formal.axioms import subject_rules
from repro.logic import DatalogEngine, Program
from repro.security import SubjectHierarchy


def test_e7_procedural_closure(benchmark):
    def run():
        subjects = hospital_subjects()
        closed = set(subjects.closure_facts())
        assert ("laporte", "staff") in closed
        assert all((s, s) in closed for s in subjects.subjects)
        return closed

    closed = benchmark(run)
    # 10 reflexive + 8 explicit + 3 transitive (the three staff users).
    assert len(closed) == 10 + 8 + 3


def test_e7_formal_closure(benchmark):
    subjects = hospital_subjects()

    def run():
        program = Program()
        subject_rules(subjects, program)
        engine = DatalogEngine(program)
        return set(engine.query("isa"))

    closed = benchmark(run)
    assert closed == set(subjects.closure_facts())


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_e7_closure_scaling_with_depth(benchmark, depth):
    """Closure cost along a role chain of increasing depth."""
    subjects = SubjectHierarchy()
    subjects.add_role("role0")
    for i in range(1, depth):
        subjects.add_role(f"role{i}", member_of=f"role{i - 1}")
    subjects.add_user("u", member_of=f"role{depth - 1}")

    def run():
        assert subjects.isa("u", "role0")
        return sum(1 for _ in subjects.closure_facts())

    total = benchmark(run)
    # Roles contribute sum(i+1) = d(d+1)/2 facts; the user adds d+1.
    assert total == depth * (depth + 1) // 2 + depth + 1
