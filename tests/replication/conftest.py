"""Shared fixtures for the replication suites."""

import pytest

from repro.security import Policy, SecureXMLDatabase, SubjectHierarchy
from repro.storage import dump_state
from repro.wal import WriteAheadLog
from repro.xmltree import XMLDocument, element, text

USERS = ("w1", "w2")

XUPDATE_NS = 'xmlns:xupdate="http://www.xmldb.org/xupdate"'


def editors_database(users=USERS) -> SecureXMLDatabase:
    """A tiny database where every user may read and write everything
    (these suites stress replication, not the policy)."""
    doc = XMLDocument()
    root = doc.add_root("log")
    element("entry", text("seed")).attach(doc, root)
    subjects = SubjectHierarchy()
    subjects.add_role("editor")
    for user in users:
        subjects.add_user(user, member_of="editor")
    policy = Policy(subjects)
    for privilege in ("read", "update", "insert", "delete"):
        policy.grant(privilege, "//*", "editor")
    return SecureXMLDatabase(doc, subjects, policy)


def append_script(label: str) -> str:
    """An XUpdate script appending one ``<label>`` entry under the root."""
    return (
        f"<xupdate:modifications {XUPDATE_NS}>"
        f'<xupdate:append select="/log">'
        f'<xupdate:element name="{label}">x</xupdate:element>'
        f"</xupdate:append></xupdate:modifications>"
    )


def state_bytes(db) -> str:
    """The full serialized state convergence is asserted on: document,
    subjects and policy, exactly as a checkpoint snapshot spells them
    (byte-identical here really means byte-identical on disk)."""
    return dump_state(db.document, db.subjects, db.policy)


@pytest.fixture
def wal_dir(tmp_path):
    return str(tmp_path / "db.wal")


@pytest.fixture
def primary(wal_dir):
    """An editors database with an attached, checkpointed log."""
    db = editors_database()
    wal = WriteAheadLog(wal_dir)
    db.attach_wal(wal)
    wal.checkpoint(db)
    return db
