"""Admission control and the write circuit breaker.

Overload protection for the serving layer, in two layers:

**Admission control** bounds the number of in-flight requests.  When
the budget is full the overload policy decides: ``"block"`` queues the
caller (up to its deadline), keeping throughput at the cost of
latency; ``"shed"`` fails fast with
:class:`~repro.errors.OverloadError`, keeping latency bounded at the
cost of rejected work.  Shedding is the correct choice once queueing
delay alone would blow every deadline -- the E21 benchmark measures
exactly that trade.

**The circuit breaker** guards the write path against failure storms:
after ``failure_threshold`` consecutive write failures the circuit
*opens* and new writes are refused immediately
(:class:`~repro.errors.CircuitOpenError`) without consuming retries,
locks, or database work.  After ``reset_timeout`` seconds the circuit
*half-opens*: exactly one probe write is let through, and its outcome
closes the circuit again or re-opens it for another timer round.

Both classes are thread-safe and take injectable clocks for tests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from ..errors import CircuitOpenError, DeadlineExceeded, OverloadError
from .retry import Deadline

__all__ = ["AdmissionController", "CircuitBreaker"]

#: Overload policies :class:`AdmissionController` accepts.
OVERLOAD_POLICIES = ("block", "shed")


class AdmissionController:
    """A bounded in-flight budget with a block-or-shed overload policy.

    Args:
        limit: maximum concurrently admitted requests; None disables
            admission control (every request is admitted instantly).
        policy: ``"block"`` (queue until a slot frees or the deadline
            expires) or ``"shed"`` (raise
            :class:`~repro.errors.OverloadError` immediately when
            full).

    Example::

        admission = AdmissionController(limit=64, policy="shed")
        with admission.admitted(Deadline(0.5)):
            ...  # at most 64 requests in here at once
    """

    def __init__(self, limit: Optional[int], policy: str = "block") -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 (or None to disable)")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.limit = limit
        self.policy = policy
        self._cond = threading.Condition()
        self._in_flight = 0
        #: Counters: ``admitted`` / ``shed`` / ``queued`` (admissions
        #: that had to wait) / ``peak_in_flight``.
        self.stats: Dict[str, int] = {
            "admitted": 0,
            "shed": 0,
            "queued": 0,
            "peak_in_flight": 0,
        }

    @property
    def in_flight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._cond:
            return self._in_flight

    def acquire(self, deadline: Optional[Deadline] = None) -> None:
        """Claim one in-flight slot.

        Raises:
            OverloadError: the budget is full and the policy is
                ``"shed"``.
            DeadlineExceeded: the policy is ``"block"`` and
                ``deadline`` expired while queued.
        """
        with self._cond:
            if self.limit is None:
                self._admit()
                return
            if self._in_flight < self.limit:
                self._admit()
                return
            if self.policy == "shed":
                self.stats["shed"] += 1
                raise OverloadError(
                    f"in-flight budget of {self.limit} exhausted "
                    f"({self._in_flight} running); request shed",
                    limit=self.limit,
                    in_flight=self._in_flight,
                )
            self.stats["queued"] += 1
            timeout = None if deadline is None else deadline.timeout()
            ok = self._cond.wait_for(
                lambda: self._in_flight < self.limit, timeout=timeout
            )
            if not ok:
                raise DeadlineExceeded(
                    f"deadline of {deadline.budget:.6g}s exceeded while "
                    f"queued for admission (budget {self.limit})",
                    budget=deadline.budget,
                )
            self._admit()

    def _admit(self) -> None:
        self._in_flight += 1
        self.stats["admitted"] += 1
        if self._in_flight > self.stats["peak_in_flight"]:
            self.stats["peak_in_flight"] = self._in_flight

    def release(self) -> None:
        """Return one in-flight slot."""
        with self._cond:
            if self._in_flight <= 0:
                raise RuntimeError("release without a matching acquire")
            self._in_flight -= 1
            self._cond.notify()

    @contextmanager
    def admitted(self, deadline: Optional[Deadline] = None) -> Iterator[None]:
        """Hold one slot for a ``with`` block."""
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()


class CircuitBreaker:
    """A closed / open / half-open breaker over the write path.

    Args:
        failure_threshold: consecutive failures that open the circuit.
        reset_timeout: seconds an open circuit waits before letting a
            half-open probe through.
        clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Counters: ``trips`` (closed/half-open -> open transitions)
        #: and ``rejections`` (calls refused while open).
        self.stats: Dict[str, int] = {"trips": 0, "rejections": 0}

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
            self._probing = False

    def allow(self) -> None:
        """Gate one write attempt.

        Raises:
            CircuitOpenError: the circuit is open (timer still
                running), or half-open with its single probe already
                taken.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return
            if self._state == "half-open" and not self._probing:
                self._probing = True  # this caller is the probe
                return
            self.stats["rejections"] += 1
            retry_after = max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"write circuit open after {self._failures} consecutive "
                f"failure(s); retry in {retry_after:.3f}s",
                failures=self._failures,
                retry_after=retry_after,
            )

    def record_success(self) -> None:
        """Note a successful write: closes the circuit and clears the
        failure run."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """Note a failed write; trips the circuit at the threshold (a
        failed half-open probe re-opens immediately)."""
        with self._lock:
            self._failures += 1
            was_open = self._state == "open"
            if self._state == "half-open" or (
                self._state == "closed"
                and self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
            if self._state == "open" and not was_open:
                self.stats["trips"] += 1
