"""The six XUpdate operations (paper section 3.4, XUpdate WD [15]).

Each operation is a small immutable description: the PATH selecting the
target nodes plus the operation-specific payload (a new label VNEW or a
tree TREE).  Executing operations -- with or without access control --
is the job of :mod:`repro.xupdate.executor` and
:mod:`repro.security.write` respectively; keeping descriptions separate
from execution mirrors the paper's split between the operation's
parameters and the link axioms that interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..xmltree.fragments import Fragment

__all__ = [
    "XUpdateOperation",
    "Rename",
    "UpdateContent",
    "Append",
    "InsertBefore",
    "InsertAfter",
    "Remove",
    "UpdateScript",
]


class XUpdateOperation:
    """Base class for the six XUpdate instructions."""

    __slots__ = ()

    #: The privilege the paper's write access controls require
    #: (section 4.4.2); informational -- enforcement lives in
    #: :mod:`repro.security.write`.
    required_privilege: str = ""


@dataclass(frozen=True)
class Rename(XUpdateOperation):
    """``xupdate:rename``: relabel the nodes addressed by ``path``.

    Logical semantics: formulae (2)-(3).  Secure semantics: axioms
    (18)-(19) -- requires the *update* privilege on each selected node.
    """

    path: str
    new_name: str
    required_privilege = "update"


@dataclass(frozen=True)
class UpdateContent(XUpdateOperation):
    """``xupdate:update``: set the content of the nodes at ``path``.

    The paper reads this as relabelling every *child* of each selected
    node to VNEW (formulae (4)-(5)); secure semantics axioms (20)-(21)
    require both *update* and *read* on the affected children.
    """

    path: str
    new_value: str
    required_privilege = "update"


@dataclass(frozen=True)
class Append(XUpdateOperation):
    """``xupdate:append``: insert ``tree`` as last child subtree.

    Logical semantics: formulae (6)-(7) with ``o = append``; secure
    semantics axiom (22) -- requires *insert* on each selected node.
    """

    path: str
    tree: Fragment
    required_privilege = "insert"


@dataclass(frozen=True)
class InsertBefore(XUpdateOperation):
    """``xupdate:insert-before``: insert ``tree`` as preceding sibling.

    Formulae (6)-(7) with ``o = insert-before``; secure semantics axiom
    (23) -- requires *insert* on the *parent* of each selected node.
    """

    path: str
    tree: Fragment
    required_privilege = "insert"


@dataclass(frozen=True)
class InsertAfter(XUpdateOperation):
    """``xupdate:insert-after``: insert ``tree`` as following sibling.

    Formulae (6)-(7) with ``o = insert-after``; secure semantics axiom
    (24) -- requires *insert* on the *parent* of each selected node.
    """

    path: str
    tree: Fragment
    required_privilege = "insert"


@dataclass(frozen=True)
class Remove(XUpdateOperation):
    """``xupdate:remove``: delete the subtrees rooted at ``path``.

    Logical semantics: formulae (8)-(9); secure semantics axiom (25) --
    requires *delete* on each selected node, and (the paper's explicit
    confidentiality-over-integrity choice) removes invisible descendants
    silently rather than revealing their existence by failing.
    """

    path: str
    required_privilege = "delete"


@dataclass(frozen=True)
class UpdateScript:
    """An ordered batch of operations: one ``<xupdate:modifications>``."""

    operations: Tuple[XUpdateOperation, ...]

    def __iter__(self):
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)
