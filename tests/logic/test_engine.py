"""Datalog evaluation: fixpoints, negation, comparisons, queries."""

import pytest

from repro.logic import DatalogEngine, Program, Var, atom, cmp, neg, pos

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def engine_with(setup):
    p = Program()
    setup(p)
    return DatalogEngine(p)


class TestBasicInference:
    def test_facts_are_derivable(self):
        e = engine_with(lambda p: p.fact("a", 1))
        assert e.holds("a", 1)
        assert not e.holds("a", 2)

    def test_simple_rule(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.rule(atom("r", Y, X), pos("e", X, Y))

        e = engine_with(setup)
        assert e.holds("r", 2, 1)

    def test_join_two_literals(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.fact("e", 2, 3)
            p.rule(atom("two", X, Z), pos("e", X, Y), pos("e", Y, Z))

        e = engine_with(setup)
        assert e.query("two") == [(1, 3)]

    def test_constants_in_rule_body(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.fact("e", 5, 2)
            p.rule(atom("to_two", X), pos("e", X, 2))

        e = engine_with(setup)
        assert sorted(e.query("to_two")) == [(1,), (5,)]

    def test_repeated_variable_forces_equality(self):
        def setup(p):
            p.fact("e", 1, 1)
            p.fact("e", 1, 2)
            p.rule(atom("loop", X), pos("e", X, X))

        e = engine_with(setup)
        assert e.query("loop") == [(1,)]


class TestRecursion:
    def test_transitive_closure(self):
        def setup(p):
            for a, b in [(1, 2), (2, 3), (3, 4), (7, 8)]:
                p.fact("e", a, b)
            p.rule(atom("t", X, Y), pos("e", X, Y))
            p.rule(atom("t", X, Z), pos("t", X, Y), pos("e", Y, Z))

        e = engine_with(setup)
        assert set(e.query("t")) == {
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (7, 8),
        }

    def test_closure_matches_networkx(self):
        import networkx as nx
        import random

        rng = random.Random(7)
        # Edges point upward only (a DAG): nx.descendants excludes the
        # source even on cycles, while Datalog correctly derives t(u,u)
        # for cyclic u, so the oracle comparison is meaningful on DAGs.
        edges = set()
        while len(edges) < 30:
            a, b = rng.randint(0, 15), rng.randint(0, 15)
            if a < b:
                edges.add((a, b))

        def setup(p):
            for a, b in edges:
                p.fact("e", a, b)
            p.rule(atom("t", X, Y), pos("e", X, Y))
            p.rule(atom("t", X, Z), pos("t", X, Y), pos("e", Y, Z))

        e = engine_with(setup)
        graph = nx.DiGraph(edges)
        expected = {
            (u, v)
            for u in graph
            for v in nx.descendants(graph, u)
        }
        assert set(e.query("t")) == expected

    def test_mutual_recursion(self):
        def setup(p):
            p.fact("n", 0)
            for i in range(6):
                p.fact("succ", i, i + 1)
            p.rule(atom("even", 0))
            p.rule(atom("odd", Y), pos("even", X), pos("succ", X, Y))
            p.rule(atom("even", Y), pos("odd", X), pos("succ", X, Y))

        e = engine_with(setup)
        assert {x for (x,) in e.query("even")} == {0, 2, 4, 6}
        assert {x for (x,) in e.query("odd")} == {1, 3, 5}


class TestNegation:
    def test_negation_over_lower_stratum(self):
        def setup(p):
            for i in (1, 2, 3):
                p.fact("n", i)
            p.fact("bad", 2)
            p.rule(atom("good", X), pos("n", X), neg("bad", X))

        e = engine_with(setup)
        assert {x for (x,) in e.query("good")} == {1, 3}

    def test_existential_negation(self):
        def setup(p):
            p.fact("person", "a")
            p.fact("person", "b")
            p.fact("owns", "a", "car")
            p.rule(atom("carless", X), pos("person", X), neg("owns", X, Y))

        e = engine_with(setup)
        assert e.query("carless") == [("b",)]

    def test_negation_of_underived_predicate(self):
        def setup(p):
            p.fact("n", 1)
            p.rule(atom("q", X), pos("n", X), neg("never", X))

        e = engine_with(setup)
        assert e.holds("q", 1)


class TestComparisons:
    def test_comparison_filters_bindings(self):
        def setup(p):
            for i in range(5):
                p.fact("n", i)
            p.rule(atom("big", X), pos("n", X), cmp(">", X, 2))

        e = engine_with(setup)
        assert {x for (x,) in e.query("big")} == {3, 4}

    def test_comparison_between_variables(self):
        def setup(p):
            p.fact("pair", 1, 5)
            p.fact("pair", 5, 1)
            p.rule(atom("inc", X, Y), pos("pair", X, Y), cmp("<", X, Y))

        e = engine_with(setup)
        assert e.query("inc") == [(1, 5)]

    def test_comparison_scheduled_after_binding(self):
        """Body order comparison-first must still work (the planner
        defers it until its variables are bound)."""
        p = Program()
        p.fact("n", 1)
        p.fact("n", 5)
        from repro.logic import Rule

        rule = Rule(atom("big", X), (cmp(">", X, 2), pos("n", X)))
        p.add_rule(rule)
        e = DatalogEngine(p)
        assert e.query("big") == [(5,)]


class TestQueryApi:
    def test_query_with_pattern(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.fact("e", 1, 3)
            p.fact("e", 2, 3)

        e = engine_with(setup)
        assert sorted(e.query("e", 1, Var("_"))) == [(1, 2), (1, 3)]
        assert e.query("e", Var("_"), 3) == [(1, 3), (2, 3)]

    def test_query_unknown_predicate(self):
        e = engine_with(lambda p: None)
        assert e.query("nothing") == []

    def test_solve_is_idempotent(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.rule(atom("t", X, Y), pos("e", X, Y))

        e = engine_with(setup)
        first = e.solve()
        second = e.solve()
        assert first == second

    def test_solve_returns_all_relations(self):
        def setup(p):
            p.fact("e", 1, 2)
            p.rule(atom("t", X, Y), pos("e", X, Y))

        result = engine_with(setup).solve()
        assert result["e"] == {(1, 2)}
        assert result["t"] == {(1, 2)}


class TestScale:
    def test_long_chain_closure(self):
        """Semi-naive evaluation handles a 300-node chain quickly."""

        def setup(p):
            for i in range(300):
                p.fact("e", i, i + 1)
            p.rule(atom("t", X, Y), pos("e", X, Y))
            p.rule(atom("t", X, Z), pos("t", X, Y), pos("e", Y, Z))

        e = engine_with(setup)
        assert e.holds("t", 0, 300)
        assert len(e.query("t")) == 300 * 301 // 2
