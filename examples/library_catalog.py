"""Policy authoring on a different schema: a library catalogue.

The paper's model is schema-agnostic; this example moves it off the
medical domain to show policy authoring from scratch:

- *visitors* may browse titles and authors, but acquisition prices and
  internal condition notes are hidden entirely (no position privilege:
  the elements simply do not appear -- structure hiding);
- *members* additionally see which books are on loan, but borrower
  identities appear RESTRICTED (position privilege: existence without
  content);
- *librarians* see and edit everything, except that deleting whole
  catalogue entries is reserved to the *curator* (a later deny rule
  carving delete back out of the librarian grant -- conflict resolution
  in action).

Run with::

    python examples/library_catalog.py
"""

from repro import Remove, SecureXMLDatabase, UpdateContent

CATALOG = """
<library>
  <book>
    <title>A Formal Access Control Model for XML Databases</title>
    <author>Gabillon</author>
    <price>120</price>
    <condition>spine damaged</condition>
    <loan><borrower>alice</borrower><due>2026-08-01</due></loan>
  </book>
  <book>
    <title>Updating XML</title>
    <author>Tatarinov</author>
    <price>95</price>
    <condition>good</condition>
  </book>
  <book>
    <title>Polyinstantiation for Cover Stories</title>
    <author>Sandhu</author>
    <price>200</price>
    <condition>fragile</condition>
    <loan><borrower>bob</borrower><due>2026-07-15</due></loan>
  </book>
</library>
"""


def build_library() -> SecureXMLDatabase:
    db = SecureXMLDatabase.from_xml(CATALOG)
    subjects = db.subjects
    subjects.add_role("visitor")
    subjects.add_role("member", member_of="visitor")
    subjects.add_role("librarian")
    subjects.add_role("curator", member_of="librarian")
    subjects.add_user("vera", member_of="visitor")
    subjects.add_user("mona", member_of="member")
    subjects.add_user("liam", member_of="librarian")
    subjects.add_user("cora", member_of="curator")

    policy = db.policy
    # Visitors: titles/authors only.  No rule at all for price,
    # condition or loans means those subtrees vanish from the view.
    policy.grant("read", "/library", "visitor")
    policy.grant("read", "/library/book", "visitor")
    policy.grant("read", "//title", "visitor")
    policy.grant("read", "//title/text()", "visitor")
    policy.grant("read", "//author", "visitor")
    policy.grant("read", "//author/text()", "visitor")
    # Members: loan status readable, borrower identity positional only.
    policy.grant("read", "//loan", "member")
    policy.grant("read", "//due", "member")
    policy.grant("read", "//due/text()", "member")
    policy.grant("position", "//borrower", "member")
    policy.grant("position", "//borrower/text()", "member")
    # Librarians: everything, including edits.
    policy.grant("read", "//node()", "librarian")
    policy.grant("update", "//node()", "librarian")
    policy.grant("insert", "//node()", "librarian")
    policy.grant("delete", "//node()", "librarian")
    # ...except catalogue-entry deletion, carved back out by a later
    # deny and re-granted to the curator (priority order matters).
    policy.deny("delete", "/library/book", "librarian")
    policy.grant("delete", "/library/book", "curator")
    return db


def main() -> None:
    db = build_library()

    for user, blurb in [
        ("vera", "visitor: titles and authors only"),
        ("mona", "member: sees loans, borrowers RESTRICTED"),
        ("liam", "librarian: sees everything"),
    ]:
        print(f"== {user} ({blurb}) ==")
        print(db.login(user).read_xml(indent="  "))
        print()

    # The librarian updates a condition note (allowed)...
    liam = db.login("liam")
    result = liam.execute(
        UpdateContent("/library/book[1]/condition", "repaired")
    )
    print(f"librarian condition update: affected={len(result.affected)}, "
          f"denied={len(result.denials)}")

    # ...but cannot delete a catalogue entry (the deny wins)...
    result = liam.execute(Remove("/library/book[2]"))
    print(f"librarian tries to delete a book: denied="
          f"{len(result.denials)} ({result.denials[0].reason})")

    # ...while the curator, granted later, can.
    cora = db.login("cora")
    result = cora.execute(Remove("/library/book[2]"), strict=True)
    print(f"curator deletes the book: affected={len(result.affected)}")
    print()
    print("== catalogue after curation (librarian's view) ==")
    print(db.login("liam").read_xml(indent="  "))


if __name__ == "__main__":
    main()
