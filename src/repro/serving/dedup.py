"""The exactly-once dedup ledger: idempotency key -> typed result.

A client whose connection dies mid-request cannot tell whether its
write committed (the outcome is *unknown* -- see
:class:`~repro.errors.NetworkError`).  The safe client move is to
re-send, and the safe server move is to recognize the re-send: every
write may carry an **idempotency key**, and the primary remembers the
commit summary it acknowledged under that key.  A re-send of an
already-acknowledged key returns the remembered summary as a
:class:`DedupedResult` without touching the database -- even when the
re-send lands on a *different* primary after failover, because the key
rides the WAL record (the ``idem`` annotation, see
:meth:`repro.wal.WriteAheadLog.annotate`) and every replica/recovery
replay rebuilds the same ledger from the log alone.

The table is **bounded**: at most ``capacity`` entries, evicted
oldest-first (FIFO by acknowledgement order).  An evicted key is
forgotten -- a re-send after eviction applies again -- so the capacity
bounds the window of retry safety, not correctness of anything else;
size it to cover the client retry horizon (default 1024 entries, a few
hundred bytes each).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = ["DedupTable", "DedupedResult"]


@dataclass(frozen=True)
class DedupedResult:
    """The remembered acknowledgement for a replayed idempotency key.

    Carries the same summary shape the original commit acknowledged
    (counts, not node lists -- the nodes belong to the first
    acknowledgement), plus ``deduped=True`` so front-ends can mark the
    response.  Returned by the serving layer instead of re-applying the
    write.

    Attributes:
        fully_applied: whether the original script applied completely.
        selected / affected / denied: the original summary's counts.
        version: the database version the original commit produced.
        deduped: always True (present so wire summaries can branch
            without isinstance checks).
    """

    fully_applied: bool
    selected: int
    affected: int
    denied: int
    version: int
    deduped: bool = True

    @classmethod
    def from_entry(cls, entry: Dict[str, Any]) -> "DedupedResult":
        """Build from a stored (or log-replayed) summary dict."""
        return cls(
            fully_applied=bool(entry.get("fully_applied", True)),
            selected=int(entry.get("selected", 0)),
            affected=int(entry.get("affected", 0)),
            denied=int(entry.get("denied", 0)),
            version=int(entry.get("version", 0)),
        )


class DedupTable:
    """A bounded, thread-safe FIFO map of idempotency key -> summary.

    Args:
        capacity: maximum remembered acknowledgements; inserting past
            it evicts the oldest entry (counted in :meth:`stats`).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("dedup capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._hits = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """The configured entry ceiling."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The remembered summary for ``key``, or None (counts a hit
        when found)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                return dict(entry)
            return None

    def put(self, key: str, summary: Dict[str, Any]) -> None:
        """Remember ``summary`` under ``key``; re-putting an existing
        key keeps its original FIFO position (first ack wins)."""
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = dict(summary)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def seed(self, entries: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        """Bulk-load (key, summary) pairs in order -- how a promoted
        primary inherits the ledger its replica rebuilt from the log."""
        for key, summary in entries:
            self.put(key, summary)

    def entries(self) -> Tuple[Tuple[str, Dict[str, Any]], ...]:
        """A snapshot of every (key, summary) pair in FIFO order."""
        with self._lock:
            return tuple(
                (key, dict(value)) for key, value in self._entries.items()
            )

    def stats(self) -> Dict[str, int]:
        """``size`` / ``capacity`` / ``hits`` / ``evictions``."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self._hits,
                "evictions": self._evictions,
            }
