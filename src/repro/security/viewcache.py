"""Shared, incrementally-maintained view cache (the serving layer).

The seed treated view materialization as strictly per-session state:
every session rebuilt its own pruned copy of the document (axioms
15-17) after every commit, even though (a) most users share a handful
of role-shaped permission tables, and (b) most commits touch a tiny
region of the tree.  At serving scale that is the dominant cost --
O(sessions x |doc|) per commit.

:class:`ViewCache` removes both factors:

**Sharing.** Views are keyed by ``(version, permission fingerprint)``
(:meth:`~repro.security.perm.PermissionResolver.fingerprint`): any two
users whose applicable rules are identical and ``$USER``-free provably
see byte-identical views, so one materialization serves them all.  Each
session receives a cheap per-user *facade* (same underlying document
and permission dictionaries, its own ``user`` field) -- views are
treated as immutable once published, which the rest of the codebase
already assumes (updates replace documents, never mutate views).

**Incremental patching.** On a commit that published a usable
:class:`~repro.xupdate.changeset.ChangeSet`, a stale cached view is
*patched*: the dirty regions are the change-set's touched roots plus
any nodes whose read/position outcome differs between the old and new
permission tables, and only those subtrees are re-pruned against the
new source (the rest of the cached view document is carried).  A
missing or conservative change-set, or a cache entry too far behind the
bounded change log, falls back to the full axioms-15-17 build --
patching is an optimization, never a correctness requirement; the
differential property suite pins patched == from-scratch.

Hit/patch/build decisions are counted in :attr:`ViewCache.stats` and
surfaced through ``SecureXMLDatabase.stats()``.
"""

from __future__ import annotations

import dataclasses
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import RESTRICTED, NodeKind
from ..xupdate.changeset import ChangeSet
from .perm import Fingerprint, PermissionTable
from .privileges import Privilege
from .view import View, ViewBuilder

__all__ = ["ViewCache"]

logger = logging.getLogger("repro.security.viewcache")


@dataclass
class _Entry:
    """One materialized view pinned to a database version."""

    version: int
    view: View


class ViewCache:
    """Materialized views shared across sessions and carried across
    commits.

    Args:
        max_entries: bound on cached views (LRU-evicted); one entry per
            distinct permission fingerprint per policy shape.
        log_size: how many commits of change-set history to retain; a
            cached view older than the log cannot be patched and is
            rebuilt.
    """

    def __init__(self, max_entries: int = 128, log_size: int = 64) -> None:
        self._entries: "OrderedDict[Fingerprint, _Entry]" = OrderedDict()
        self._log: "OrderedDict[int, Optional[ChangeSet]]" = OrderedDict()
        self._log_size = log_size
        self._max_entries = max_entries
        # Serving happens from many reader threads at once and cache
        # bookkeeping (LRU moves, entry replacement) is not atomic, so
        # the whole serve/commit surface is one critical section.  An
        # RLock because a full build re-enters the resolver, which may
        # call back while this lock is held.
        self._lock = threading.RLock()
        #: Decision counters; read via ``SecureXMLDatabase.stats()``.
        self.stats: Dict[str, int] = {
            "hits": 0,  # served at the current version, no work
            "incremental_patches": 0,  # stale entry patched in place
            "full_builds": 0,  # axioms 15-17 from scratch
            "degraded_rebuilds": 0,  # patch raised; entry discarded, rebuilt
        }

    # ------------------------------------------------------------------
    # commit feed
    # ------------------------------------------------------------------
    def note_commit(self, version: int, changes: Optional[ChangeSet]) -> None:
        """Record the change-set that produced ``version`` (None when
        the committer did not track one)."""
        with self._lock:
            self._log[version] = changes
            while len(self._log) > self._log_size:
                self._log.popitem(last=False)

    def _composed_changes(
        self, from_version: int, to_version: int
    ) -> Optional[ChangeSet]:
        """The composite change-set across ``(from_version, to_version]``,
        or None when any step is missing or conservative."""
        steps: List[ChangeSet] = []
        for v in range(from_version + 1, to_version + 1):
            cs = self._log.get(v)
            if cs is None or cs.conservative:
                return None
            steps.append(cs)
        return ChangeSet.merge_all(steps)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def view_for(self, database, user: str) -> View:
        """The current view for ``user``, shared and maintained.

        Args:
            database: the owning
                :class:`~repro.security.database.SecureXMLDatabase`.
            user: the session user; the returned view's ``user`` and
                ``permissions.user`` always name this login even when
                the materialization is shared with other users.
        """
        with self._lock:
            resolver = database.resolver
            policy = database.policy
            doc = database.document
            version = database.version
            fingerprint = resolver.fingerprint(policy, user)
            entry = self._entries.get(fingerprint)
            if entry is not None and entry.version == version:
                if entry.view.source is doc:
                    self.stats["hits"] += 1
                    self._entries.move_to_end(fingerprint)
                    return self._facade(entry.view, user)
                # Same version counter but a different document object can
                # only mean a foreign commit path; treat as stale.
                entry = None
            table = resolver.resolve_cached(doc, policy, user)
            if entry is not None and entry.version < version:
                changes = self._composed_changes(entry.version, version)
                if changes is not None:
                    # A patch that raises must not leave a half-patched
                    # entry behind: discard it, count the degradation,
                    # and re-derive from scratch below.
                    try:
                        view = self._patch(entry.view, doc, policy, table, changes)
                    except Exception:
                        self._entries.pop(fingerprint, None)
                        self.stats["degraded_rebuilds"] += 1
                        logger.exception(
                            "incremental view patch failed for %r; "
                            "discarding entry and rebuilding", user
                        )
                    else:
                        self.stats["incremental_patches"] += 1
                        self._store(fingerprint, version, view)
                        return self._facade(view, user)
            view = ViewBuilder(resolver).build(doc, policy, user, permissions=table)
            self.stats["full_builds"] += 1
            self._store(fingerprint, version, view)
            return self._facade(view, user)

    def _store(self, fingerprint: Fingerprint, version: int, view: View) -> None:
        self._entries[fingerprint] = _Entry(version, view)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    @staticmethod
    def _facade(view: View, user: str) -> View:
        """A per-user handle on a shared materialization (O(1))."""
        if view.user == user:
            return view
        return dataclasses.replace(
            view, user=user, permissions=view.permissions.for_user(user)
        )

    # ------------------------------------------------------------------
    # incremental patch
    # ------------------------------------------------------------------
    def _patch(
        self,
        old_view: View,
        new_source: XMLDocument,
        policy,
        table: PermissionTable,
        changes: ChangeSet,
    ) -> View:
        """Re-derive only the dirty regions of a stale cached view.

        Dirty roots are (a) the change-set's touched subtree roots --
        structure or labels changed there -- and (b) every node whose
        read/position outcome differs between the old and the new
        permission table (rule paths may select differently after the
        commit).  Everything outside those regions satisfies axioms
        15-17 verbatim from the old view: its source node is unchanged
        and its selection status depends only on its own privileges and
        its ancestors' (both unchanged).
        """
        dirty: Set[NodeId] = set(changes.touched_roots())
        dirty |= table.read_position_delta(old_view.permissions)
        dirty.discard(DOCUMENT_ID)  # the document node is always selected
        roots = _minimal_roots(dirty)

        new_doc = old_view.doc.copy()
        restricted = set(old_view.restricted)
        readable = table.nodes_with(Privilege.READ)
        positioned = table.nodes_with(Privilege.POSITION)

        for root in roots:
            # Drop the stale region from the view copy...
            if root in new_doc:
                for nid in list(new_doc.subtree(root)):
                    restricted.discard(nid)
                new_doc.remove_subtree(root)
            else:
                restricted.discard(root)
            if root not in new_source:
                continue  # region removed from the source: stays gone
            parent = root.parent()
            if parent != DOCUMENT_ID and parent not in new_doc:
                # Parent not selected => no descendant can be (axioms
                # 16-17 require the parent in the view).  The parent is
                # either clean (its absence is still correct) or an
                # earlier, shallower dirty root that already resynced.
                continue
            # ...and regrow it under the new table, top-down.
            stack = [root]
            while stack:
                nid = stack.pop()
                is_readable = nid in readable
                is_positioned = nid in positioned
                if not (is_readable or is_positioned):
                    continue
                node = new_source.node(nid)
                new_doc.adopt(node)
                if not is_readable:
                    restricted.add(nid)
                    new_doc.relabel(nid, RESTRICTED)
                    if node.kind is NodeKind.ATTRIBUTE:
                        new_doc.set_value(nid, RESTRICTED)
                if node.kind is NodeKind.ELEMENT:
                    stack.extend(new_source.attributes(nid))
                    stack.extend(new_source.children(nid))
                elif new_source.children(nid):
                    stack.extend(new_source.children(nid))

        # Carry label/value edits of clean, still-visible nodes: a
        # rename of a readable node inside an otherwise clean region
        # only touches that node (it *is* a touched root, so it was
        # handled above); nothing else can differ.
        return View(
            user=old_view.user,
            doc=new_doc,
            source=new_source,
            restricted=frozenset(restricted),
            permissions=table,
            policy=policy,
        )


def _minimal_roots(dirty: Set[NodeId]) -> List[NodeId]:
    """Shallowest-first dirty roots with nested roots removed (a
    resynced subtree already covers every descendant root)."""
    kept: List[NodeId] = []
    for nid in sorted(dirty, key=lambda n: n.level):
        if not any(k == nid or k.is_ancestor_of(nid) for k in kept):
            kept.append(nid)
    return kept
