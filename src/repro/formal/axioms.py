"""The paper's security axioms, transcribed literally into Datalog.

This module is the reproduction of the paper's *formal* content -- the
counterpart of its Prolog prototype, whose stated purpose was "simply to
validate the correctness of the axioms given in this paper".  Here the
transcription serves the same role: :class:`FormalModel` derives

- the ``isa`` closure (axioms 11-12),
- the ``perm(s, n, r)`` facts (axiom 14),
- the per-user view theory ``node_view(n, v)`` (axioms 15-17),
- the post-update theory ``node_dbnew(n, v)`` for each XUpdate
  operation (axioms 18-25),

purely by bottom-up logical inference, and the differential tests
compare every one of those fact sets against the procedural engine in
:mod:`repro.security`.

Two reproduction notes:

- Axiom 14's inner negation ``¬∃s''∃p'∃t' (...)`` is rendered with an
  auxiliary ``overridden`` predicate, the standard Datalog encoding of
  an existentially-closed negative condition.
- ``create_number`` facts (formula 7) are supplied extensionally by
  consulting the numbering scheme, exactly as the paper does ("we do
  not give axioms for deriving facts belonging to the create_number
  predicate since they depend on the numbering scheme").
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic.engine import DatalogEngine
from ..logic.program import Program
from ..logic.terms import Var, atom, cmp, neg, pos
from ..security.policy import ACCEPT, Policy
from ..security.subjects import SubjectHierarchy
from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import RESTRICTED, NodeKind
from ..xupdate.operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    XUpdateOperation,
)
from .geometry import document_facts, geometry_rules
from .paths import PathCompiler, UnsupportedPathError

__all__ = ["FormalModel"]


def subject_rules(subjects: SubjectHierarchy, program: Program) -> None:
    """Set S plus axioms 11-12: the reflexive-transitive isa closure."""
    for name in sorted(subjects.subjects):
        program.fact("subject", name)
    for child, parent in subjects.isa_facts():
        program.fact("isa", child, parent)
    s, s1, s2 = Var("S"), Var("S1"), Var("S2")
    program.rule(atom("isa", s, s), pos("subject", s))  # axiom 11
    program.rule(  # axiom 12
        atom("isa", s, s2), pos("isa", s, s1), pos("isa", s1, s2)
    )


class FormalModel:
    """Logical derivation of the whole model for one database state.

    Args:
        doc: the source document (theory ``db``).
        subjects: the subject hierarchy (set ``S``).
        policy: the security policy (set ``P``).  Rule paths must fall
            within the :class:`~repro.formal.paths.PathCompiler`
            fragment.
    """

    def __init__(
        self,
        doc: XMLDocument,
        subjects: SubjectHierarchy,
        policy: Policy,
    ) -> None:
        self._doc = doc
        self._subjects = subjects
        self._policy = policy

    # ------------------------------------------------------------------
    # phase 1: perm + view
    # ------------------------------------------------------------------
    def _base_program(self, user: str) -> Program:
        """Theory db + subjects + policy + axioms 14-17 for one user."""
        program = Program()
        document_facts(self._doc, program)
        geometry_rules(program)
        subject_rules(self._subjects, program)

        compiler = PathCompiler(program)
        s, s2, n, v, v2, t, t2, r = (
            Var("S"),
            Var("S2"),
            Var("N"),
            Var("V"),
            Var("V2"),
            Var("T"),
            Var("T2"),
            Var("R"),
        )
        # Set P: each rule becomes candidate/denies derivations over its
        # compiled path predicate.
        for effect, privilege, path, subject, priority in self._policy.facts():
            pred = compiler.compile(path, user=user)
            head = "candidate" if effect == ACCEPT else "denies"
            program.rule(
                atom(head, s, privilege, n, priority),
                pos("isa", s, subject),
                pos(pred, n),
            )
        # Axiom 14 via the overridden encoding.
        program.rule(
            atom("overridden", s, r, n, t),
            pos("candidate", s, r, n, t),
            pos("denies", s, r, n, t2),
            cmp(">", t2, t),
        )
        program.rule(
            atom("perm", s, n, r),
            pos("candidate", s, r, n, t),
            neg("overridden", s, r, n, t),
        )

        # Axioms 15-17: the view of the logged user.
        program.fact("logged", user)
        program.fact("node_view", DOCUMENT_ID, "/")  # axiom 15
        p = Var("P")
        program.rule(  # axiom 16
            atom("node_view", n, v),
            pos("node", n, v),
            pos("logged", s),
            pos("perm", s, n, "read"),
            pos("child", n, p),
            pos("node_view", p, v2),
        )
        program.rule(  # axiom 17
            atom("node_view", n, RESTRICTED),
            pos("node", n, v),
            pos("logged", s),
            pos("perm", s, n, "position"),
            neg("perm", s, n, "read"),
            pos("child", n, p),
            pos("node_view", p, v2),
        )
        # Bookkeeping for the write axioms: which view nodes are shown
        # with the RESTRICTED label (perm-based, so a literal
        # "RESTRICTED" source label cannot confuse it).
        program.rule(
            atom("shown_restricted", n),
            pos("node_view", n, v),
            pos("logged", s),
            pos("perm", s, n, "position"),
            neg("perm", s, n, "read"),
        )
        return program

    def derive_isa(self) -> Set[Tuple[str, str]]:
        """The closed isa relation (axioms 11-12)."""
        program = Program()
        subject_rules(self._subjects, program)
        engine = DatalogEngine(program)
        return {(a, b) for a, b in engine.query("isa")}

    def derive_perm(self, user: str) -> Set[Tuple[NodeId, str]]:
        """All ``perm(user, n, r)`` facts (axiom 14) as (n, r) pairs."""
        engine = DatalogEngine(self._base_program(user))
        return {
            (nid, priv)
            for (subj, nid, priv) in engine.query("perm")
            if subj == user
        }

    def derive_view(self, user: str) -> Set[Tuple[NodeId, str]]:
        """The ``node_view(n, v)`` facts (axioms 15-17)."""
        engine = DatalogEngine(self._base_program(user))
        return set(engine.query("node_view"))

    # ------------------------------------------------------------------
    # phase 2: the write axioms (18-25)
    # ------------------------------------------------------------------
    def derive_dbnew(
        self, user: str, operation: XUpdateOperation
    ) -> Set[Tuple[NodeId, str]]:
        """The ``node_dbnew(n, v)`` facts after a secure update.

        Implements axioms 18-25.  The operation's PATH is compiled
        against the *view* theory derived in phase 1, reproducing the
        paper's "nodes to update are selected on the view" principle.
        """
        phase1 = DatalogEngine(self._base_program(user))
        view_facts = set(phase1.query("node_view"))
        shown_restricted = {n for (n,) in phase1.query("shown_restricted")}
        perm_facts = {
            (nid, priv)
            for (subj, nid, priv) in phase1.query("perm")
            if subj == user
        }

        program = Program()
        # Theory db again (node/child/kind facts + geometry).
        document_facts(self._doc, program)
        geometry_rules(program)
        # The view as an EDB theory under the "view_" prefix.
        view_nodes = {nid for (nid, _v) in view_facts}
        for nid, label in view_facts:
            program.fact("view_node", nid, label)
            kind = self._doc.kind(nid)
            if kind is NodeKind.ELEMENT:
                program.fact("view_element", nid)
            elif kind is NodeKind.TEXT:
                program.fact("view_text", nid)
        for nid in view_nodes:
            if nid.is_document:
                continue
            parent = nid.parent()
            if parent in view_nodes and self._doc.kind(nid) is not NodeKind.ATTRIBUTE:
                program.fact("view_child", nid, parent)
        # Sibling order restricted to the view.
        for nid in view_nodes:
            kids = [k for k in self._doc.children(nid) if k in view_nodes]
            for left, right in zip(kids, kids[1:]):
                program.fact("view_imm_following_sibling", right, left)
        geometry_rules(program, prefix="view_")
        for nid in shown_restricted:
            program.fact("shown_restricted", nid)
        for nid, priv in perm_facts:
            program.fact("perm", user, nid, priv)
        program.fact("logged", user)

        compiler = PathCompiler(program, prefix="view_")
        target = compiler.compile(operation.path, user=user)
        self._write_axioms(program, operation, target, user)
        engine = DatalogEngine(program)
        return set(engine.query("node_dbnew"))

    def _write_axioms(
        self,
        program: Program,
        operation: XUpdateOperation,
        target: str,
        user: str,
    ) -> None:
        n, v, s, c = Var("N"), Var("V"), Var("S"), Var("C")
        if isinstance(operation, Rename):
            # Axioms 18-19 (+ the prose RESTRICTED restriction).
            program.rule(
                atom("renamed", n),
                pos(target, n),
                pos("logged", s),
                pos("perm", s, n, "update"),
                neg("shown_restricted", n),
            )
            program.rule(
                atom("node_dbnew", n, v), pos("node", n, v), neg("renamed", n)
            )
            program.rule(
                atom("node_dbnew", n, operation.new_name), pos("renamed", n)
            )
        elif isinstance(operation, UpdateContent):
            # Axioms 20-21: children in the view need update and read.
            program.rule(
                atom("updated", c),
                pos(target, n),
                pos("view_child", c, n),
                pos("logged", s),
                pos("perm", s, c, "update"),
                pos("perm", s, c, "read"),
            )
            program.rule(
                atom("node_dbnew", n, v), pos("node", n, v), neg("updated", n)
            )
            program.rule(
                atom("node_dbnew", n, operation.new_value), pos("updated", n)
            )
        elif isinstance(operation, (Append, InsertBefore, InsertAfter)):
            # Axioms 22-24 with extensional create_number (formula 7).
            self._creation_axioms(program, operation, target, user)
        elif isinstance(operation, Remove):
            # Axiom 25 via the deleted-subtree fixpoint (formulae 8-9).
            np = Var("NP")
            program.rule(
                atom("delete_root", np),
                pos(target, np),
                pos("logged", s),
                pos("perm", s, np, "delete"),
            )
            program.rule(
                atom("deleted", n),
                pos("descendant_or_self", n, np),
                pos("delete_root", np),
            )
            program.rule(
                atom("node_dbnew", n, v), pos("node", n, v), neg("deleted", n)
            )
        else:
            raise TypeError(f"unknown operation {operation!r}")

    def _creation_axioms(
        self,
        program: Program,
        operation: "Append | InsertBefore | InsertAfter",
        target: str,
        user: str,
    ) -> None:
        n, v, s = Var("N"), Var("V"), Var("S")
        # Formula 6: the original document carries over unchanged.
        program.rule(atom("node_dbnew", n, v), pos("node", n, v))
        # node_TREE facts with placeholder identifiers 0..k-1 (pre-order).
        flat = _flatten_fragment(operation.tree)
        for key, label in flat:
            program.fact("node_tree", key, label)
        # The privilege-holding anchor differs per operation (axioms 22-24):
        # append checks the selected node, the sibling insertions check
        # its parent in the view.
        if isinstance(operation, Append):
            kind = "append"
            anchor_rule_body = [
                pos(target, n),
                pos("logged", s),
                pos("perm", s, n, "insert"),
            ]
        else:
            kind = (
                "insert-before"
                if isinstance(operation, InsertBefore)
                else "insert-after"
            )
            f = Var("F")
            anchor_rule_body = [
                pos(target, n),
                pos("view_child", n, f),
                pos("logged", s),
                pos("perm", s, f, "insert"),
            ]
        program.rule(atom("insert_anchor", n), *anchor_rule_body)
        # create_number(n, k, o, n''): extensional, computed from the
        # numbering scheme (the paper's stated omission).  A dry run per
        # anchor assigns the concrete identifiers.
        anchors = DatalogEngine(program_copy_for_anchors(program)).query(
            "insert_anchor"
        )
        k, nn = Var("K"), Var("NN")
        for (anchor,) in anchors:
            for key, new_id in _dry_run_numbers(self._doc, operation, anchor, flat):
                program.fact("create_number", anchor, key, kind, new_id)
        tv = Var("TV")
        program.rule(  # formula 7 under axioms 22-24
            atom("node_dbnew", nn, tv),
            pos("insert_anchor", n),
            pos("node_tree", k, tv),
            pos("create_number", n, k, kind, nn),
        )


def program_copy_for_anchors(program: Program) -> Program:
    """A snapshot of the program for the anchor-discovery dry run."""
    duplicate = Program()
    duplicate.extend(program)
    return duplicate


def _flatten_fragment(tree) -> List[Tuple[int, str]]:
    """Pre-order (placeholder-id, label) pairs of a fragment."""
    out: List[Tuple[int, str]] = []
    counter = itertools.count()

    def walk(fragment) -> None:
        out.append((next(counter), fragment.label))
        for name, _value in fragment.attributes:
            out.append((next(counter), name))
        for child in fragment.children:
            walk(child)

    walk(tree)
    return out


def _dry_run_numbers(
    doc: XMLDocument,
    operation: "Append | InsertBefore | InsertAfter",
    anchor: NodeId,
    flat: Sequence[Tuple[int, str]],
) -> List[Tuple[int, NodeId]]:
    """Ask the numbering scheme which ids an insertion would assign.

    Performs the insertion on a scratch copy and pairs the fragment's
    placeholder ids with the concrete identifiers, in pre-order.
    """
    scratch = doc.copy()
    if isinstance(operation, Append):
        root = operation.tree.attach(scratch, anchor)
    elif isinstance(operation, InsertBefore):
        root = operation.tree.attach_before(scratch, anchor)
    else:
        root = operation.tree.attach_after(scratch, anchor)
    created = list(scratch.subtree(root))
    assert len(created) == len(flat), "fragment flattening out of sync"
    return [(key, nid) for (key, _label), nid in zip(flat, created)]
