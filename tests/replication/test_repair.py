"""Anti-entropy repair from a healthy peer (ISSUE 10).

A quarantined log cannot fix itself -- the bytes are gone from this
disk, but not from the cluster.  These suites prove
:func:`~repro.replication.repair_from_peer` converges a damaged
directory to the peer's byte-identical state, refuses the repairs that
would spread rot, survives disk faults mid-copy without making things
worse, and that a repaired node really rejoins: recovery is clean and
the log re-opens for appending.  The seeded soak at the bottom is the
``make scrub`` lane's workhorse: randomized schedules of writes, disk
faults, bit rot, scrubbing and repair, asserting the invariants the
whole subsystem promises (no acked write lost, corruption never
served, repair converges, faults never crash the server).
"""

import os
import random
import shutil

import pytest

from repro.errors import RepairError, ReproError, WalCorruptionError
from repro.replication import repair_from_peer
from repro.scrub import Scrubber, scrub_directory
from repro.serving import DatabaseServer
from repro.storage import state_digest
from repro.testing.diskfaults import disk, flip_bit
from repro.wal import QUARANTINE_SUFFIX, WriteAheadLog, recover

from .conftest import append_script, editors_database, state_bytes

pytestmark = pytest.mark.scrub


@pytest.fixture(autouse=True)
def clean_disk():
    disk.reset()
    yield
    disk.reset()


def segment_paths(wal_dir):
    return sorted(
        os.path.join(wal_dir, name)
        for name in os.listdir(wal_dir)
        if name.startswith("segment-") and name.endswith(".wal")
    )


def build_pair(tmp_path, commits=4):
    """A closed primary directory and a byte-identical healthy peer."""
    wal_dir = str(tmp_path / "primary.wal")
    db = editors_database()
    wal = WriteAheadLog(wal_dir)
    db.attach_wal(wal)
    wal.checkpoint(db)
    for i in range(commits):
        db.login("w1").execute(append_script(f"entry{i}"))
    expected = state_bytes(db)
    db.detach_wal().close()
    peer_dir = str(tmp_path / "peer.wal")
    shutil.copytree(wal_dir, peer_dir)
    return wal_dir, peer_dir, expected


def damage(wal_dir):
    """Non-tail corruption in the last segment (an intact record
    follows the flipped payload byte), then scrub to quarantine it."""
    last = segment_paths(wal_dir)[-1]
    flip_bit(last, 20, bit=1)
    report = scrub_directory(wal_dir)
    assert report.quarantined
    return last


class TestRepairConvergence:
    def test_repair_converges_to_the_peer_byte_identical(self, tmp_path):
        wal_dir, peer_dir, expected = build_pair(tmp_path)
        damage(wal_dir)
        with pytest.raises(WalCorruptionError):
            recover(wal_dir, strict=True)  # corruption is never served

        report = repair_from_peer(wal_dir, peer_dir)
        assert report.state_verified
        assert report.segments_copied == len(segment_paths(peer_dir))
        assert report.checkpoints_copied >= 1
        assert report.bytes_copied > 0

        result = recover(wal_dir, strict=True)  # strict: no damage left
        assert result.report.clean
        assert state_bytes(result.database) == expected
        peer_state = state_bytes(recover(peer_dir).database)
        assert state_bytes(result.database) == peer_state
        digest = state_digest(
            result.database.document,
            result.database.subjects,
            result.database.policy,
        )
        assert digest == report.digest

    def test_displaced_damage_is_kept_for_forensics(self, tmp_path):
        wal_dir, peer_dir, _ = build_pair(tmp_path)
        damaged_segment = damage(wal_dir)
        report = repair_from_peer(wal_dir, peer_dir)
        assert report.damaged_dir
        assert os.path.isdir(report.damaged_dir)
        moved = set(report.moved_aside)
        assert os.path.basename(damaged_segment) in moved
        assert os.path.basename(damaged_segment) + QUARANTINE_SUFFIX in moved
        # the displaced files are really there, out of the listings
        for name in moved:
            assert os.path.exists(os.path.join(report.damaged_dir, name))
        assert not any(
            name.endswith(QUARANTINE_SUFFIX)
            for name in os.listdir(wal_dir)
        )

    def test_repaired_directory_reopens_for_appending(self, tmp_path):
        wal_dir, peer_dir, _ = build_pair(tmp_path)
        damage(wal_dir)
        repair_from_peer(wal_dir, peer_dir)
        result = recover(wal_dir)
        db = result.database
        db.attach_wal(WriteAheadLog(wal_dir))
        db.login("w2").execute(append_script("after_repair"))
        expected = state_bytes(db)
        db.detach_wal().close()
        replayed = recover(wal_dir, strict=True)
        assert state_bytes(replayed.database) == expected

    def test_repair_reseeds_an_empty_directory(self, tmp_path):
        _, peer_dir, expected = build_pair(tmp_path)
        fresh = str(tmp_path / "fresh.wal")
        os.makedirs(fresh)
        report = repair_from_peer(fresh, peer_dir)
        assert report.moved_aside == []
        assert report.damaged_dir == ""
        assert state_bytes(recover(fresh, strict=True).database) == expected


class TestRepairRefusals:
    def test_self_repair_is_refused(self, tmp_path):
        wal_dir, _, _ = build_pair(tmp_path)
        with pytest.raises(RepairError) as excinfo:
            repair_from_peer(wal_dir, wal_dir)
        assert excinfo.value.reason == "self-repair"

    def test_damaged_peer_is_refused(self, tmp_path):
        wal_dir, peer_dir, _ = build_pair(tmp_path)
        damage(wal_dir)
        flip_bit(segment_paths(peer_dir)[-1], 20, bit=1)  # peer rots too
        with pytest.raises(RepairError) as excinfo:
            repair_from_peer(wal_dir, peer_dir)
        assert excinfo.value.reason == "peer-damaged"
        # nothing changed: the damaged directory still holds only the
        # quarantined original
        assert any(
            name.endswith(QUARANTINE_SUFFIX) for name in os.listdir(wal_dir)
        )

    def test_copy_fault_leaves_the_directory_unchanged(self, tmp_path):
        wal_dir, peer_dir, _ = build_pair(tmp_path)
        damage(wal_dir)
        before = sorted(os.listdir(wal_dir))
        disk.arm("write", "eio", match=".repair-staging")
        with pytest.raises(RepairError) as excinfo:
            repair_from_peer(wal_dir, peer_dir)
        assert excinfo.value.reason == "copy-failed"
        assert sorted(os.listdir(wal_dir)) == before  # staging cleaned up
        # the fault was transient; the same repair now succeeds
        repair_from_peer(wal_dir, peer_dir)
        assert recover(wal_dir, strict=True).report.clean


# ---------------------------------------------------------------------------
# the seeded disk-fault soak (the `make scrub` lane runs 200+ seeds)
# ---------------------------------------------------------------------------
SOAK_SEEDS = int(os.environ.get("REPRO_SCRUB_SOAK_SEEDS", "20"))

FAULTS = [
    ("write", "enospc"),
    ("write", "eio"),
    ("fsync", "eio"),
    ("fsync", "enospc"),
    ("write", "short"),
]


@pytest.mark.parametrize("seed", range(SOAK_SEEDS))
def test_disk_fault_soak(tmp_path, seed):
    """One randomized schedule of writes, injected disk faults, bit
    rot, scrubbing and repair.  Invariants, whatever the schedule:

    - an injected fault never crashes the server (every failure is a
      typed :class:`ReproError`);
    - no write acknowledged while the log was attached is ever lost;
    - quarantined corruption is never served by strict recovery;
    - repair from the healthy peer converges to byte-identical state.
    """
    rng = random.Random(seed)
    wal_dir = str(tmp_path / "primary.wal")
    db = editors_database()
    wal = WriteAheadLog(wal_dir, fsync="os", segment_bytes=512)
    server = DatabaseServer(db, wal=wal, sleep=lambda _s: None)
    wal.checkpoint(db)

    acked_durable = []
    for i in range(8):
        label = f"soak{i}"
        if rng.random() < 0.4:
            op, err = rng.choice(FAULTS)
            disk.arm(op, err, match=".wal")
        try:
            server.execute("w1", append_script(label))
        except ReproError:
            pass  # shed, refused, degraded -- all acceptable outcomes
        except BaseException as exc:  # pragma: no cover - the invariant
            pytest.fail(f"seed {seed}: fault crashed the server: {exc!r}")
        else:
            if server.stats()["wal_attached"]:
                acked_durable.append(label)
        disk.reset()  # unfired faults must not leak into the next op

    if db.wal is not None:
        db.detach_wal()
    wal.close()
    # a failed injected append may have left a torn tail; re-opening
    # the log truncates it (the torn-tail rule), leaving a healthy
    # directory to copy the peer from
    WriteAheadLog(wal_dir, fsync="os").close()

    # the healthy peer: a copy taken before the bit rot below
    peer_dir = str(tmp_path / "peer.wal")
    shutil.copytree(wal_dir, peer_dir)
    peer_state = state_bytes(recover(peer_dir).database)
    for label in acked_durable:
        assert f"<{label}>" in peer_state, (
            f"seed {seed}: acked durable write {label} lost"
        )

    # bit rot lands somewhere random; scrub decides what it means
    segments = segment_paths(wal_dir)
    victim = rng.choice(segments)
    offset = rng.randrange(os.path.getsize(victim))
    flip_bit(victim, offset, bit=rng.randrange(8))
    report = scrub_directory(wal_dir, deep=True)
    if report.quarantined:
        with pytest.raises(WalCorruptionError):
            recover(wal_dir, strict=True)  # corruption is never served

    # anti-entropy repair must always converge to the peer, whether the
    # flip quarantined a segment, tore the tail, or hit dead bytes
    repair_from_peer(wal_dir, peer_dir)
    repaired = recover(wal_dir, strict=True)
    assert repaired.report.clean
    assert state_bytes(repaired.database) == peer_state
    assert Scrubber(wal_dir, deep=True).run().clean
