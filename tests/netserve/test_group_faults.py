"""Crash-window semantics of group commit, via armed kill-points:
an acknowledged group commit is never lost, a poisoned group never
acknowledges, and a torn response frame surfaces as a network error --
never a hang."""

import pytest

from repro.errors import NetworkError
from repro.serving import DatabaseServer, GroupCommitter
from repro.testing.faults import InjectedFault, faults, run_threads
from repro.wal import WriteAheadLog, recover
from repro.xmltree.serializer import serialize

from .conftest import append_script, connect, editors_database, served

pytestmark = [pytest.mark.netserve, pytest.mark.fault]


@pytest.fixture
def stack(wal_dir):
    db = editors_database()
    wal = WriteAheadLog(wal_dir, fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)
    return db, wal, DatabaseServer(db)


def recovered_doc(wal_dir) -> str:
    return serialize(recover(wal_dir, repair=True).database.document)


class TestGroupBeforeFsync:
    def test_poisoned_group_never_acknowledges_acked_never_lost(
        self, stack, wal_dir
    ):
        """The group dies between its appends and its one fsync: every
        member of that group resolves with the failure (unknown
        outcome), and recovery still holds every commit acknowledged
        before and after the crash window."""
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=3, max_delay_ms=30.0)
        committer.commit("w1", append_script("acked0"))

        faults.arm("group-before-fsync")
        tickets = [
            committer.submit("w1", append_script(f"doomed{i}"))
            for i in range(3)
        ]
        committer.drive(tickets[0])
        for ticket in tickets:
            assert ticket.done
            assert ticket.result is None
            assert ticket.retry is False
            assert isinstance(ticket.error, InjectedFault)
        # The group counted nothing: no member was acknowledged.
        stats = server.stats()
        assert stats["grouped_records"] == 1  # just acked0's group
        assert server._breaker._failures >= 1

        # The kill-point is one-shot; the server keeps serving.
        committer.commit("w1", append_script("acked1"))

        final = recovered_doc(wal_dir)
        assert "<acked0>" in final
        assert "<acked1>" in final
        # doomed0..2 were appended but never acknowledged -- recovery
        # may or may not hold them; both outcomes are legal.

    def test_commit_wrapper_relays_the_group_failure(self, stack):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=1, max_delay_ms=0.0)
        faults.arm("group-before-fsync")
        with pytest.raises(InjectedFault):
            committer.commit("w1", append_script("gone"))
        assert server.stats().get("group_commits", 0) == 0


class TestGroupAfterLeaderAppend:
    def test_unreached_members_become_retryable_not_poisoned(self, stack):
        """The crash fires after the leader's member ran but before the
        rest: the leader's member has unknown outcome; members the
        batch never reached committed nothing and are safe to retry."""
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=3, max_delay_ms=30.0)
        tickets = [
            committer.submit("w1", append_script(f"m{i}")) for i in range(3)
        ]
        faults.arm("group-after-leader-append")
        committer.drive(tickets[0])
        leader_member = tickets[0]
        assert isinstance(leader_member.error, InjectedFault)
        assert leader_member.retry is False  # outcome unknown: no retry
        for follower in tickets[1:]:
            assert follower.retry is True  # nothing committed: resubmit
            assert isinstance(follower.error, InjectedFault)

    def test_followers_retry_through_and_survive_recovery(
        self, stack, wal_dir
    ):
        """Blocking commits ride out the crash: the member in flight at
        the kill loses (unknown outcome), everyone behind it re-submits
        into a later group and is acknowledged -- and every
        acknowledged label survives recovery."""
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=4, max_delay_ms=20.0)
        faults.arm("group-after-leader-append")
        outcomes = {}

        def writer(i):
            try:
                committer.commit("w1", append_script(f"w{i}"))
                outcomes[i] = "acked"
            except InjectedFault:
                outcomes[i] = "unknown"

        errors = run_threads(writer, 4)
        assert not any(errors)
        assert sorted(outcomes.values()).count("unknown") == 1
        assert sorted(outcomes.values()).count("acked") == 3

        final = recovered_doc(wal_dir)
        for i, outcome in outcomes.items():
            if outcome == "acked":
                assert f"<w{i}>" in final
        assert recover(wal_dir, repair=True).database.version == db.version

    def test_member_failure_after_crash_window_stays_isolated(self, stack):
        """Crash recovery of the committer itself: after a poisoned
        group, a fresh group with one bad member still isolates that
        member."""
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=2, max_delay_ms=20.0)
        faults.arm("group-before-fsync")
        with pytest.raises(InjectedFault):
            committer.commit("w1", append_script("poisoned"))
        good = committer.submit("w1", append_script("fine"))
        bad = committer.submit("w1", "<not-xupdate/>")
        committer.drive(good)
        assert good.result.fully_applied
        assert bad.result is None and bad.error is not None
        assert not isinstance(bad.error, InjectedFault)


class TestNetMidFrame:
    def test_torn_response_frame_is_a_network_error_not_a_hang(
        self, wal_dir
    ):
        """The server dies mid-frame while answering: the client reads
        a truncated stream and reports an unknown outcome -- it never
        blocks forever, and the listener keeps accepting."""
        with served(wal_dir) as (handle, _):
            client = connect(handle, "w1", timeout=5)
            faults.arm("net-mid-frame")
            with pytest.raises(NetworkError) as info:
                client.execute(append_script("torn"))
            assert "unknown" in str(info.value)
            client.close()
            # The kill-point tore one connection, not the server.
            with connect(handle, "w1", timeout=5) as fresh:
                xml = fresh.read_xml()
                assert xml.startswith("<log>")
