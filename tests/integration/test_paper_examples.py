"""End-to-end reproduction of every worked example in the paper.

Each test class corresponds to one experiment id in DESIGN.md's index
(E1-E11) and asserts the exact output the paper prints.
"""

import pytest

from repro.core import hospital_database
from repro.security import InsecureWriteExecutor, Privilege
from repro.xmltree import RESTRICTED, element, render_tree
from repro.xupdate import Append, Remove, Rename, UpdateContent


def labels(doc):
    return sorted(doc.label(n) for n in doc.all_nodes())


class TestE1Figure1:
    """Fig. 1: read everywhere, position-only on the patient name."""

    def test_view_shape(self):
        from repro.security import Policy, SubjectHierarchy, ViewBuilder
        from repro.xmltree import parse_xml

        doc = parse_xml(
            "<patients><robert><diagnosis>pneumonia</diagnosis></robert></patients>"
        )
        subjects = SubjectHierarchy()
        subjects.add_user("s")
        policy = Policy(subjects)
        policy.grant("read", "//*", "s")
        policy.deny("read", "/patients/robert", "s")
        policy.grant("position", "/patients/robert", "s")
        view = ViewBuilder().build(doc, policy, "s")
        assert render_tree(view.doc).split("\n") == [
            "/",
            "  /patients",
            "    /RESTRICTED",
            "      /diagnosis",
            "        text()pneumonia",
        ]


class TestE2Figure2:
    """Fig. 2 / equation 1: the fact set F and derived child facts."""

    def test_fact_set(self, doc):
        assert labels(doc) == sorted(
            [
                "/",
                "patients",
                "franck",
                "service",
                "otolarynology",
                "diagnosis",
                "tonsillitis",
                "robert",
                "service",
                "pneumology",
                "diagnosis",
                "pneumonia",
            ]
        )

    def test_derived_child_facts(self, doc):
        """The child relations of section 3.3."""
        child = doc.child_facts()
        root = doc.root
        franck, robert = doc.children(root)
        assert (root, root.parent()) in child  # child(n1, /)
        assert (franck, root) in child
        assert (robert, root) in child
        service = doc.children(franck)[0]
        assert (service, franck) in child


class TestE3ToE6XUpdate:
    """Section 3.4's four update examples, exact new fact sets."""

    def test_e3_rename(self, doc, executor):
        new = executor.apply(doc, Rename("//service", "department")).document
        assert labels(new) == sorted(
            [
                "/",
                "patients",
                "franck",
                "department",
                "otolarynology",
                "diagnosis",
                "tonsillitis",
                "robert",
                "department",
                "pneumology",
                "diagnosis",
                "pneumonia",
            ]
        )

    def test_e4_update(self, doc, executor):
        new = executor.apply(
            doc, UpdateContent("/patients/franck/diagnosis", "pharyngitis")
        ).document
        expected = labels(doc)
        expected.remove("tonsillitis")
        expected.append("pharyngitis")
        assert labels(new) == sorted(expected)

    def test_e5_append(self, doc, executor):
        tree = element(
            "albert", element("service", "cardiology"), element("diagnosis")
        )
        new = executor.apply(doc, Append("/patients", tree)).document
        expected = labels(doc) + ["albert", "service", "cardiology", "diagnosis"]
        assert labels(new) == sorted(expected)
        # Geometry facts the paper derives: preceding_sibling(n7, n1'').
        albert = new.children(new.root)[-1]
        assert new.label(albert) == "albert"
        robert = new.children(new.root)[-2]
        assert new.label(robert) == "robert"
        assert robert in new.preceding_siblings(albert)
        # child(n1'', n1), child(n2'', n1''), ...
        assert albert in new.children(new.root)
        service = new.children(albert)[0]
        assert new.label(service) == "service"

    def test_e6_remove(self, doc, executor):
        new = executor.apply(
            doc, Remove("/patients/franck/diagnosis")
        ).document
        expected = labels(doc)
        expected.remove("diagnosis")
        expected.remove("tonsillitis")
        assert labels(new) == sorted(expected)


class TestE7SubjectHierarchy:
    """Fig. 3 / equations 10-12."""

    def test_equation_10_explicit_facts(self, subjects):
        assert set(subjects.isa_facts()) == {
            ("secretary", "staff"),
            ("doctor", "staff"),
            ("epidemiologist", "staff"),
            ("beaufort", "secretary"),
            ("laporte", "doctor"),
            ("richard", "epidemiologist"),
            ("robert", "patient"),
            ("franck", "patient"),
        }

    def test_axioms_11_12_closure(self, subjects):
        closed = set(subjects.closure_facts())
        # Reflexivity for all ten subjects.
        assert all((s, s) in closed for s in subjects.subjects)
        # Transitivity through the role chain.
        assert ("beaufort", "staff") in closed
        assert ("laporte", "staff") in closed
        assert ("richard", "staff") in closed


class TestE8PolicyAndPerm:
    """Equation 13 + axiom 14 on the running example."""

    def test_priorities_10_to_21(self, policy):
        assert [r.priority for r in policy] == list(range(10, 22))

    def test_rule_1_cancelled_partially_by_rule_2(self, db):
        table = db.permissions_for("beaufort")
        diag_text = db.engine.select(
            db.document, "/patients/franck/diagnosis/text()"
        )[0]
        diag = db.engine.select(db.document, "/patients/franck/diagnosis")[0]
        assert table.holds(diag, Privilege.READ)  # rule 1 survives here
        assert not table.holds(diag_text, Privilege.READ)  # rule 2 wins here
        winner = table.explain(diag_text, Privilege.READ)
        assert winner.priority == 11  # the deny of rule 2

    def test_doctor_unaffected_by_secretary_rules(self, db):
        table = db.permissions_for("laporte")
        diag_text = db.engine.select(
            db.document, "/patients/franck/diagnosis/text()"
        )[0]
        assert table.holds(diag_text, Privilege.READ)


class TestE9Views:
    """The four views printed in section 4.4.1, node for node."""

    def test_secretary_view(self, db):
        assert db.login("beaufort").read_tree().split("\n") == [
            "/",
            "  /patients",
            "    /franck",
            "      /service",
            "        text()otolarynology",
            "      /diagnosis",
            "        text()RESTRICTED",
            "    /robert",
            "      /service",
            "        text()pneumology",
            "      /diagnosis",
            "        text()RESTRICTED",
        ]

    def test_robert_view(self, db):
        assert db.login("robert").read_tree().split("\n") == [
            "/",
            "  /patients",
            "    /robert",
            "      /service",
            "        text()pneumology",
            "      /diagnosis",
            "        text()pneumonia",
        ]

    def test_epidemiologist_view(self, db):
        assert db.login("richard").read_tree().split("\n") == [
            "/",
            "  /patients",
            "    /RESTRICTED",
            "      /service",
            "        text()otolarynology",
            "      /diagnosis",
            "        text()tonsillitis",
            "    /RESTRICTED",
            "      /service",
            "        text()pneumology",
            "      /diagnosis",
            "        text()pneumonia",
        ]

    def test_doctor_view_is_whole_database(self, db):
        view = db.login("laporte").view()
        assert view.facts() == db.document.facts()
        assert view.restricted == frozenset()


class TestE10CovertChannel:
    """Section 2.2: the SQL attack and its closure."""

    PROBE = Rename("/patients/*[diagnosis/text()='pneumonia']", "flagged")

    def test_insecure_leaks(self, db):
        view = db.build_view("beaufort")
        result = InsecureWriteExecutor().apply(view, self.PROBE)
        assert len(result.selected) == 1  # the leak
        assert len(result.affected) == 1  # and the write even succeeds

    def test_secure_blind(self, db):
        result = db.login("beaufort").execute(self.PROBE)
        assert result.selected == []
        assert result.affected == []


class TestE11SecureWriteMatrix:
    """Section 4.4.2: each operation's privilege requirement."""

    def test_doctor_poses_diagnosis(self, db):
        result = db.login("laporte").execute(
            Append("/patients/franck/diagnosis", element("addendum"))
        )
        assert result.fully_applied

    def test_secretary_inserts_medical_file(self, db):
        result = db.login("beaufort").execute(
            Append("/patients", element("albert", element("diagnosis")))
        )
        assert result.fully_applied

    def test_secretary_updates_patient_name(self, db):
        result = db.login("beaufort").execute(
            Rename("/patients/franck", "francois")
        )
        assert result.fully_applied

    def test_secretary_cannot_update_diagnosis(self, db):
        result = db.login("beaufort").execute(
            UpdateContent("/patients/franck/diagnosis", "flu")
        )
        assert result.affected == []
        assert result.denials

    def test_doctor_deletes_diagnosis_content(self, db):
        result = db.login("laporte").execute(
            Remove("/patients/franck/diagnosis/text()")
        )
        assert result.fully_applied

    def test_patient_cannot_write_at_all(self, db):
        result = db.login("robert").execute(
            UpdateContent("/patients/robert/diagnosis", "cured")
        )
        assert result.affected == []

    def test_restricted_rename_via_wildcard_refused(self, db):
        """Epidemiologist selects names as RESTRICTED; even if granted
        update, renaming a RESTRICTED node is refused."""
        db.policy.grant("update", "/patients/*", "epidemiologist")
        result = db.login("richard").execute(Rename("/patients/*", "x"))
        assert len(result.selected) == 2
        assert result.affected == []
        assert all("RESTRICTED" in d.reason for d in result.denials)
