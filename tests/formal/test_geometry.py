"""The Datalog geometry theory agrees with the document's accessors."""

from hypothesis import given, settings

from repro.formal import document_theory
from repro.logic import DatalogEngine, Var
from repro.xmltree import parse_xml

from tests.strategies import documents


def engine_for(doc):
    return DatalogEngine(document_theory(doc))


class TestFixedDocument:
    def setup_method(self):
        self.doc = parse_xml(
            "<patients><franck><service>oto</service></franck><robert/></patients>"
        )
        self.engine = engine_for(self.doc)

    def test_node_facts_match(self):
        derived = set(self.engine.query("node"))
        assert derived == self.doc.facts()

    def test_child_facts_match(self):
        derived = set(self.engine.query("child"))
        assert derived == self.doc.child_facts()

    def test_parent_is_converse_of_child(self):
        children = set(self.engine.query("child"))
        parents = set(self.engine.query("parent"))
        assert parents == {(y, x) for (x, y) in children}

    def test_descendant_example_from_paper(self):
        """child(n1,/), child(n2,n1), ... -> descendant closure."""
        root = self.doc.root
        franck = self.doc.children(root)[0]
        service = self.doc.children(franck)[0]
        assert self.engine.holds("descendant", service, root)
        assert self.engine.holds("descendant", service, franck)
        assert not self.engine.holds("descendant", root, service)


@given(documents())
@settings(max_examples=60, deadline=None)
def test_descendant_matches_document(doc):
    engine = engine_for(doc)
    derived = set(engine.query("descendant"))
    expected = set()
    for nid in doc.all_nodes():
        for d in doc.descendants(nid):
            expected.add((d, nid))
    assert derived == expected


@given(documents())
@settings(max_examples=60, deadline=None)
def test_descendant_or_self_matches(doc):
    engine = engine_for(doc)
    derived = set(engine.query("descendant_or_self"))
    expected = set()
    for nid in doc.all_nodes():
        for d in doc.descendants_or_self(nid):
            expected.add((d, nid))
    assert derived == expected


@given(documents())
@settings(max_examples=60, deadline=None)
def test_following_sibling_matches(doc):
    engine = engine_for(doc)
    derived = set(engine.query("following_sibling"))
    expected = set()
    for nid in doc.all_nodes():
        for f in doc.following_siblings(nid):
            expected.add((f, nid))
    assert derived == expected


@given(documents())
@settings(max_examples=60, deadline=None)
def test_ancestor_is_converse_of_descendant(doc):
    engine = engine_for(doc)
    descendant = set(engine.query("descendant"))
    ancestor = set(engine.query("ancestor"))
    assert ancestor == {(y, x) for (x, y) in descendant}
