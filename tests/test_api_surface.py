"""Guards on the public API surface.

Every public module, class and function must carry a docstring
(deliverable: documented public API), and every ``__all__`` entry must
resolve to a real attribute.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if exported is not None and name not in exported:
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


def test_public_methods_documented():
    """Every public method of every exported class has a docstring."""
    missing = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module_name}.{name}.{attr_name}")
    assert not missing, f"undocumented methods: {missing}"


def test_top_level_exports_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3


class TestServingErrorTaxonomy:
    """The serving-layer errors are first-class citizens of the public
    surface: importable from ``repro``, parented under ``ReproError``,
    and named in the taxonomy docstring (ISSUE 4 satellite)."""

    SERVING_ERRORS = (
        "ServingError",
        "OverloadError",
        "DeadlineExceeded",
        "CircuitOpenError",
        "RetryExhausted",
    )

    @pytest.mark.parametrize("name", SERVING_ERRORS)
    def test_exported_at_top_level(self, name):
        assert name in repro.__all__
        assert hasattr(repro, name)

    @pytest.mark.parametrize("name", SERVING_ERRORS)
    def test_parented_under_repro_error(self, name):
        from repro.errors import ReproError

        cls = getattr(repro, name)
        assert issubclass(cls, ReproError)

    @pytest.mark.parametrize("name", SERVING_ERRORS)
    def test_named_in_the_taxonomy_docstring(self, name):
        import repro.errors

        assert name in repro.errors.__doc__

    def test_subtypes_descend_from_serving_error(self):
        for name in ("OverloadError", "DeadlineExceeded",
                     "CircuitOpenError", "RetryExhausted"):
            assert issubclass(getattr(repro, name), repro.ServingError)

    def test_serving_components_exported(self):
        for name in ("DatabaseServer", "AdmissionController",
                     "CircuitBreaker", "Deadline", "RetryPolicy", "RWLock"):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestDurabilityErrorTaxonomy:
    """The durability errors and WAL entry points join the public
    surface the same way (ISSUE 5 satellite)."""

    WAL_ERRORS = (
        "WalError",
        "WalWriteError",
        "WalCorruptionError",
        "RecoveryError",
    )

    @pytest.mark.parametrize("name", WAL_ERRORS)
    def test_exported_at_top_level(self, name):
        assert name in repro.__all__
        assert hasattr(repro, name)

    @pytest.mark.parametrize("name", WAL_ERRORS)
    def test_parented_under_repro_error(self, name):
        from repro.errors import ReproError

        cls = getattr(repro, name)
        assert issubclass(cls, ReproError)

    @pytest.mark.parametrize("name", WAL_ERRORS)
    def test_named_in_the_taxonomy_docstring(self, name):
        import repro.errors

        assert name in repro.errors.__doc__

    def test_subtypes_descend_from_wal_error(self):
        for name in ("WalWriteError", "WalCorruptionError"):
            assert issubclass(getattr(repro, name), repro.WalError)

    def test_wal_components_exported(self):
        for name in ("WriteAheadLog", "RecoveryResult", "recover"):
            assert name in repro.__all__
            assert hasattr(repro, name)
