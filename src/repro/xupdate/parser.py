"""Parser for the XUpdate XML syntax (xmldb.org working draft [15]).

Turns an ``<xupdate:modifications>`` document into an
:class:`~repro.xupdate.operations.UpdateScript`.  Supported
instructions are exactly the six the paper covers::

    <xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
      <xupdate:rename select="//service">department</xupdate:rename>
      <xupdate:update select="/patients/franck/diagnosis">pharyngitis</xupdate:update>
      <xupdate:append select="/patients">
        <xupdate:element name="albert">
          <service>cardiology</service>
        </xupdate:element>
      </xupdate:append>
      <xupdate:insert-before select="//robert">...</xupdate:insert-before>
      <xupdate:insert-after select="//robert">...</xupdate:insert-after>
      <xupdate:remove select="/patients/franck/diagnosis"/>
    </xupdate:modifications>

Content of the creation instructions may mix ``xupdate:element``,
``xupdate:attribute``, ``xupdate:text`` constructors and literal XML.
A creation instruction whose content holds several top-level nodes
wraps them in sequence (each is attached in order).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..xmltree.fragments import Fragment
from ..xmltree.node import NodeKind
from ..xmltree.parser import parse_fragment
from .operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateOperation,
)

__all__ = ["XUpdateParseError", "parse_xupdate"]

_PREFIXES = ("xupdate:", "xu:")


class XUpdateParseError(ValueError):
    """Structurally invalid XUpdate document."""


def _strip_prefix(name: str) -> Optional[str]:
    """The local part of an xupdate-prefixed name, else None."""
    for prefix in _PREFIXES:
        if name.startswith(prefix):
            return name[len(prefix) :]
    return None


def _attr(fragment: Fragment, name: str) -> Optional[str]:
    for key, value in fragment.attributes:
        if key == name:
            return value
    return None


def _require_select(fragment: Fragment, what: str) -> str:
    select = _attr(fragment, "select")
    if not select:
        raise XUpdateParseError(f"<xupdate:{what}> requires a select attribute")
    return select


def _text_content(fragment: Fragment, what: str) -> str:
    parts: List[str] = []
    for child in fragment.children:
        if child.kind is not NodeKind.TEXT:
            raise XUpdateParseError(
                f"<xupdate:{what}> content must be character data"
            )
        parts.append(child.label)
    return "".join(parts)


def _build_content(fragment: Fragment) -> List[Fragment]:
    """Expand constructor elements into plain fragments."""
    out: List[Fragment] = []
    for child in fragment.children:
        out.append(_build_one(child))
    if not out:
        raise XUpdateParseError("creation instruction has no content")
    return out


def _build_one(fragment: Fragment) -> Fragment:
    if fragment.kind is NodeKind.TEXT:
        return fragment
    local = _strip_prefix(fragment.label)
    if local is None:
        # Literal XML content is used verbatim.
        return Fragment(
            fragment.kind,
            fragment.label,
            fragment.attributes,
            tuple(_build_one(c) for c in fragment.children),
        )
    if local == "element":
        name = _attr(fragment, "name")
        if not name:
            raise XUpdateParseError("<xupdate:element> requires a name attribute")
        attrs: List[Tuple[str, str]] = []
        children: List[Fragment] = []
        for child in fragment.children:
            sub_local = (
                _strip_prefix(child.label)
                if child.kind is NodeKind.ELEMENT
                else None
            )
            if sub_local == "attribute":
                attr_name = _attr(child, "name")
                if not attr_name:
                    raise XUpdateParseError(
                        "<xupdate:attribute> requires a name attribute"
                    )
                attrs.append((attr_name, _text_content(child, "attribute")))
            else:
                children.append(_build_one(child))
        return Fragment(NodeKind.ELEMENT, name, tuple(attrs), tuple(children))
    if local == "text":
        return Fragment(NodeKind.TEXT, _text_content(fragment, "text"))
    if local == "comment":
        return Fragment(NodeKind.COMMENT, _text_content(fragment, "comment"))
    raise XUpdateParseError(f"unsupported constructor <xupdate:{local}>")


def _content_fragments(instruction: Fragment, what: str) -> List[Fragment]:
    content = _build_content(instruction)
    for item in content:
        if item.kind is NodeKind.TEXT and not item.label.strip():
            raise XUpdateParseError(f"<xupdate:{what}> has empty content")
    return content


def parse_xupdate(source: str) -> UpdateScript:
    """Parse an XUpdate document into an :class:`UpdateScript`.

    Raises:
        XUpdateParseError: for unknown instructions or missing
            attributes.
        repro.xmltree.parser.XMLSyntaxError: for malformed XML.
    """
    root = parse_fragment(source)
    if _strip_prefix(root.label) != "modifications":
        raise XUpdateParseError(
            f"expected <xupdate:modifications>, got <{root.label}>"
        )
    operations: List[XUpdateOperation] = []
    for instruction in root.children:
        if instruction.kind is NodeKind.TEXT:
            if instruction.label.strip():
                raise XUpdateParseError("stray text in <xupdate:modifications>")
            continue
        local = _strip_prefix(instruction.label)
        if local is None:
            raise XUpdateParseError(
                f"unexpected element <{instruction.label}> in modifications"
            )
        if local == "rename":
            operations.append(
                Rename(
                    _require_select(instruction, local),
                    _text_content(instruction, local).strip(),
                )
            )
        elif local == "update":
            operations.append(
                UpdateContent(
                    _require_select(instruction, local),
                    _text_content(instruction, local),
                )
            )
        elif local == "remove":
            operations.append(Remove(_require_select(instruction, local)))
        elif local in ("append", "insert-before", "insert-after"):
            select = _require_select(instruction, local)
            for content in _content_fragments(instruction, local):
                if local == "append":
                    operations.append(Append(select, content))
                elif local == "insert-before":
                    operations.append(InsertBefore(select, content))
                else:
                    operations.append(InsertAfter(select, content))
        elif local == "variable":
            raise XUpdateParseError(
                "<xupdate:variable> is not supported (out of the paper's scope)"
            )
        else:
            raise XUpdateParseError(f"unknown instruction <xupdate:{local}>")
    return UpdateScript(tuple(operations))
