"""WalStream: resumable tailing of a live write-ahead log.

The follower contract: records come back in lsn order with no gaps; an
undecodable tail is *in flight* (poll again later), never an error; a
position the primary has pruned away -- or history rewritten under the
cursor -- is a :class:`WalStreamGap`, the signal to re-seed from a
checkpoint."""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WalStreamGap
from repro.wal import WalStream, WriteAheadLog, scan_directory

from .conftest import append_script, editors_database


def lsns(records):
    return [r.lsn for r in records]


class TestFollowing:
    def test_follow_from_zero_sees_every_record(self, primary, wal_dir):
        primary.login("w1").execute(append_script("a"))
        primary.login("w2").execute(append_script("b"))
        stream = WalStream(wal_dir)
        records = stream.poll()
        assert lsns(records) == [1, 2, 3]  # checkpoint + two commits
        assert records[0].kind == "checkpoint"
        assert [r.kind for r in records[1:]] == ["update", "update"]

    def test_incremental_polls_pick_up_only_new_records(
        self, primary, wal_dir
    ):
        stream = WalStream(wal_dir)
        assert lsns(stream.poll()) == [1]
        assert stream.poll() == []  # idle: nothing new
        primary.login("w1").execute(append_script("a"))
        assert lsns(stream.poll()) == [2]
        primary.login("w1").execute(append_script("b"))
        primary.login("w2").execute(append_script("c"))
        assert lsns(stream.poll()) == [3, 4]
        assert stream.poll() == []

    def test_resume_from_lsn_skips_the_prefix(self, primary, wal_dir):
        for label in ("a", "b", "c"):
            primary.login("w1").execute(append_script(label))
        assert lsns(WalStream(wal_dir, from_lsn=2).poll()) == [3, 4]
        assert lsns(WalStream(wal_dir, from_lsn=4).poll()) == []

    def test_max_records_caps_one_poll(self, primary, wal_dir):
        for label in ("a", "b", "c"):
            primary.login("w1").execute(append_script(label))
        stream = WalStream(wal_dir)
        assert lsns(stream.poll(max_records=2)) == [1, 2]
        assert lsns(stream.poll(max_records=2)) == [3, 4]
        assert stream.poll(max_records=2) == []

    def test_follows_across_segment_rotation(self, tmp_path):
        wal_dir = str(tmp_path / "rot.wal")
        db = editors_database()
        wal = WriteAheadLog(wal_dir, segment_bytes=256)  # rotate often
        db.attach_wal(wal)
        wal.checkpoint(db)
        stream = WalStream(wal_dir)
        for i in range(8):
            db.login("w1").execute(append_script(f"r{i}"))
        assert len(scan_directory(wal_dir).segments) > 1
        assert lsns(stream.poll()) == list(range(1, 10))

    def test_stream_method_on_the_log(self, primary, wal_dir):
        primary.login("w1").execute(append_script("a"))
        stream = primary.wal.stream(from_lsn=1)
        assert lsns(stream.poll()) == [2]


class TestTornTail:
    def test_undecodable_tail_is_in_flight_not_an_error(
        self, primary, wal_dir
    ):
        primary.login("w1").execute(append_script("a"))
        stream = WalStream(wal_dir)
        assert lsns(stream.poll()) == [1, 2]
        primary.wal.close()
        segment = scan_directory(wal_dir).segments[-1]
        size = os.path.getsize(segment)
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn half-record")
        # The damage sits past the committed prefix: poll simply sees
        # nothing new yet (the writer may still be mid-append).
        assert stream.poll() == []
        assert stream.poll() == []
        # The primary restarts: re-opening the log truncates the torn
        # tail and appends continue; the stream picks up seamlessly.
        with open(segment, "r+b") as handle:
            handle.truncate(size)
        reopened = WriteAheadLog(wal_dir)
        reopened.append({"kind": "admin", "version": 99, "op": "noop"})
        assert lsns(stream.poll()) == [3]

    def test_torn_prefix_then_commit_is_served_after_repair(
        self, primary, wal_dir
    ):
        stream = WalStream(wal_dir)
        stream.poll()
        primary.wal.close()
        segment = scan_directory(wal_dir).segments[-1]
        with open(segment, "ab") as handle:
            handle.write(b"\x00\x01garbage")
        assert stream.poll() == []
        # WriteAheadLog's own open path repairs the torn tail.
        reopened = WriteAheadLog(wal_dir)
        assert reopened.stats["torn_tail_repaired"] == 1
        reopened.append({"kind": "admin", "version": 1, "op": "noop"})
        assert lsns(stream.poll()) == [2]


class TestGaps:
    def test_pruned_position_raises_gap(self, tmp_path):
        wal_dir = str(tmp_path / "prune.wal")
        db = editors_database()
        wal = WriteAheadLog(wal_dir, retain_checkpoints=1, segment_bytes=128)
        db.attach_wal(wal)
        wal.checkpoint(db)
        for i in range(6):
            db.login("w1").execute(append_script(f"p{i}"))
        wal.checkpoint(db)  # retention drops the oldest segments
        for i in range(3):
            db.login("w1").execute(append_script(f"q{i}"))
        wal.checkpoint(db)
        stale = WalStream(wal_dir)  # position 0 was pruned away
        with pytest.raises(WalStreamGap) as excinfo:
            stale.poll()
        assert excinfo.value.oldest_available > 1

    def test_truncation_behind_the_cursor_raises_gap(
        self, primary, wal_dir
    ):
        primary.login("w1").execute(append_script("a"))
        primary.login("w1").execute(append_script("b"))
        stream = WalStream(wal_dir)
        assert lsns(stream.poll()) == [1, 2, 3]
        primary.wal.close()
        # History rewritten under the cursor: the segment shrinks below
        # the stream's offset.  That is never "in flight".
        segment = scan_directory(wal_dir).segments[-1]
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) // 2)
        with pytest.raises(WalStreamGap):
            stream.poll()

    def test_empty_directory_from_positive_lsn_is_a_gap(self, tmp_path):
        empty = str(tmp_path / "empty.wal")
        os.makedirs(empty)
        with pytest.raises(WalStreamGap):
            WalStream(empty, from_lsn=5).poll()

    def test_empty_directory_from_zero_just_waits(self, tmp_path):
        empty = str(tmp_path / "empty.wal")
        os.makedirs(empty)
        assert WalStream(empty).poll() == []


class TestResumptionProperty:
    """Satellite property: across arbitrary interleavings of commits,
    rotating/pruning checkpoints, polls and cursor re-seeks, a stream
    either yields every record past its cursor exactly once and in
    order, or raises :class:`WalStreamGap` naming the true oldest
    readable lsn.  It never silently skips."""

    @given(
        actions=st.lists(
            st.sampled_from(
                ["commit", "commit", "checkpoint", "poll", "reseek"]
            ),
            min_size=5,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_resumption_yields_contiguous_records_or_a_true_gap(
        self, actions
    ):
        with tempfile.TemporaryDirectory() as base:
            wal_dir = os.path.join(base, "db.wal")
            db = editors_database()
            # Tiny segments rotate constantly; retention 1 prunes hard.
            wal = WriteAheadLog(
                wal_dir, segment_bytes=200, retain_checkpoints=1
            )
            db.attach_wal(wal)
            wal.checkpoint(db)
            stream = WalStream(wal_dir)
            cursor = 0
            label = 0
            for action in actions + ["poll"]:
                if action == "commit":
                    db.login("w1").execute(append_script(f"n{label}"))
                    label += 1
                elif action == "checkpoint":
                    wal.checkpoint(db)
                elif action == "reseek":
                    # Resume a fresh stream at the acknowledged cursor:
                    # the restart-after-crash path.
                    stream = WalStream(wal_dir, from_lsn=cursor)
                else:
                    cursor = self._poll(wal_dir, stream, cursor)
                    stream = WalStream(wal_dir, from_lsn=cursor)
            # Drain: everything the log holds past the cursor arrives.
            while True:
                advanced = self._poll(wal_dir, stream, cursor)
                stream = WalStream(wal_dir, from_lsn=advanced)
                if advanced == cursor:
                    break
                cursor = advanced
            assert cursor == wal.lsn
            wal.close()

    @staticmethod
    def _poll(wal_dir, stream, cursor):
        """One poll, asserting the contract; returns the new cursor."""
        try:
            records = stream.poll()
        except WalStreamGap as gap:
            on_disk = scan_directory(wal_dir).records
            oldest = min(r.lsn for r in on_disk)
            # The gap is real (the next lsn truly is unreadable) and
            # honestly described (oldest_available is exact).
            assert cursor + 1 < oldest
            assert gap.oldest_available == oldest
            assert gap.next_lsn == cursor + 1
            return oldest - 1  # re-seed point: catch-up would cover it
        got = lsns(records)
        # Contiguous from the cursor: nothing skipped, nothing repeated.
        assert got == list(range(cursor + 1, cursor + 1 + len(got)))
        return got[-1] if got else cursor
