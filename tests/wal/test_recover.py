"""Recovery: checkpoint + committed prefix -> an equal database."""

import os

import pytest

from repro.errors import RecoveryError, WalCorruptionError
from repro.testing.faults import InjectedFault, inject
from repro.wal import WriteAheadLog, list_checkpoints, recover, scan_directory
from repro.xmltree.serializer import serialize

from .conftest import append_script, editors_database, state_of


def last_segment(wal_dir):
    return sorted(
        os.path.join(wal_dir, n)
        for n in os.listdir(wal_dir)
        if n.startswith("segment-")
    )[-1]


class TestRoundTrip:
    def test_recovers_the_exact_committed_state(self, wal_dir, logged_db):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.login("w2").execute(append_script("b"))
        db.admin_update(
            '<xupdate:modifications '
            'xmlns:xupdate="http://www.xmldb.org/xupdate">'
            '<xupdate:update select="/log/a">patched</xupdate:update>'
            "</xupdate:modifications>"
        )
        # administrative surface: new user, new rule, then a revocation
        db.subjects.add_user("w3", member_of="editor")
        rule = db.policy.deny("read", "/log/b", "w3")
        db.policy.revoke(rule)
        db.login("w1").execute(append_script("c"))
        expected = state_of(db)
        db.detach_wal().close()

        result = recover(wal_dir)
        assert result.report.clean, str(result.report)
        assert result.torn is None
        assert result.checkpoint is not None
        assert result.replayed == 4  # three sessions + one admin commit
        assert state_of(result.database) == expected
        assert result.database.wal is None  # recovery never re-logs

    def test_recovered_database_resumes_durable_operation(
        self, wal_dir, logged_db
    ):
        logged_db.login("w1").execute(append_script("a"))
        logged_db.detach_wal().close()
        result = recover(wal_dir)
        db = result.database
        db.attach_wal(WriteAheadLog(wal_dir))
        db.login("w2").execute(append_script("b"))
        expected = state_of(db)
        db.detach_wal().close()
        assert state_of(recover(wal_dir).database) == expected

    def test_replay_starts_at_the_newest_checkpoint(self, wal_dir, logged_db):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.wal.checkpoint(db)
        db.login("w1").execute(append_script("b"))
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.checkpoint.version == 1
        assert result.replayed == 1  # only "b" is past the snapshot
        assert result.version == 2

    def test_state_fallback_record(self, wal_dir, logged_db):
        """A commit with no XUpdate spelling (a direct ``commit()``) is
        logged as a full state snapshot and replayed from it."""
        db = logged_db
        doc = db.document.copy()
        db.commit(doc)  # origin-less: must fall back
        assert db.wal.stats["state_fallbacks"] == 1
        db.login("w1").execute(append_script("after"))  # replays on top
        expected = state_of(db)
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.report.clean
        assert state_of(result.database) == expected

    def test_state_record_bootstraps_without_a_checkpoint(self, wal_dir):
        db = editors_database()
        db.attach_wal(WriteAheadLog(wal_dir))  # note: no checkpoint
        db.commit(db.document.copy())  # state record = full bootstrap
        db.login("w1").execute(append_script("a"))
        expected = state_of(db)
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.checkpoint is None
        assert state_of(result.database) == expected

    def test_log_without_any_starting_point_is_unrecoverable(self, wal_dir):
        db = editors_database()
        db.attach_wal(WriteAheadLog(wal_dir))  # no checkpoint taken
        db.login("w1").execute(append_script("a"))
        db.detach_wal().close()
        with pytest.raises(RecoveryError):
            recover(wal_dir)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(str(tmp_path / "nowhere"))


class TestTornTailHandling:
    def tear(self, wal_dir, logged_db):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        committed = state_of(db)
        with inject("wal-mid-record"):
            with pytest.raises(InjectedFault):
                db.login("w2").execute(append_script("lost"))
        db.detach_wal().close()
        return committed

    def test_lenient_truncates_and_reports(self, wal_dir, logged_db):
        committed = self.tear(wal_dir, logged_db)
        result = recover(wal_dir)
        assert result.torn is not None
        assert not result.report.clean
        assert state_of(result.database) == committed
        # not repaired: the torn bytes are still on disk
        assert scan_directory(wal_dir).torn is not None

    def test_strict_raises(self, wal_dir, logged_db):
        self.tear(wal_dir, logged_db)
        with pytest.raises(WalCorruptionError):
            recover(wal_dir, strict=True)

    def test_repair_makes_the_damage_physical_truth(
        self, wal_dir, logged_db
    ):
        committed = self.tear(wal_dir, logged_db)
        result = recover(wal_dir, repair=True)
        assert state_of(result.database) == committed
        assert scan_directory(wal_dir).torn is None
        # and the repaired directory re-opens for appending
        db = result.database
        db.attach_wal(WriteAheadLog(wal_dir))
        assert db.wal.stats["torn_tail_repaired"] == 0
        db.login("w1").execute(append_script("resumed"))
        expected = state_of(db)
        db.detach_wal().close()
        assert state_of(recover(wal_dir).database) == expected

    def test_before_fsync_commit_is_durable_but_unacknowledged(
        self, wal_dir, logged_db
    ):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        acked = db.version
        with inject("wal-before-fsync"):
            with pytest.raises(InjectedFault):
                db.login("w2").execute(append_script("inflight"))
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.report.clean  # fully written record: a clean log
        assert result.version == acked + 1
        assert "<inflight>" in serialize(result.database.document)


class TestDegradations:
    def test_version_mismatch_stops_lenient_replay(self, wal_dir, logged_db):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        consistent = state_of(db)
        wal = db.detach_wal()
        # Forge a record stamped with the wrong post-commit version.
        wal.append(
            {
                "kind": "update",
                "version": db.version + 7,
                "user": "w2",
                "script": append_script("forged"),
                "strict": False,
            }
        )
        wal.close()
        result = recover(wal_dir)
        assert not result.report.clean
        assert any("stamped" in str(p) for p in result.report.problems)
        assert state_of(result.database) == consistent
        with pytest.raises(RecoveryError):
            recover(wal_dir, strict=True)

    def test_unloadable_newest_checkpoint_falls_back(
        self, wal_dir, logged_db
    ):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.wal.checkpoint(db)
        db.login("w1").execute(append_script("b"))
        expected = state_of(db)
        db.detach_wal().close()
        newest = list_checkpoints(wal_dir)[-1]
        with open(newest.path, "r+", encoding="utf-8") as handle:
            handle.truncate(40)  # half a snapshot: unloadable
        result = recover(wal_dir)
        assert not result.report.clean
        assert result.checkpoint.lsn < newest.lsn  # the older one
        assert state_of(result.database) == expected  # replay catches up
        with pytest.raises(RecoveryError):
            recover(wal_dir, strict=True)

    def test_repair_mode_takes_the_older_checkpoint_fallback(
        self, wal_dir, logged_db
    ):
        # The worst plausible crash site: the newest snapshot is
        # corrupt AND the log has a torn tail.  Repair mode must fall
        # back to the older checkpoint, replay the committed suffix
        # over it, truncate the torn bytes, and leave a directory a
        # fresh WriteAheadLog opens cleanly.
        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.wal.checkpoint(db)
        db.login("w1").execute(append_script("b"))
        expected = state_of(db)
        db.detach_wal().close()
        newest = list_checkpoints(wal_dir)[-1]
        with open(newest.path, "r+", encoding="utf-8") as handle:
            handle.truncate(40)
        with open(last_segment(wal_dir), "ab") as handle:
            handle.write(b"\xff\xfftorn")
        result = recover(wal_dir, repair=True)
        assert not result.report.clean
        assert result.checkpoint.lsn < newest.lsn  # the older one
        assert state_of(result.database) == expected
        # the torn tail is physically gone: re-opening repairs nothing
        reopened = WriteAheadLog(wal_dir)
        assert reopened.stats["torn_tail_repaired"] == 0
        reopened.close()

    def test_load_newest_checkpoint_skips_the_corrupt_one(
        self, wal_dir, logged_db
    ):
        from repro.wal import load_newest_checkpoint

        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.wal.checkpoint(db)
        db.detach_wal().close()
        newest = list_checkpoints(wal_dir)[-1]
        checkpoint, loaded = load_newest_checkpoint(wal_dir)
        assert checkpoint.lsn == newest.lsn
        assert loaded.version == checkpoint.version
        with open(newest.path, "r+", encoding="utf-8") as handle:
            handle.truncate(40)
        checkpoint, loaded = load_newest_checkpoint(wal_dir)
        assert checkpoint.lsn < newest.lsn
        with pytest.raises(RecoveryError):
            load_newest_checkpoint(wal_dir, strict=True)

    def test_tampered_checkpoint_is_rejected_by_its_integrity_header(
        self, wal_dir, logged_db
    ):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        db.wal.checkpoint(db)
        expected = state_of(db)
        db.detach_wal().close()
        newest = list_checkpoints(wal_dir)[-1]
        text = open(newest.path, encoding="utf-8").read()
        open(newest.path, "w", encoding="utf-8").write(
            text.replace("<entry>seed</entry>", "<entry>SEED</entry>")
        )
        result = recover(wal_dir)
        assert any(
            "checkpoint" in problem.section
            for problem in result.report.problems
        )
        assert state_of(result.database) == expected

    def test_replay_failure_stops_at_the_last_consistent_point(
        self, wal_dir, logged_db
    ):
        db = logged_db
        db.login("w1").execute(append_script("a"))
        consistent = state_of(db)
        wal = db.detach_wal()
        wal.append({"kind": "subjects", "op": "explode", "args": []})
        wal.close()
        result = recover(wal_dir)
        assert not result.report.clean
        assert state_of(result.database) == consistent
        with pytest.raises(RecoveryError):
            recover(wal_dir, strict=True)
