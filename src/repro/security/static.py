"""Static enforcement: per-node ``perm`` decisions without views.

After Cheney's *Static Enforceability of XPath-Based Access Control
Policies*: when every rule path applicable to a user (for one
privilege) lies in the NFA-decidable fragment of
:mod:`repro.xpath.skeleton` -- absolute location paths over
child/descendant/descendant-or-self/self steps with name or
text/comment/node kind tests and no predicates -- axiom 14 can be
replayed *per node*: run each rule's chain automaton over the node's
label chain, keep the latest match, and read the effect.  Cost is
O(path length x rule count) in the node's depth, with **zero** view
materialization, path evaluation over the document, or permission-table
derivation.

Eligibility is a per-(user, privilege) property, not per-policy: the
privilege lanes that stay inside the fragment answer statically while
the others fall back to the resolver, so one ``$USER`` rule on
``delete`` does not take ``read`` checks off the fast path.

Deciders are cached by the same content key the resolver's fingerprint
uses -- the user's applicable-rule tuple -- so all users of a role share
one decider, and policy mutations naturally key new deciders.
"""

from __future__ import annotations

import threading
import weakref
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xpath.skeleton import PathSkeleton, analyze_path
from .policy import ACCEPT, Policy, SecurityRule
from .privileges import Privilege

__all__ = ["StaticDecider", "automata_eligible", "decider_for"]


@lru_cache(maxsize=4096)
def _skeleton(path: str) -> Optional[PathSkeleton]:
    return analyze_path(path)


def automata_eligible(rule: SecurityRule) -> bool:
    """Can this rule's path be decided per-node by the chain NFA?

    True exactly when the skeleton analysis yields a *patchable*
    skeleton: the path is an absolute location path inside the
    child/descendant/descendant-or-self/self fragment with no
    predicates.  ``$USER`` paths are never eligible (the paper-compat
    ``[$var]`` reading is a predicate).
    """
    if "$" in rule.path:
        return False
    skeleton = _skeleton(rule.path)
    return skeleton is not None and skeleton.patchable


#: One privilege lane: the applicable rules (priority order) paired
#: with their chain automata, or None when any rule is out of fragment.
_Lane = Optional[Tuple[Tuple[SecurityRule, PathSkeleton], ...]]


class StaticDecider:
    """Axiom-14 replay compiled to chain automata for one rule tuple.

    Args:
        rules: the user's applicable rules in increasing priority order
            (exactly :meth:`~repro.security.policy.Policy.applicable_rules`).
        star_matches_text: the engine's paper-compat lone-``*`` flag;
            the NFA must mirror the evaluator's configuration.
    """

    def __init__(
        self, rules: Tuple[SecurityRule, ...], star_matches_text: bool
    ) -> None:
        self._star = star_matches_text
        self._lanes: Dict[Privilege, _Lane] = {}
        for privilege in Privilege:
            lane = []
            eligible = True
            for rule in rules:
                if rule.privilege is not privilege:
                    continue
                if not automata_eligible(rule):
                    eligible = False
                    break
                lane.append((rule, _skeleton(rule.path)))
            self._lanes[privilege] = tuple(lane) if eligible else None
        # Per-document decision memo, pinned to a mutation stamp: write
        # checks re-ask about the same parents/children repeatedly.
        self._memo: "weakref.WeakKeyDictionary[XMLDocument, Tuple[int, Dict[Tuple[NodeId, Privilege], Tuple[bool, Optional[SecurityRule]]]]]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()

    def eligible(self, privilege: Privilege) -> bool:
        """Whether this privilege lane answers statically."""
        return self._lanes.get(privilege) is not None

    def eligibility(self) -> Dict[Privilege, bool]:
        """Privilege -> statically decidable, for policy tagging."""
        return {p: lane is not None for p, lane in self._lanes.items()}

    def decide(
        self, doc: XMLDocument, nid: NodeId, privilege: Privilege
    ) -> Optional[Tuple[bool, Optional[SecurityRule]]]:
        """Decide ``perm(user, nid, privilege)`` statically.

        Returns ``(granted, winning_rule)`` -- ``(False, None)`` when no
        rule addresses the node (closed world) -- or ``None`` when the
        privilege lane is out of fragment and the caller must fall back
        to the resolver.
        """
        lane = self._lanes.get(privilege)
        if lane is None:
            return None
        with self._lock:
            entry = self._memo.get(doc)
            if entry is not None and entry[0] == doc.mutation_stamp:
                cached = entry[1].get((nid, privilege))
                if cached is not None:
                    return cached
            else:
                entry = (doc.mutation_stamp, {})
                self._memo[doc] = entry
        winner: Optional[SecurityRule] = None
        for rule, skeleton in lane:
            # Priority order: the latest matching rule decides (axiom 14).
            if skeleton.matches(doc, nid, self._star):
                winner = rule
        outcome = (
            (False, None) if winner is None else (winner.effect == ACCEPT, winner)
        )
        with self._lock:
            entry[1][(nid, privilege)] = outcome
        return outcome


@lru_cache(maxsize=512)
def _decider(rules: Tuple[SecurityRule, ...], star_matches_text: bool) -> StaticDecider:
    return StaticDecider(rules, star_matches_text)


def decider_for(
    policy: Policy, user: str, star_matches_text: bool
) -> StaticDecider:
    """The (shared) static decider for one user under one policy.

    Keyed by the user's applicable-rule tuple -- the same content key as
    the resolver's permission fingerprint -- so users with identical
    rule sequences share a decider and its memo, and any policy
    mutation keys a fresh one.
    """
    return _decider(policy.applicable_rules(user), star_matches_text)
