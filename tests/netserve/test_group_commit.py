"""GroupCommitter semantics: leader/follower structure, one fsync per
group, member isolation, and retry behavior -- at the library layer
(the wire-level path is covered in test_server.py)."""

import pytest

from repro.errors import RetryExhausted
from repro.serving import DatabaseServer, GroupCommitter, RetryPolicy
from repro.testing.faults import run_threads
from repro.wal import WriteAheadLog, recover
from repro.xupdate import XUpdateParseError

from .conftest import append_script, editors_database

pytestmark = pytest.mark.netserve


@pytest.fixture
def stack(wal_dir):
    db = editors_database()
    wal = WriteAheadLog(wal_dir, fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)
    return db, wal, DatabaseServer(db)


class TestLeaderFollower:
    def test_first_member_leads_followers_park(self, stack):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=4, max_delay_ms=50.0)
        leader = committer.submit("w1", append_script("a"))
        follower = committer.submit("w2", append_script("b"))
        assert leader.leader is True
        assert follower.leader is False
        assert leader.group is follower.group
        committer.drive(leader)
        assert leader.done and follower.done
        assert leader.result.fully_applied
        assert follower.result.fully_applied

    def test_group_seals_at_max_batch_and_next_submit_leads_anew(self, stack):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=2, max_delay_ms=50.0)
        first = committer.submit("w1", append_script("a"))
        second = committer.submit("w1", append_script("b"))
        third = committer.submit("w1", append_script("c"))
        assert first.group.sealed
        assert third.leader is True
        assert third.group is not first.group
        committer.drive(first)
        committer.drive(third)
        assert all(t.result is not None for t in (first, second, third))

    def test_done_callback_fires_on_resolution_and_immediately_after(
        self, stack
    ):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=1, max_delay_ms=0.0)
        seen = []
        ticket = committer.submit("w1", append_script("a"))
        ticket.add_done_callback(lambda t: seen.append("before"))
        committer.drive(ticket)
        ticket.add_done_callback(lambda t: seen.append("after"))
        assert seen == ["before", "after"]


class TestAmortization:
    def test_one_fsync_per_group_not_per_commit(self, stack):
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=8, max_delay_ms=25.0)
        fsyncs_before = wal.stats["fsyncs"]
        errors = run_threads(
            lambda i: committer.commit("w1", append_script(f"t{i}")), 8
        )
        assert not any(errors)
        stats = server.stats()
        assert stats["commits"] == 8
        assert stats["grouped_records"] == 8
        fsyncs_spent = wal.stats["fsyncs"] - fsyncs_before
        # 8 acknowledged durable commits, fewer than 8 fsyncs.
        assert fsyncs_spent < 8
        assert stats["group_fsyncs_saved"] > 0
        assert stats["group_commits"] >= 1
        assert stats["group_commits"] == fsyncs_spent

    def test_acknowledged_group_commits_are_durable(self, stack, wal_dir):
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=4, max_delay_ms=10.0)
        errors = run_threads(
            lambda i: committer.commit("w1", append_script(f"d{i}")), 8
        )
        assert not any(errors)
        result = recover(wal_dir, repair=True)
        assert result.database.version == db.version
        from repro.xmltree.serializer import serialize

        final = serialize(result.database.document)
        for i in range(8):
            assert f"<d{i}>" in final

    def test_single_member_group_still_fsyncs_before_ack(self, stack):
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=8, max_delay_ms=0.0)
        before = wal.stats["fsyncs"]
        committer.commit("w1", append_script("solo"))
        assert wal.stats["fsyncs"] == before + 1
        assert server.stats()["group_fsyncs_saved"] == 0

    def test_wal_policy_outside_groups_is_untouched(self, stack):
        """A concurrent plain execute() keeps its own per-commit fsync
        while groups run -- the deferral is scoped to the leader's
        thread, not the log."""
        db, wal, server = stack
        committer = GroupCommitter(server, max_batch=4, max_delay_ms=10.0)

        def worker(i):
            if i % 2:
                server.execute("w2", append_script(f"plain{i}"))
            else:
                committer.commit("w1", append_script(f"grouped{i}"))

        errors = run_threads(worker, 8)
        assert not any(errors)
        assert server.stats()["commits"] == 8
        # Every plain commit fsynced individually: total appends that
        # deferred their fsync are exactly the grouped ones.
        assert wal.stats["grouped_appends"] == server.stats()[
            "grouped_records"
        ]


class TestMemberIsolation:
    def test_one_failing_member_never_fails_its_groupmates(self, stack):
        """A member whose script will not even parse resolves with its
        own error; every other member of the same group commits and is
        acknowledged."""
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=3, max_delay_ms=60.0)
        good_a = committer.submit("w1", append_script("good0"))
        bad = committer.submit("w1", "<not-xupdate/>")
        good_b = committer.submit("w1", append_script("good1"))
        committer.drive(good_a)
        assert good_a.result.fully_applied
        assert good_b.result.fully_applied
        assert bad.result is None
        assert isinstance(bad.error, XUpdateParseError)
        assert server.stats()["grouped_records"] == 2

    def test_commit_wrapper_raises_the_member_error(self, stack):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=1, max_delay_ms=0.0)
        with pytest.raises(XUpdateParseError):
            committer.commit("w1", "<not-xupdate/>")


class TestRetry:
    def test_raced_member_is_resubmitted_not_group_blocking(self, wal_dir):
        """A ConcurrentUpdateError inside a group marks the ticket
        retryable; commit() re-submits it into a later group and the
        write eventually lands."""
        db = editors_database()
        wal = WriteAheadLog(wal_dir, fsync="always")
        db.attach_wal(wal)
        wal.checkpoint(db)
        server = DatabaseServer(db, retry=RetryPolicy(max_attempts=4))
        committer = GroupCommitter(server, max_batch=1, max_delay_ms=0.0)
        # Force exactly one race: the first execute_once sees a version
        # bump injected underneath it.
        original = server.execute_once
        raced = {"count": 0}

        def racing_once(user, operation, strict=False, deadline=None,
                        idempotency_key=None):
            if raced["count"] == 0:
                raced["count"] += 1
                from repro.errors import ConcurrentUpdateError

                raise ConcurrentUpdateError("simulated interleaved commit")
            return original(
                user, operation, strict, deadline,
                idempotency_key=idempotency_key,
            )

        server.execute_once = racing_once
        result = committer.commit("w1", append_script("eventually"))
        assert result.fully_applied
        assert raced["count"] == 1
        assert server.stats()["retries"] >= 1

    def test_retry_exhaustion_raises_with_the_last_race(self, wal_dir):
        db = editors_database()
        wal = WriteAheadLog(wal_dir, fsync="always")
        db.attach_wal(wal)
        wal.checkpoint(db)
        server = DatabaseServer(
            db, retry=RetryPolicy(max_attempts=2), sleep=lambda s: None
        )
        committer = GroupCommitter(server, max_batch=1, max_delay_ms=0.0)

        def always_races(user, operation, strict=False, deadline=None,
                         idempotency_key=None):
            from repro.errors import ConcurrentUpdateError

            raise ConcurrentUpdateError("permanent race")

        server.execute_once = always_races
        with pytest.raises(RetryExhausted) as info:
            committer.commit("w1", append_script("never"))
        assert info.value.attempts == 2
        assert server.stats()["retry_exhausted"] == 1


class TestValidation:
    def test_constructor_bounds(self, stack):
        _, _, server = stack
        with pytest.raises(ValueError):
            GroupCommitter(server, max_batch=0)
        with pytest.raises(ValueError):
            GroupCommitter(server, max_delay_ms=-1.0)

    def test_drive_refuses_followers(self, stack):
        _, _, server = stack
        committer = GroupCommitter(server, max_batch=4, max_delay_ms=50.0)
        leader = committer.submit("w1", append_script("a"))
        follower = committer.submit("w1", append_script("b"))
        with pytest.raises(ValueError):
            committer.drive(follower)
        committer.drive(leader)
