"""Randomized differential testing: formal Datalog vs procedural engine.

The paper validated its axioms with a Prolog prototype; these
hypothesis properties validate our procedural engine against a literal
Datalog transcription of the same axioms on random documents and
random policies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import FormalModel
from repro.security import (
    Privilege,
    SecureWriteExecutor,
    ViewBuilder,
)
from repro.xmltree import element
from repro.xupdate import Append, Remove, Rename, UpdateContent

from tests.strategies import (
    RULE_PATHS,
    build_policy,
    build_subjects,
    documents,
    policy_rules,
)

BUILDER = ViewBuilder()
EXECUTOR = SecureWriteExecutor()
USERS = st.sampled_from(["u1", "u2"])


@given(documents(max_depth=2), policy_rules(max_rules=6), USERS)
@settings(max_examples=50, deadline=None)
def test_perm_differential(doc, rules, user):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    fm = FormalModel(doc, subjects, policy)
    table = BUILDER.resolver.resolve(doc, policy, user)
    procedural = {
        (nid, priv.value)
        for priv in Privilege
        for nid in table.nodes_with(priv)
    }
    assert fm.derive_perm(user) == procedural


@given(documents(max_depth=2), policy_rules(max_rules=6), USERS)
@settings(max_examples=50, deadline=None)
def test_view_differential(doc, rules, user):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    fm = FormalModel(doc, subjects, policy)
    procedural = BUILDER.build(doc, policy, user).facts()
    assert fm.derive_view(user) == procedural


OPERATIONS = st.sampled_from(
    [
        lambda path: Rename(path, "renamed"),
        lambda path: UpdateContent(path, "updated"),
        lambda path: Remove(path),
        lambda path: Append(path, element("fresh", "leaf")),
    ]
)


@given(
    documents(max_depth=2),
    policy_rules(max_rules=5),
    USERS,
    st.sampled_from(RULE_PATHS),
    OPERATIONS,
)
@settings(max_examples=50, deadline=None)
def test_dbnew_differential(doc, rules, user, path, make_op):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    fm = FormalModel(doc, subjects, policy)
    op = make_op(path)
    view = BUILDER.build(doc, policy, user)
    procedural = EXECUTOR.apply(view, op).document.facts()
    assert fm.derive_dbnew(user, op) == procedural
