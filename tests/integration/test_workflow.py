"""Multi-session workflow and cross-scheme consistency tests."""

import pytest

from repro.core import hospital_database
from repro.security import AccessDenied
from repro.xmltree import (
    LSDXScheme,
    PersistentDeweyScheme,
    RenumberingScheme,
    element,
    serialize,
    text,
)
from repro.xupdate import Append, Remove, Rename, UpdateContent


class TestAdmissionWorkflow:
    """The full hospital day of examples/hospital_workflow.py."""

    def test_end_to_end(self):
        db = hospital_database()
        secretary = db.login("beaufort")
        doctor = db.login("laporte")

        # Admission.
        secretary.execute(
            Append(
                "/patients",
                element("albert", element("service", "cardiology"),
                        element("diagnosis")),
            ),
            strict=True,
        )
        # Name fix.
        secretary.execute(Rename("/patients/albert", "adalbert"), strict=True)
        # Diagnosis posed by the doctor.
        doctor.execute(
            Append("/patients/adalbert/diagnosis", text("angina")),
            strict=True,
        )
        # Revised.
        doctor.execute(
            UpdateContent("/patients/adalbert/diagnosis", "pericarditis"),
            strict=True,
        )
        # The secretary sees the new record but not its content.
        tree = secretary.read_tree()
        assert "/adalbert" in tree
        assert "pericarditis" not in tree
        assert "RESTRICTED" in tree
        # The doctor sees everything.
        assert "pericarditis" in doctor.read_tree()
        # Retraction.
        doctor.execute(
            Remove("/patients/adalbert/diagnosis/text()"), strict=True
        )
        assert "pericarditis" not in doctor.read_tree()

    def test_denied_step_raises_and_commits_nothing(self):
        db = hospital_database()
        secretary = db.login("beaufort")
        with pytest.raises(AccessDenied):
            secretary.execute(
                UpdateContent("/patients/franck/diagnosis", "x"),
                strict=True,
            )
        assert db.version == 0


class TestNumberingSchemeIndependence:
    """The model's behaviour is identical under all three schemes."""

    @pytest.mark.parametrize(
        "scheme_factory",
        [PersistentDeweyScheme, LSDXScheme, RenumberingScheme],
        ids=["dewey", "lsdx", "renumbering"],
    )
    def test_views_and_writes_agree(self, scheme_factory):
        db = hospital_database(scheme=scheme_factory())
        secretary = db.login("beaufort")
        assert "RESTRICTED" in secretary.read_tree()
        secretary.execute(
            Append("/patients", element("albert", element("diagnosis"))),
            strict=True,
        )
        doctor = db.login("laporte")
        doctor.execute(
            Append("/patients/albert/diagnosis", text("angina")),
            strict=True,
        )
        out = serialize(db.document)
        assert "<albert><diagnosis>angina</diagnosis></albert>" in out

    def test_serialized_views_identical_across_schemes(self):
        outputs = set()
        for factory in (PersistentDeweyScheme, LSDXScheme, RenumberingScheme):
            db = hospital_database(scheme=factory())
            outputs.add(db.login("richard").read_xml())
        assert len(outputs) == 1


class TestConcurrentSessions:
    def test_two_sessions_interleave(self):
        db = hospital_database()
        doctor = db.login("laporte")
        secretary = db.login("beaufort")
        doctor.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        secretary.execute(Rename("/patients/franck", "francois"))
        doctor_view = doctor.read_xml()
        assert "<francois>" in doctor_view
        assert "flu" in doctor_view

    def test_stale_view_refreshes_on_next_access(self):
        db = hospital_database()
        secretary = db.login("beaufort")
        first = secretary.view()
        db.login("laporte").execute(
            UpdateContent("/patients/franck/diagnosis", "flu")
        )
        second = secretary.view()
        assert first is not second
