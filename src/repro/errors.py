"""Structured error taxonomy for the whole library.

Every failure the library can signal descends from :class:`ReproError`,
so callers can catch one base class instead of an ad-hoc mix of
``ValueError`` / ``PermissionError`` / bare ``Exception`` subclasses.
Domain modules keep defining their own error types (``PolicyError``,
``SubjectError``, ``XUpdateError``, ``AccessDenied``, ...) but parent
them here; the storage errors live here outright because both
:mod:`repro.storage` and :mod:`repro.cli` need them without importing
each other.

The taxonomy::

    ReproError
    ├── UpdateAborted          (a script rolled back mid-way)
    ├── ConcurrentUpdateError  (optimistic-concurrency commit conflict)
    ├── StorageError           (malformed/unsupported database file)
    │   └── StorageCorrupt     (file damaged beyond strict loading)
    ├── InjectedFault          (repro.testing.faults: simulated crash)
    ├── PolicyError            (repro.security.policy)
    ├── SubjectError           (repro.security.subjects)
    ├── XUpdateError           (repro.xupdate.executor)
    └── AccessDenied           (repro.security.write)

Pre-existing exception lineages are preserved for compatibility:
``StorageError`` and ``PolicyError`` remain ``ValueError`` subclasses,
``AccessDenied`` remains a ``PermissionError``.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "UpdateAborted",
    "ConcurrentUpdateError",
    "StorageError",
    "StorageCorrupt",
]


class ReproError(Exception):
    """Root of the library's error taxonomy."""


class UpdateAborted(ReproError):
    """A multi-operation update script failed and was rolled back.

    The theory-replacement semantics (formulae (2)-(9), axioms 18-25) is
    all-or-nothing: when any operation of a script fails, no part of the
    script reaches the database.  This error reports *which* operation
    failed and carries the last consistent intermediate document (the
    savepoint after the preceding operation) for diagnosis -- the
    savepoint is never installed anywhere.

    Attributes:
        operation_index: zero-based index of the failing operation.
        operation: the failing operation's class name (``"Rename"``...).
        completed: number of operations that had fully applied before
            the failure; all of them were rolled back.
        savepoint: the intermediate document after ``completed``
            operations, or None when unavailable.
    """

    def __init__(
        self,
        message: str,
        *,
        operation_index: Optional[int] = None,
        operation: Optional[str] = None,
        completed: int = 0,
        savepoint: Any = None,
    ) -> None:
        super().__init__(message)
        self.operation_index = operation_index
        self.operation = operation
        self.completed = completed
        self.savepoint = savepoint


class ConcurrentUpdateError(ReproError):
    """A transaction tried to commit over a concurrent commit.

    Raised by :class:`repro.security.database.Transaction` when the
    database version moved between ``begin`` and ``commit`` -- the
    optimistic-concurrency guard that keeps two interleaved scripts from
    silently clobbering each other.
    """


class StorageError(ReproError, ValueError):
    """Malformed or unsupported database file."""


class StorageCorrupt(StorageError):
    """The file is damaged beyond what strict loading accepts.

    Lenient loading (:func:`repro.storage.load_from_file` with
    ``mode="lenient"``) may still recover the readable parts; this error
    is raised when even that is impossible (e.g. the XML itself is not
    well-formed).
    """
