"""Unsecured XUpdate semantics: the paper's formulae (2)-(9).

The TestPaperExamples class reproduces the four worked examples of
section 3.4 and asserts the exact derived fact sets the paper prints.
"""

import pytest

from repro.xmltree import element, parse_xml, serialize, text
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateError,
    XUpdateExecutor,
)

MEDICAL = (
    "<patients>"
    "<franck><service>otolarynology</service>"
    "<diagnosis>tonsillitis</diagnosis></franck>"
    "<robert><service>pneumology</service>"
    "<diagnosis>pneumonia</diagnosis></robert>"
    "</patients>"
)


@pytest.fixture
def doc():
    return parse_xml(MEDICAL)


@pytest.fixture
def ex():
    return XUpdateExecutor()


def label_multiset(doc):
    labels = [doc.label(n) for n in doc.all_nodes()]
    return sorted(labels)


class TestPaperExamples:
    """Section 3.4's four examples, checked against the printed F sets."""

    def test_e3_rename_all_service_to_department(self, doc, ex):
        result = ex.apply(doc, Rename("//service", "department"))
        new = result.document
        assert label_multiset(new) == sorted(
            [
                "/",
                "patients",
                "franck",
                "department",
                "otolarynology",
                "diagnosis",
                "tonsillitis",
                "robert",
                "department",
                "pneumology",
                "diagnosis",
                "pneumonia",
            ]
        )
        # Identifiers of untouched nodes are unchanged (formula 2).
        assert new.facts() - doc.facts() == {
            (n, "department")
            for (n, v) in doc.facts()
            if v == "service"
        }

    def test_e4_update_diagnosis_to_pharyngitis(self, doc, ex):
        result = ex.apply(
            doc, UpdateContent("/patients/franck/diagnosis", "pharyngitis")
        )
        new = result.document
        assert "tonsillitis" not in label_multiset(new)
        assert "pharyngitis" in label_multiset(new)
        # Only the text child changed (formulae 4-5).
        changed = {(n, v) for (n, v) in new.facts() if (n, v) not in doc.facts()}
        assert len(changed) == 1
        ((nid, label),) = changed
        assert label == "pharyngitis"

    def test_e5_append_new_medical_record(self, doc, ex):
        tree = element(
            "albert", element("service", "cardiology"), element("diagnosis")
        )
        result = ex.apply(doc, Append("/patients", tree))
        new = result.document
        # Formula 6: everything old is still there...
        assert doc.facts() <= new.facts()
        # ...plus the four inserted nodes with fresh numbers (formula 7).
        added = new.facts() - doc.facts()
        assert sorted(v for (_n, v) in added) == [
            "albert",
            "cardiology",
            "diagnosis",
            "service",
        ]
        # Derived geometry matches the paper's example: the inserted
        # record is the *last* subtree, so robert precedes albert
        # (the paper derives preceding_sibling(n7, n1'')).
        albert = [n for (n, v) in added if v == "albert"][0]
        robert = [n for (n, v) in doc.facts() if v == "robert"][0]
        assert robert in new.preceding_siblings(albert)
        assert new.children(new.root)[-1] == albert

    def test_e6_remove_franck_diagnosis(self, doc, ex):
        result = ex.apply(doc, Remove("/patients/franck/diagnosis"))
        new = result.document
        gone = doc.facts() - new.facts()
        assert sorted(v for (_n, v) in gone) == ["diagnosis", "tonsillitis"]
        assert new.facts() <= doc.facts()


class TestRename:
    def test_rename_multiple_targets(self, doc, ex):
        result = ex.apply(doc, Rename("//diagnosis", "dx"))
        assert len(result.affected) == 2

    def test_rename_no_match_is_noop(self, doc, ex):
        result = ex.apply(doc, Rename("//nothing", "x"))
        assert result.affected == []
        assert result.document.facts() == doc.facts()

    def test_rename_document_node_skipped(self, doc, ex):
        result = ex.apply(doc, Rename("/", "x"))
        assert result.affected == []


class TestUpdateContent:
    def test_update_relabels_children_only(self, doc, ex):
        result = ex.apply(doc, UpdateContent("//service", "surgery"))
        new = result.document
        # Both text children updated; element labels intact.
        assert label_multiset(new).count("service") == 2
        assert label_multiset(new).count("surgery") == 2

    def test_update_childless_target_is_noop(self, ex):
        doc = parse_xml("<r><empty/></r>")
        result = ex.apply(doc, UpdateContent("//empty", "v"))
        assert result.affected == []


class TestInsertions:
    def test_insert_before(self, doc, ex):
        result = ex.apply(doc, InsertBefore("//robert", element("zoe")))
        new = result.document
        labels = [new.label(c) for c in new.children(new.root)]
        assert labels == ["franck", "zoe", "robert"]

    def test_insert_after(self, doc, ex):
        result = ex.apply(doc, InsertAfter("//franck", element("zoe")))
        new = result.document
        labels = [new.label(c) for c in new.children(new.root)]
        assert labels == ["franck", "zoe", "robert"]

    def test_insert_at_every_match(self, doc, ex):
        result = ex.apply(doc, InsertAfter("//service", element("note")))
        assert len(result.affected) == 2

    def test_insert_sibling_of_document_rejected(self, doc, ex):
        with pytest.raises(XUpdateError):
            ex.apply(doc, InsertBefore("/", element("x")))

    def test_append_keeps_existing_ids(self, doc, ex):
        """The persistence property across an update (section 3.1)."""
        before = {n for (n, _v) in doc.facts()}
        result = ex.apply(doc, Append("/patients", element("x")))
        after = {n for (n, _v) in result.document.facts()}
        assert before <= after

    def test_append_text_tree(self, doc, ex):
        result = ex.apply(
            doc, Append("/patients/franck/service", text("extra"))
        )
        new = result.document
        franck = new.children(new.root)[0]
        service = new.children(franck)[0]
        assert new.string_value(service) == "otolarynologyextra"


class TestRemove:
    def test_remove_subtree_entirely(self, doc, ex):
        result = ex.apply(doc, Remove("//franck"))
        new = result.document
        assert len(new.children(new.root)) == 1
        assert "tonsillitis" not in label_multiset(new)

    def test_remove_nested_targets_processed_once(self, doc, ex):
        # //franck selects the parent, //franck/diagnosis a descendant;
        # removing the parent swallows the child (the undeleted fixpoint).
        result = ex.apply(
            doc, Remove("//franck | //franck/diagnosis")
        )
        assert len(result.affected) == 1

    def test_remove_document_rejected(self, doc, ex):
        with pytest.raises(XUpdateError):
            ex.apply(doc, Remove("/"))


class TestScriptsAndPurity:
    def test_apply_never_mutates_input(self, doc, ex):
        before = doc.facts()
        ex.apply(doc, Rename("//service", "x"))
        ex.apply(doc, Remove("//franck"))
        ex.apply(doc, Append("/patients", element("y")))
        assert doc.facts() == before

    def test_apply_in_place_mutates(self, doc, ex):
        ex.apply_in_place(doc, Rename("//service", "x"))
        assert "x" in label_multiset(doc)

    def test_script_applies_in_order(self, doc, ex):
        script = UpdateScript(
            (
                Rename("//service", "department"),
                Remove("//department"),  # sees the rename's result
            )
        )
        result = ex.apply(doc, script)
        labels = label_multiset(result.document)
        assert "service" not in labels
        assert "department" not in labels

    def test_script_merges_reports(self, doc, ex):
        script = UpdateScript(
            (Rename("//service", "a"), Rename("//diagnosis", "b"))
        )
        result = ex.apply(doc, script)
        assert len(result.affected) == 4

    def test_unknown_operation_rejected(self, doc, ex):
        class Weird:
            path = "/"

        with pytest.raises(XUpdateError):
            ex.apply(doc, Weird())  # type: ignore[arg-type]
