"""The formal transcription of axioms 11-25 on the paper's example."""

import pytest

from repro.formal import FormalModel
from repro.security import (
    PermissionResolver,
    Privilege,
    SecureWriteExecutor,
    ViewBuilder,
)
from repro.xmltree import RESTRICTED, element
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
)


@pytest.fixture
def fm(doc, subjects, policy):
    return FormalModel(doc, subjects, policy)


class TestIsaClosure:
    def test_matches_procedural_closure(self, fm, subjects):
        assert fm.derive_isa() == set(subjects.closure_facts())

    def test_reflexivity_axiom_11(self, fm, subjects):
        closure = fm.derive_isa()
        for s in subjects.subjects:
            assert (s, s) in closure

    def test_transitivity_axiom_12(self, fm):
        closure = fm.derive_isa()
        assert ("laporte", "staff") in closure


class TestPermAxiom14:
    @pytest.mark.parametrize(
        "user", ["beaufort", "laporte", "richard", "robert", "franck"]
    )
    def test_matches_procedural_for_every_user(
        self, fm, doc, policy, user, resolver
    ):
        table = resolver.resolve(doc, policy, user)
        procedural = {
            (nid, priv.value)
            for priv in Privilege
            for nid in table.nodes_with(priv)
        }
        assert fm.derive_perm(user) == procedural

    def test_secretary_denied_diagnosis_read(self, fm, doc):
        from repro.xpath import XPathEngine

        text_node = XPathEngine().select(
            doc, "/patients/franck/diagnosis/text()"
        )[0]
        perm = fm.derive_perm("beaufort")
        assert (text_node, "read") not in perm
        assert (text_node, "position") in perm


class TestViewAxioms15To17:
    @pytest.mark.parametrize(
        "user", ["beaufort", "laporte", "richard", "robert", "franck"]
    )
    def test_matches_procedural_view(
        self, fm, doc, policy, user, view_builder
    ):
        procedural = view_builder.build(doc, policy, user).facts()
        assert fm.derive_view(user) == procedural

    def test_secretary_sees_restricted_labels(self, fm):
        view = fm.derive_view("beaufort")
        labels = {v for (_n, v) in view}
        assert RESTRICTED in labels
        assert "tonsillitis" not in labels

    def test_doctor_sees_everything(self, fm, doc):
        assert fm.derive_view("laporte") == doc.facts()


class TestWriteAxioms18To25:
    CASES = [
        # (user, operation) pairs exercising each axiom group.
        ("laporte", UpdateContent("/patients/franck/diagnosis", "flu")),
        ("beaufort", UpdateContent("/patients/franck/diagnosis", "flu")),
        ("beaufort", Rename("/patients/franck", "francois")),
        ("laporte", Rename("/patients/franck", "francois")),
        ("laporte", Remove("/patients/franck/diagnosis/text()")),
        ("beaufort", Remove("/patients/franck")),
        (
            "beaufort",
            Append("/patients", element("albert", element("diagnosis"))),
        ),
        ("laporte", Append("//diagnosis", element("note"))),
        ("beaufort", InsertBefore("/patients/robert", element("karl"))),
        ("beaufort", InsertAfter("/patients/franck", element("karl"))),
    ]

    @pytest.mark.parametrize("user,op", CASES)
    def test_dbnew_matches_procedural(
        self, fm, doc, policy, user, op, view_builder
    ):
        view = view_builder.build(doc, policy, user)
        procedural = SecureWriteExecutor().apply(view, op).document.facts()
        assert fm.derive_dbnew(user, op) == procedural

    def test_rename_restricted_blocked_formally(
        self, doc, subjects, policy, view_builder
    ):
        """The RESTRICTED-rename prose rule in the formal layer."""
        fm = FormalModel(doc, subjects, policy)
        # Epidemiologist richard: patient names are RESTRICTED but he
        # has no update privilege anyway, so grant him one to isolate
        # the RESTRICTED check.
        policy.grant("update", "/patients/*", "epidemiologist")
        fm2 = FormalModel(doc, subjects, policy)
        op = Rename("/patients/*", "x")
        view = view_builder.build(doc, policy, "richard")
        procedural = SecureWriteExecutor().apply(view, op)
        formal = fm2.derive_dbnew("richard", op)
        assert procedural.affected == []  # all targets RESTRICTED
        assert formal == doc.facts()  # formally unchanged too
