"""E27 (added): what integrity scrubbing and anti-entropy repair cost.

Three questions the integrity subsystem raises:

**Scrub throughput.**  A scrubber that cannot outpace the write rate
never finishes a pass, so the first row set measures full-pass
verification (every record CRC, every checkpoint header; deep mode
also re-hashes snapshot bodies) across growing log sizes, reported in
MB/s.

**Repair time vs corruption position.**  Anti-entropy repair copies
the whole healthy peer log, so its cost should be a function of log
size, *not* of where the rot landed.  Rows flip one bit early, midway
and late in the retained log and time quarantine + repair + verified
recovery, asserting byte-identical convergence every time.

**Background-scrub overhead on serving.**  The scrubber holds no
database lock across I/O, so a continuously scrubbing primary should
serve writes at (close to) the undisturbed latency.  Rows compare p50
and p99 commit latency with the background pass off and on.  No hard
timing bar -- the numbers are the deliverable; the asserted invariant
is that the scrubber really ran (passes advanced) and stayed clean.

The smoke variant (``-k smoke``) runs the same invariants at toy
sizes with no timing, so the lane stays meaningful on loaded CI
machines.
"""

import os
import shutil
import time

from conftest import print_series, synthetic_hospital

from repro.replication import repair_from_peer
from repro.scrub import Scrubber, scrub_directory
from repro.serving import DatabaseServer
from repro.storage import state_digest
from repro.testing.diskfaults import flip_bit
from repro.wal import WriteAheadLog, recover
from repro.xupdate import UpdateContent

LOG_RECORDS = (500, 2000, 8000)
PAYLOAD = "x" * 160  # ~200B records once framed
SERVE_OPS = 150


def build_log(tmp_path, label, records, segment_bytes=256 << 10):
    """A closed log directory of ``records`` framed filler records --
    CRC-checkable bulk for the throughput rows (scrub verifies frames,
    it never replays them)."""
    wal_dir = str(tmp_path / f"{label}.wal")
    db = synthetic_hospital(4)
    wal = WriteAheadLog(wal_dir, fsync="os", segment_bytes=segment_bytes)
    db.attach_wal(wal)
    wal.checkpoint(db)
    for index in range(records):
        wal.append({"kind": "noop", "i": index, "data": PAYLOAD})
    db.detach_wal().close()
    return wal_dir


def build_commit_log(tmp_path, label, commits, segment_bytes=256 << 10):
    """A closed log directory of real, replayable commit records (the
    repair rows recover what they repaired, so filler won't do)."""
    wal_dir = str(tmp_path / f"{label}.wal")
    db = synthetic_hospital(8)
    wal = WriteAheadLog(wal_dir, fsync="os", segment_bytes=segment_bytes)
    db.attach_wal(wal)
    wal.checkpoint(db)
    for index in range(commits):
        db.admin_update(
            UpdateContent(
                f"//patient{index % 8:05d}/diagnosis", f"angina-{index}"
            )
        )
    db.detach_wal().close()
    return wal_dir


def log_bytes(wal_dir):
    return sum(
        os.path.getsize(os.path.join(wal_dir, name))
        for name in os.listdir(wal_dir)
        if name.startswith("segment-")
    )


def test_e27_scrub_throughput(tmp_path):
    rows = [("records", "log MB", "shallow ms", "shallow MB/s", "deep ms")]
    for records in LOG_RECORDS:
        wal_dir = build_log(tmp_path, f"tp{records}", records)
        size_mb = log_bytes(wal_dir) / (1 << 20)

        started = time.perf_counter()
        report = scrub_directory(wal_dir)
        shallow = time.perf_counter() - started
        assert report.clean and report.pass_completed
        assert report.records_verified >= records

        started = time.perf_counter()
        deep = scrub_directory(wal_dir, deep=True)
        deep_elapsed = time.perf_counter() - started
        assert deep.clean

        rows.append((
            records,
            f"{size_mb:.2f}",
            f"{shallow * 1000:.2f}",
            f"{size_mb / shallow:.1f}",
            f"{deep_elapsed * 1000:.2f}",
        ))
        shutil.rmtree(wal_dir)
    print_series("E27 scrub throughput vs log size", rows)


def test_e27_repair_time_vs_corruption_position(tmp_path):
    rows = [("rot position", "segments", "copied KB", "repair ms")]
    for position, fraction in (("early", 0.05), ("middle", 0.5), ("late", 0.9)):
        wal_dir = build_commit_log(
            tmp_path, f"pos{position}", 400, segment_bytes=16 << 10
        )
        peer_dir = wal_dir + ".peer"
        shutil.copytree(wal_dir, peer_dir)
        segments = sorted(
            os.path.join(wal_dir, n)
            for n in os.listdir(wal_dir)
            if n.startswith("segment-") and n.endswith(".wal")
        )
        victim = segments[int(fraction * (len(segments) - 1))]
        flip_bit(victim, os.path.getsize(victim) // 2)

        started = time.perf_counter()
        scrubbed = scrub_directory(wal_dir)
        assert scrubbed.quarantined
        report = repair_from_peer(wal_dir, peer_dir)
        elapsed = time.perf_counter() - started

        repaired = recover(wal_dir, strict=True)
        assert repaired.report.clean
        db = repaired.database
        assert state_digest(db.document, db.subjects, db.policy) == report.digest
        rows.append((
            position,
            len(segments),
            f"{report.bytes_copied // 1024}",
            f"{elapsed * 1000:.2f}",
        ))
        shutil.rmtree(wal_dir)
        shutil.rmtree(peer_dir)
    print_series("E27 repair time vs corruption position", rows)


def serve_latencies(tmp_path, label, scrub_interval):
    db = synthetic_hospital(20)
    wal_dir = str(tmp_path / f"{label}.wal")
    wal = WriteAheadLog(wal_dir, fsync="os")
    server = DatabaseServer(
        db,
        wal=wal,
        scrub_interval=scrub_interval,
        scrub_budget=64 << 10,
    )
    wal.checkpoint(db)
    samples = []
    try:
        for index in range(SERVE_OPS):
            started = time.perf_counter()
            server.execute(
                "laporte",
                UpdateContent(
                    f"//patient{index % 20:05d}/diagnosis", f"op-{index}"
                ),
            )
            samples.append(time.perf_counter() - started)
    finally:
        server.stop_scrub()
    scrub_stats = server.stats()["scrub"]
    db.detach_wal().close()
    samples.sort()
    return samples, scrub_stats


def test_e27_background_scrub_overhead(tmp_path):
    rows = [("background scrub", "ops", "p50 ms", "p99 ms", "scrub steps")]
    for label, interval in (("off", None), ("on", 0.001)):
        samples, scrub_stats = serve_latencies(tmp_path, label, interval)
        if interval is not None:
            # the pass really ran alongside the writes, and stayed clean
            assert scrub_stats["steps"] > 0
            assert scrub_stats["segments_quarantined"] == 0
        rows.append((
            label,
            len(samples),
            f"{samples[len(samples) // 2] * 1000:.3f}",
            f"{samples[int(len(samples) * 0.99)] * 1000:.3f}",
            scrub_stats["steps"] if scrub_stats else 0,
        ))
    print_series("E27 background scrub overhead on serving", rows)


def test_e27_smoke_scrub_and_repair(tmp_path):
    """Counter-only smoke: scrub, quarantine, repair, rejoin -- no bars."""
    wal_dir = build_commit_log(tmp_path, "smoke", 20, segment_bytes=2 << 10)
    peer_dir = wal_dir + ".peer"
    shutil.copytree(wal_dir, peer_dir)
    assert scrub_directory(wal_dir, deep=True).clean

    segments = sorted(
        os.path.join(wal_dir, n)
        for n in os.listdir(wal_dir)
        if n.startswith("segment-") and n.endswith(".wal")
    )
    flip_bit(segments[len(segments) // 2], 30)
    report = scrub_directory(wal_dir)
    assert report.quarantined

    repair_from_peer(wal_dir, peer_dir)
    assert Scrubber(wal_dir, deep=True).run().clean
    assert recover(wal_dir, strict=True).report.clean
