"""Secure write access controls: XUpdate on views (paper section 4.4.2).

The paper's central fix over SQL and over its predecessor model [10]:
a write operation runs with the privileges *and the limitations* of the
submitting user, so the PATH parameter selecting nodes to update is
evaluated **on the user's view**, never on the source (section 2.2).
Only the selection step uses the view; the matched nodes are then
located in the source by their shared identifiers and mutated there.

Per-operation requirements (axioms 18-25):

===============  =============================================
operation        requirement on each node n selected by PATH
===============  =============================================
rename           ``update`` on n, and n not shown RESTRICTED
update           ``update`` **and** ``read`` on each child of n
                 *in the view*
append           ``insert`` on n
insert-before    ``insert`` on the parent of n
insert-after     ``insert`` on the parent of n
remove           ``delete`` on n (invisible descendants are
                 deleted silently: confidentiality wins over
                 integrity, the paper's explicit choice)
===============  =============================================

An operation may succeed on some selected nodes and fail on others; the
result reports both sets.  ``strict=True`` turns any denial into an
:class:`AccessDenied` error instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import DeadlineExceeded, ReproError, UpdateAborted
from ..testing.faults import kill_point
from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xmltree.node import NodeKind
from ..xupdate.changeset import ChangeSet
from ..xupdate.executor import UpdateResult, XUpdateExecutor
from ..xupdate.operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateOperation,
)
from .audit import AuditLog
from .privileges import Privilege
from .view import View

__all__ = ["AccessDenied", "Denial", "SecureUpdateResult", "SecureWriteExecutor"]


class AccessDenied(ReproError, PermissionError):
    """Raised in strict mode when an operation is (partly) denied."""

    def __init__(self, denials: Sequence["Denial"]) -> None:
        lines = "; ".join(str(d) for d in denials)
        super().__init__(f"access denied: {lines}")
        self.denials = list(denials)


@dataclass(frozen=True)
class Denial:
    """One refused target: which node, which privilege, and why."""

    node: NodeId
    privilege: Privilege
    reason: str

    def __str__(self) -> str:
        return f"{self.reason} (needs {self.privilege} on {self.node!r})"


@dataclass
class SecureUpdateResult:
    """Outcome of one access-controlled operation or script.

    Attributes:
        document: the new source document (``dbnew``).
        selected: nodes the PATH matched *on the view*.
        affected: source nodes actually modified/created/removed.
        denials: selected nodes refused, with reasons.
        changes: the structural delta of the applied mutations, used by
            the serving layer for incremental view maintenance.
    """

    document: XMLDocument
    selected: List[NodeId] = field(default_factory=list)
    affected: List[NodeId] = field(default_factory=list)
    denials: List[Denial] = field(default_factory=list)
    changes: ChangeSet = field(default_factory=ChangeSet)

    @property
    def fully_applied(self) -> bool:
        """True when no selected node was refused."""
        return not self.denials

    def merge(self, other: "SecureUpdateResult") -> "SecureUpdateResult":
        """Fold a later operation's result into a script-level result."""
        return SecureUpdateResult(
            document=other.document,
            selected=self.selected + other.selected,
            affected=self.affected + other.affected,
            denials=self.denials + other.denials,
            changes=self.changes.merge(other.changes),
        )


class SecureWriteExecutor:
    """Applies XUpdate operations under the paper's write access controls.

    Args:
        executor: the unsecured executor providing the tree-mutation
            primitives and the XPath engine; a default is built if
            omitted.
        audit: optional audit log receiving one record per decision.
        resolver: optional
            :class:`~repro.security.perm.PermissionResolver` whose
            static NFA fast path (and stats counters) answer privilege
            checks; without one the shared static deciders are used
            directly.  Either way the table in ``view.permissions`` is
            the fallback for out-of-fragment privilege lanes.
    """

    def __init__(
        self,
        executor: Optional[XUpdateExecutor] = None,
        audit: Optional[AuditLog] = None,
        resolver=None,
    ) -> None:
        from ..xpath.engine import XPathEngine

        self._executor = (
            executor
            if executor is not None
            else XUpdateExecutor(
                XPathEngine(lone_variable_name_test=True, star_matches_text=True)
            )
        )
        self._audit = audit
        self._resolver = resolver

    @property
    def executor(self) -> XUpdateExecutor:
        return self._executor

    def _privilege_checker(
        self, view: View
    ) -> Callable[[NodeId, Privilege], bool]:
        """The ``perm`` oracle for one operation: static NFA membership
        on the source when the privilege lane is automata-eligible,
        the view's resolved table otherwise (same axiom-14 answer)."""
        source = view.source
        if self._resolver is not None:
            resolver = self._resolver

            def check(nid: NodeId, privilege: Privilege) -> bool:
                decision = resolver.holds_static(
                    source, view.policy, view.user, nid, privilege
                )
                if decision is not None:
                    return decision
                return view.permissions.holds(nid, privilege)

            return check
        from .static import decider_for

        decider = decider_for(
            view.policy,
            view.user,
            getattr(self._executor.engine, "star_matches_text", False),
        )

        def check(nid: NodeId, privilege: Privilege) -> bool:
            outcome = decider.decide(source, nid, privilege)
            if outcome is None:
                return view.permissions.holds(nid, privilege)
            return outcome[0]

        return check

    def apply(
        self,
        view: View,
        operation: "XUpdateOperation | UpdateScript",
        strict: bool = False,
        checkpoint: Optional[Callable[[], None]] = None,
    ) -> SecureUpdateResult:
        """Apply an operation on behalf of the view's user.

        The input source document is not mutated; the result carries the
        new source.  For scripts, each operation sees the view derived
        *before* the script -- callers wanting per-operation view refresh
        (the session layer does) should apply operations one at a time.

        Scripts are transactional: every operation applies to a fresh
        copy of the source, so a failure at any point -- a strict-mode
        denial, an internal error, or an injected fault at the
        ``before-op`` / ``after-op`` kill-points -- abandons the whole
        script with the pre-script theory untouched.  The abort (with
        how many completed operations were rolled back, and why) is
        recorded in the audit log.

        Args:
            view: the user's current view (selection context and
                privilege table).
            operation: one XUpdate operation or a script.
            strict: raise :class:`AccessDenied` on any denial.
            checkpoint: optional callable invoked before every
                operation; raising
                :class:`~repro.errors.DeadlineExceeded` from it aborts
                the script through the savepoint path (nothing
                applied, an ``abort`` audit record written) and
                re-raises with its own type -- the serving layer's
                per-request deadlines ride this hook.

        Raises:
            AccessDenied: strict mode, when any selected node is
                refused; for scripts, prior operations are rolled back.
            DeadlineExceeded: the checkpoint expired; prior operations
                are rolled back.
            UpdateAborted: when a script operation fails for any other
                reason.
        """
        if isinstance(operation, UpdateScript):
            result = SecureUpdateResult(document=view.source)
            current_view = view
            for index, op in enumerate(operation):
                op_name = type(op).__name__
                try:
                    if checkpoint is not None:
                        checkpoint()
                    kill_point(
                        "before-op", index=index, operation=op_name, secure=True
                    )
                    step = self.apply(current_view, op, strict=strict)
                    kill_point(
                        "after-op", index=index, operation=op_name, secure=True
                    )
                except AccessDenied as exc:
                    self._audit_abort(view, op, index, f"denied: {exc}")
                    raise
                except DeadlineExceeded as exc:
                    self._audit_abort(view, op, index, f"deadline: {exc}")
                    raise
                except UpdateAborted:
                    raise
                except Exception as exc:
                    self._audit_abort(view, op, index, str(exc))
                    raise UpdateAborted(
                        f"script aborted at operation {index} ({op_name}): "
                        f"{exc}; {index} completed operation(s) rolled back",
                        operation_index=index,
                        operation=op_name,
                        completed=index,
                        savepoint=result.document,
                    ) from exc
                result = result.merge(step)
                current_view = _rebase_view(current_view, step.document)
            return result
        if checkpoint is not None:
            checkpoint()
        result = self._apply_one(view, operation)
        if strict and result.denials:
            raise AccessDenied(result.denials)
        return result

    def _audit_abort(self, view: View, operation, index: int, reason: str) -> None:
        """Record a script abort (rolled-back operations included)."""
        if self._audit is None:
            return
        self._audit.record_abort(
            user=view.user,
            operation=type(operation).__name__,
            path=operation.path,
            reason=reason,
            operation_index=index,
            rolled_back=index,
        )

    # ------------------------------------------------------------------
    # one operation
    # ------------------------------------------------------------------
    def _apply_one(
        self, view: View, operation: XUpdateOperation
    ) -> SecureUpdateResult:
        # Axioms 18-25: nodes to update are selected on the *view*,
        # through the engine's compiled-evaluator cache.
        selected = self._executor.select_path(
            view.doc, operation.path, {"USER": view.user}
        )
        new_doc = view.source.copy()
        holds = self._privilege_checker(view)
        affected: List[NodeId] = []
        denials: List[Denial] = []
        changes = ChangeSet()

        def decide(nid: NodeId, privilege: Privilege, ok: bool, reason: str) -> bool:
            if not ok:
                denials.append(Denial(nid, privilege, reason))
            if self._audit is not None:
                self._audit.record(
                    user=view.user,
                    operation=type(operation).__name__,
                    path=operation.path,
                    node=nid,
                    privilege=privilege,
                    allowed=ok,
                    reason=reason if not ok else "",
                )
            return ok

        if isinstance(operation, Rename):
            # Axioms 18-19 + the RESTRICTED-label prose rule.
            for nid in selected:
                if nid.is_document:
                    continue
                if not decide(
                    nid,
                    Privilege.UPDATE,
                    holds(nid, Privilege.UPDATE),
                    "rename requires the update privilege",
                ):
                    continue
                if not decide(
                    nid,
                    Privilege.READ,
                    not view.is_restricted(nid),
                    "RESTRICTED nodes cannot be renamed",
                ):
                    continue
                old_label = new_doc.label(nid)
                new_doc.relabel(nid, operation.new_name)
                changes.note_relabelled(nid, old_label, operation.new_name)
                affected.append(nid)
        elif isinstance(operation, UpdateContent):
            # Axioms 20-21: children *in the view* need update and read.
            for nid in selected:
                for child in view.doc.children(nid):
                    ok = decide(
                        child,
                        Privilege.UPDATE,
                        holds(child, Privilege.UPDATE),
                        "update requires the update privilege on the child",
                    ) and decide(
                        child,
                        Privilege.READ,
                        holds(child, Privilege.READ),
                        "update requires the read privilege on the child",
                    )
                    if ok:
                        old_label = new_doc.label(child)
                        new_doc.relabel(child, operation.new_value)
                        changes.note_relabelled(
                            child, old_label, operation.new_value
                        )
                        affected.append(child)
        elif isinstance(operation, Append):
            # Axiom 22: insert privilege on the selected node itself.
            for nid in selected:
                if decide(
                    nid,
                    Privilege.INSERT,
                    holds(nid, Privilege.INSERT),
                    "append requires the insert privilege",
                ):
                    root = operation.tree.attach(new_doc, nid)
                    changes.note_added(new_doc, root)
                    affected.append(root)
        elif isinstance(operation, (InsertBefore, InsertAfter)):
            # Axioms 23-24: insert privilege on the *parent* of the node.
            for nid in selected:
                if nid.is_document:
                    denials.append(
                        Denial(
                            nid,
                            Privilege.INSERT,
                            "the document node has no siblings",
                        )
                    )
                    continue
                if view.source.kind(nid) is NodeKind.ATTRIBUTE:
                    denials.append(
                        Denial(
                            nid,
                            Privilege.INSERT,
                            "attributes have no sibling order to insert into",
                        )
                    )
                    continue
                parent = nid.parent()
                if decide(
                    parent,
                    Privilege.INSERT,
                    holds(parent, Privilege.INSERT),
                    "sibling insertion requires the insert privilege on the parent",
                ):
                    if isinstance(operation, InsertBefore):
                        root = operation.tree.attach_before(new_doc, nid)
                    else:
                        root = operation.tree.attach_after(new_doc, nid)
                    changes.note_added(new_doc, root)
                    affected.append(root)
        elif isinstance(operation, Remove):
            # Axiom 25: delete privilege on the selected node; the whole
            # source subtree goes, invisible descendants included.
            for nid in sorted(selected, key=lambda n: n.level):
                if nid.is_document:
                    denials.append(
                        Denial(
                            nid, Privilege.DELETE, "the document node cannot be removed"
                        )
                    )
                    continue
                if decide(
                    nid,
                    Privilege.DELETE,
                    holds(nid, Privilege.DELETE),
                    "remove requires the delete privilege",
                ):
                    if nid in new_doc:
                        changes.note_removed(new_doc, nid)
                        new_doc.remove_subtree(nid)
                        affected.append(nid)
        else:
            raise TypeError(f"unknown operation {operation!r}")

        return SecureUpdateResult(
            document=new_doc,
            selected=list(selected),
            affected=affected,
            denials=denials,
            changes=changes,
        )


def _rebase_view(view: "View", new_source: XMLDocument):
    """Re-derive a view against an updated source under the same policy.

    The permission table must be re-derived, not copied: rule paths may
    now match different nodes (e.g. a freshly inserted diagnosis).
    Lazy views rebase to lazy views, materialized to materialized.
    """
    from .lazy import LazyView, build_lazy_view
    from .view import ViewBuilder

    if isinstance(view, LazyView):
        return build_lazy_view(new_source, view.policy, view.user)
    return ViewBuilder().build(new_source, view.policy, view.user)
