"""E14 (added, ablation): formal Datalog engine vs procedural engine.

The paper validated its axioms with a Prolog prototype and notes the
prototype's purpose "was simply to validate the correctness of the
axioms".  This ablation quantifies the gap the procedural engine buys:
both derive identical perm/view/dbnew facts (the differential tests
prove it), but at very different cost.

Rows: task | engine | time.  Expect the procedural engine to win by a
large constant factor; the formal engine is the executable spec.
"""

import pytest

from repro.core import hospital_database, hospital_policy, hospital_subjects, medical_document
from repro.formal import FormalModel
from repro.security import SecureWriteExecutor, ViewBuilder
from repro.xupdate import UpdateContent


@pytest.fixture(scope="module")
def parts():
    doc = medical_document()
    subjects = hospital_subjects()
    policy = hospital_policy(subjects)
    return doc, subjects, policy


def test_e14_view_procedural(benchmark, parts):
    doc, _subjects, policy = parts
    builder = ViewBuilder()

    def run():
        return builder.build(doc, policy, "beaufort").facts()

    facts = benchmark(run)
    assert facts


def test_e14_view_formal(benchmark, parts):
    doc, subjects, policy = parts
    fm = FormalModel(doc, subjects, policy)

    def run():
        return fm.derive_view("beaufort")

    facts = benchmark(run)
    # Same answer as the procedural engine (also checked in tests/).
    assert facts == ViewBuilder().build(doc, policy, "beaufort").facts()


def test_e14_dbnew_procedural(benchmark, parts):
    doc, _subjects, policy = parts
    builder = ViewBuilder()
    op = UpdateContent("/patients/franck/diagnosis", "flu")

    def run():
        view = builder.build(doc, policy, "laporte")
        return SecureWriteExecutor().apply(view, op).document.facts()

    facts = benchmark(run)
    assert any(v == "flu" for (_n, v) in facts)


def test_e14_dbnew_formal(benchmark, parts):
    doc, subjects, policy = parts
    fm = FormalModel(doc, subjects, policy)
    op = UpdateContent("/patients/franck/diagnosis", "flu")

    def run():
        return fm.derive_dbnew("laporte", op)

    facts = benchmark(run)
    assert any(v == "flu" for (_n, v) in facts)
