"""The replication convergence lane: seeded chaos schedules.

Each schedule interleaves primary writes, routed reads, replica polls,
checkpoints (with aggressive retention, so genuine stream gaps occur)
and random kill-point arming -- replicas die mid-replay, mid-stream
and mid-catch-up, some are replaced by fresh processes over the same
directory.  Same seed, same schedule.

The invariants, asserted on every seed:

1. **Convergence**: after the dust settles, every surviving replica
   stands at the primary's exact version with byte-identical
   serialized state (document, subjects, policy -- the same bytes a
   checkpoint snapshot would write).
2. **Read-your-writes, per request**: every routed read's served
   version is >= the caller's token at admission (checked against the
   router's decision trace, not just the final state).
3. **Diverged replicas never serve**: in the divergence schedules, no
   decision names a replica that was quarantined at the time.
"""

import random

import pytest

from repro.errors import ReplicaDiverged
from repro.replication import Replica, ReplicationRouter
from repro.serving import DatabaseServer
from repro.testing.faults import InjectedFault, faults
from repro.wal import WriteAheadLog
from repro.xmltree import NodeKind

from .conftest import USERS, append_script, editors_database, state_bytes

REPLICA_KILL_POINTS = (
    "stream-truncated",
    "replica-before-apply",
    "replica-mid-replay",
)
# Points reached inside recover(): arm these to kill a catch-up.
CATCHUP_KILL_POINTS = ("before-op", "after-op")


@pytest.fixture(autouse=True)
def clean_injector():
    faults.reset()
    yield
    faults.reset()


def build_stack(rng, base, retain=None):
    wal_dir = str(base / "db.wal")
    db = editors_database()
    wal = WriteAheadLog(
        wal_dir,
        retain_checkpoints=retain or rng.choice((1, 2)),
        segment_bytes=rng.choice((256, 4 << 20)),
    )
    db.attach_wal(wal)
    wal.checkpoint(db)
    server = DatabaseServer(db)
    replicas = [Replica(wal_dir) for _ in range(rng.choice((1, 2)))]
    router = ReplicationRouter(server, replicas, trace=True)
    return db, wal, wal_dir, router


def chaos_poll(rng, router, replica, wal_dir, kill_rate):
    """Poll one replica, maybe killing it at a random replication
    kill-point; a killed replica either retries in place (the same
    process survives the fault) or is replaced by a fresh process over
    the same directory (restart = catch-up from the log alone)."""
    armed = rng.random() < kill_rate
    if armed:
        faults.arm(rng.choice(REPLICA_KILL_POINTS), after=rng.randint(0, 2))
    try:
        replica.poll()
    except InjectedFault:
        if rng.random() < 0.5:
            router.remove_replica(replica)
            replica = Replica(wal_dir)
            router.add_replica(replica)
    finally:
        faults.disarm()
    return replica


def chaos_catch_up(rng, router, replica, wal_dir, kill_rate):
    """Force a full catch-up, maybe killing it mid-recovery; a killed
    catch-up is retried clean (crash-during-restart, restart again)."""
    if rng.random() < kill_rate:
        faults.arm(rng.choice(CATCHUP_KILL_POINTS), after=rng.randint(0, 3))
    try:
        replica.catch_up()
    except InjectedFault:
        faults.disarm()
        router.remove_replica(replica)
        replica = Replica(wal_dir)
        router.add_replica(replica)
    finally:
        faults.disarm()
    return replica


def run_schedule(seed, base, kill_rate):
    rng = random.Random(seed)
    db, wal, wal_dir, router = build_stack(rng, base)
    label = 0
    for _ in range(rng.randint(6, 12)):
        action = rng.choice(
            ("write", "write", "read", "read", "poll", "checkpoint",
             "catchup")
        )
        user = rng.choice(USERS)
        if action == "write":
            router.execute(user, append_script(f"s{seed}x{label}"))
            label += 1
        elif action == "read":
            assert router.read_xml(user) is not None
        elif action == "poll" and router.replicas:
            replica = rng.choice(router.replicas)
            chaos_poll(rng, router, replica, wal_dir, kill_rate)
        elif action == "checkpoint":
            wal.checkpoint(db)
        elif action == "catchup" and router.replicas:
            replica = rng.choice(router.replicas)
            chaos_catch_up(rng, router, replica, wal_dir, kill_rate)
    faults.reset()

    # -- invariant 1: every surviving replica converges exactly -------
    expected = state_bytes(db)
    for replica in router.replicas:
        replica.sync()
        assert not replica.quarantined, replica.stats()
        assert replica.version == db.version, (seed, replica.stats())
        assert state_bytes(replica.database) == expected, seed
        for user in USERS:
            assert (
                replica.read_xml(user) == db.login(user).read_xml()
            ), seed
    # -- invariant 2: read-your-writes held on every single read ------
    for decision in router.decisions:
        assert decision.served_version >= decision.token, (seed, decision)
    return router


@pytest.mark.replication
def test_convergence_200_seeded_schedules(tmp_path):
    for seed in range(200):
        run_schedule(seed, tmp_path / f"s{seed}", kill_rate=0.0)


@pytest.mark.replication
def test_convergence_with_replicas_killed_mid_replay(tmp_path):
    for seed in range(60):
        run_schedule(seed, tmp_path / f"k{seed}", kill_rate=0.35)


@pytest.mark.replication
def test_schedules_are_reproducible(tmp_path):
    first = run_schedule(7, tmp_path / "a", kill_rate=0.35)
    second = run_schedule(7, tmp_path / "b", kill_rate=0.35)
    assert [
        (d.user, d.token, d.served_version) for d in first.decisions
    ] == [(d.user, d.token, d.served_version) for d in second.decisions]
    assert first.stats()["writes_routed"] == second.stats()["writes_routed"]


def rot(replica):
    doc = replica.database.document
    doc.append_child(doc.root, NodeKind.ELEMENT, "rot")


@pytest.mark.replication
def test_diverged_replicas_never_serve_across_seeds(tmp_path):
    """Divergence chaos: one replica silently rots mid-schedule; after
    the next checkpoint ships, it must quarantine -- and from that
    moment no routed read may come from it, on any seed."""
    for seed in range(40):
        rng = random.Random(seed)
        # Generous retention: the victim's stream position is never
        # pruned, so a gap-driven re-seed cannot silently heal the rot
        # before a checkpoint digest gets to expose it.
        db, wal, wal_dir, router = build_stack(
            rng, tmp_path / f"d{seed}", retain=50
        )
        victim = rng.choice(router.replicas)
        label = 0
        rotted = quarantined_at = None
        for step in range(rng.randint(6, 10)):
            action = rng.choice(("write", "read", "poll", "checkpoint"))
            user = rng.choice(USERS)
            if action == "write":
                router.execute(user, append_script(f"d{seed}x{label}"))
                label += 1
            elif action == "read":
                router.read_xml(user)
            elif action == "poll":
                replica = rng.choice(router.replicas)
                try:
                    replica.poll()
                except ReplicaDiverged:
                    assert replica is victim
                    quarantined_at = len(router.decisions)
            elif action == "checkpoint":
                wal.checkpoint(db)
            if rotted is None and step >= 2:
                rot(victim)
                rotted = step
        # Ship one more checkpoint and drain: the rot cannot survive
        # undetected past a digest comparison.
        wal.checkpoint(db)
        try:
            victim.sync()
        except ReplicaDiverged:
            quarantined_at = (
                len(router.decisions)
                if quarantined_at is None
                else quarantined_at
            )
        assert victim.quarantined, seed
        # Invariant 3: nothing was served by the replica after it was
        # quarantined...
        for decision in router.decisions[quarantined_at or 0:]:
            assert decision.source != victim.replica_id, (seed, decision)
        # ...and reads still work, routed around the quarantine.
        assert router.read_xml("w1") is not None
        assert router.decisions[-1].source != victim.replica_id
        # Re-seeding brings it back, converged to the byte.
        victim.catch_up()
        victim.sync()
        assert state_bytes(victim.database) == state_bytes(db), seed


# ---------------------------------------------------------------------
# grouped writes: the WAL-shipping stream under group commit
# ---------------------------------------------------------------------

def run_grouped_schedule(seed, base, kill_rate):
    """The convergence schedule with its writes routed through a
    :class:`~repro.serving.GroupCommitter`: every write action is a
    burst of 1-4 *concurrent* commits batched into shared-fsync groups,
    so the replicas replay a stream whose appends were grouped.  Same
    invariants as :func:`run_schedule`; returns the primary's
    ``grouped_records`` count so callers can assert the groups really
    formed."""
    from repro.serving import GroupCommitter
    from repro.testing.faults import run_threads

    rng = random.Random(seed)
    db, wal, wal_dir, router = build_stack(rng, base)
    committer = GroupCommitter(router.primary, max_batch=4, max_delay_ms=3.0)
    label = 0
    for _ in range(rng.randint(6, 12)):
        action = rng.choice(
            ("write", "write", "read", "read", "poll", "checkpoint",
             "catchup")
        )
        if action == "write":
            # Pre-draw everything on the schedule's rng (the threads
            # must not consume seeded randomness).
            burst = rng.randint(1, 4)
            jobs = [
                (rng.choice(USERS), f"g{seed}x{label + i}")
                for i in range(burst)
            ]
            label += burst
            errors = run_threads(
                lambda i: committer.commit(
                    jobs[i][0], append_script(jobs[i][1])
                ),
                burst,
            )
            assert not any(errors), (seed, errors)
        elif action == "read":
            assert router.read_xml(rng.choice(USERS)) is not None
        elif action == "poll" and router.replicas:
            replica = rng.choice(router.replicas)
            chaos_poll(rng, router, replica, wal_dir, kill_rate)
        elif action == "checkpoint":
            wal.checkpoint(db)
        elif action == "catchup" and router.replicas:
            replica = rng.choice(router.replicas)
            chaos_catch_up(rng, router, replica, wal_dir, kill_rate)
    faults.reset()

    expected = state_bytes(db)
    for replica in router.replicas:
        replica.sync()
        assert not replica.quarantined, replica.stats()
        assert replica.version == db.version, (seed, replica.stats())
        assert state_bytes(replica.database) == expected, seed
        for user in USERS:
            assert (
                replica.read_xml(user) == db.login(user).read_xml()
            ), seed
    for decision in router.decisions:
        assert decision.served_version >= decision.token, (seed, decision)
    return router.primary.stats().get("grouped_records", 0)


@pytest.mark.replication
def test_convergence_with_grouped_writes(tmp_path):
    """Replicas converge byte-identically when the primary's commits
    ride group commit -- including schedules where replicas are killed
    mid-replay while grouped appends are in the stream."""
    grouped = 0
    for seed in range(30):
        grouped += run_grouped_schedule(
            seed, tmp_path / f"g{seed}", kill_rate=0.0
        )
    for seed in range(20):
        grouped += run_grouped_schedule(
            seed, tmp_path / f"gk{seed}", kill_rate=0.30
        )
    # The lane is about grouped streams: the schedules must actually
    # have formed multi-member groups somewhere.
    assert grouped > 0
