"""E11 (section 4.4.2): the six secure-write cases of the policy.

Regenerates: one row per XUpdate operation showing who may do what
under equation 13 (the paper's prose walk-through), timing each
access-controlled execution end to end (view + checks + mutation).
"""

import pytest

from repro.core import hospital_database
from repro.xmltree import element, text
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
)

#: (case id, user, operation, expected fully_applied, expected affected)
CASES = [
    ("doctor-updates-diagnosis", "laporte",
     UpdateContent("/patients/franck/diagnosis", "pharyngitis"), True, 1),
    ("secretary-updates-diagnosis-DENIED", "beaufort",
     UpdateContent("/patients/franck/diagnosis", "x"), False, 0),
    ("secretary-renames-patient", "beaufort",
     Rename("/patients/franck", "francois"), True, 1),
    ("doctor-renames-patient-DENIED", "laporte",
     Rename("/patients/franck", "francois"), False, 0),
    ("secretary-admits-patient", "beaufort",
     Append("/patients", element("albert", element("diagnosis"))), True, 1),
    ("doctor-poses-diagnosis", "laporte",
     Append("//diagnosis", text("note")), True, 2),
    ("secretary-insert-before-patient", "beaufort",
     InsertBefore("/patients/robert", element("karl")), True, 1),
    ("secretary-insert-after-patient", "beaufort",
     InsertAfter("/patients/robert", element("karl")), True, 1),
    ("doctor-deletes-diagnosis-content", "laporte",
     Remove("//diagnosis/text()"), True, 2),
    ("patient-writes-own-file-DENIED", "robert",
     UpdateContent("/patients/robert/diagnosis", "cured"), False, 0),
]


@pytest.mark.parametrize(
    "case,user,operation,applies,affected", CASES, ids=[c[0] for c in CASES]
)
def test_e11_write_matrix(benchmark, case, user, operation, applies, affected):
    def run():
        db = hospital_database()
        session = db.login(user)
        return session.execute(operation)

    result = benchmark(run)
    assert result.fully_applied == applies, case
    assert len(result.affected) == affected, case
