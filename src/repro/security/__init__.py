"""The paper's access control model (section 4): the core contribution.

Subject hierarchy, prioritized accept/deny policy, conflict resolution
(axiom 14), authorized views with RESTRICTED labels (axioms 15-17),
view-evaluated secure writes (axioms 18-25), sessions, audit, and the
:class:`SecureXMLDatabase` facade.  :mod:`repro.security.insecure`
provides the deliberately vulnerable source-evaluated semantics of
section 2.2 for comparison experiments.
"""

from .audit import AuditLog, AuditRecord
from .collection import CollectionError, CollectionSession, SecureCollection
from .database import SecureXMLDatabase, Transaction
from .delegation import AdministeredPolicy, DelegationError, Grant
from .insecure import InsecureWriteExecutor
from .lazy import LazyView, build_lazy_view
from .perm import PermissionResolver, PermissionTable
from .policy import (
    ACCEPT,
    DENY,
    Policy,
    PolicyError,
    PolicyLintWarning,
    SecurityRule,
)
from .privileges import Privilege, READ_PRIVILEGES, WRITE_PRIVILEGES
from .session import ExplainEntry, Session
from .subjects import SubjectError, SubjectHierarchy
from .view import View, ViewBuilder
from .viewcache import ViewCache
from .write import (
    AccessDenied,
    Denial,
    SecureUpdateResult,
    SecureWriteExecutor,
)

__all__ = [
    "ACCEPT",
    "AccessDenied",
    "AuditLog",
    "AuditRecord",
    "AdministeredPolicy",
    "CollectionError",
    "CollectionSession",
    "DENY",
    "DelegationError",
    "Denial",
    "ExplainEntry",
    "Grant",
    "InsecureWriteExecutor",
    "LazyView",
    "PermissionResolver",
    "PermissionTable",
    "Policy",
    "PolicyError",
    "PolicyLintWarning",
    "Privilege",
    "READ_PRIVILEGES",
    "SecureCollection",
    "SecureUpdateResult",
    "SecureWriteExecutor",
    "SecureXMLDatabase",
    "SecurityRule",
    "Session",
    "SubjectError",
    "SubjectHierarchy",
    "Transaction",
    "View",
    "ViewBuilder",
    "ViewCache",
    "build_lazy_view",
    "WRITE_PRIVILEGES",
]
