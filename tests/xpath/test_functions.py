"""The XPath 1.0 core function library, function by function."""

import math

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine, XPathEvaluationError


@pytest.fixture
def doc():
    return parse_xml(
        "<r><a>alpha</a><b> spaced  out </b><n>4</n><n>6.5</n></r>"
    )


@pytest.fixture
def engine():
    return XPathEngine()


def ev(engine, doc, expr, **kw):
    return engine.evaluate(doc, expr, **kw)


class TestNodeSetFunctions:
    def test_count(self, engine, doc):
        assert ev(engine, doc, "count(//n)") == 2.0

    def test_count_requires_node_set(self, engine, doc):
        with pytest.raises(XPathEvaluationError):
            ev(engine, doc, "count('x')")

    def test_position_and_last_in_predicate(self, engine, doc):
        got = engine.select(doc, "/r/*[position()=last()]")
        assert [doc.label(n) for n in got] == ["n"]

    def test_name_of_nodeset(self, engine, doc):
        assert ev(engine, doc, "name(//a)") == "a"

    def test_name_of_empty_nodeset(self, engine, doc):
        assert ev(engine, doc, "name(//zzz)") == ""

    def test_name_of_context(self, engine, doc):
        ctx = engine.select(doc, "//b")[0]
        assert ev(engine, doc, "name()", context_node=ctx) == "b"

    def test_local_name_strips_prefix(self, engine):
        doc = parse_xml("<x:a/>")
        assert ev(engine, doc, "local-name(/*)") == "a"

    def test_sum(self, engine, doc):
        assert ev(engine, doc, "sum(//n)") == 10.5


class TestStringFunctions:
    def test_string_of_context(self, engine, doc):
        ctx = engine.select(doc, "//a")[0]
        assert ev(engine, doc, "string()", context_node=ctx) == "alpha"

    def test_string_of_number(self, engine, doc):
        assert ev(engine, doc, "string(3)") == "3"
        assert ev(engine, doc, "string(3.5)") == "3.5"

    def test_string_of_boolean(self, engine, doc):
        assert ev(engine, doc, "string(true())") == "true"

    def test_concat(self, engine, doc):
        assert ev(engine, doc, "concat('a', 'b', 'c', 'd')") == "abcd"

    def test_concat_needs_two_args(self, engine, doc):
        with pytest.raises(XPathEvaluationError):
            ev(engine, doc, "concat('a')")

    def test_starts_with(self, engine, doc):
        assert ev(engine, doc, "starts-with('abcd', 'ab')") is True
        assert ev(engine, doc, "starts-with('abcd', 'bc')") is False

    def test_contains(self, engine, doc):
        assert ev(engine, doc, "contains('abcd', 'bc')") is True
        assert ev(engine, doc, "contains('abcd', 'xy')") is False

    def test_substring_before_after(self, engine, doc):
        assert ev(engine, doc, "substring-before('1999/04', '/')") == "1999"
        assert ev(engine, doc, "substring-after('1999/04', '/')") == "04"
        assert ev(engine, doc, "substring-before('abc', 'z')") == ""

    def test_substring_basic(self, engine, doc):
        assert ev(engine, doc, "substring('12345', 2, 3)") == "234"
        assert ev(engine, doc, "substring('12345', 2)") == "2345"

    def test_substring_spec_edge_cases(self, engine, doc):
        # The famous spec examples.
        assert ev(engine, doc, "substring('12345', 1.5, 2.6)") == "234"
        assert ev(engine, doc, "substring('12345', 0, 3)") == "12"
        assert ev(engine, doc, "substring('12345', 0 div 0, 3)") == ""

    def test_string_length(self, engine, doc):
        assert ev(engine, doc, "string-length('abcd')") == 4.0

    def test_normalize_space(self, engine, doc):
        assert ev(engine, doc, "normalize-space('  a  b  ')") == "a b"

    def test_normalize_space_of_context(self, engine, doc):
        ctx = engine.select(doc, "//b")[0]
        assert ev(engine, doc, "normalize-space()", context_node=ctx) == "spaced out"

    def test_translate(self, engine, doc):
        assert ev(engine, doc, "translate('bar', 'abc', 'ABC')") == "BAr"
        assert ev(engine, doc, "translate('--aaa--', 'abc-', 'ABC')") == "AAA"


class TestBooleanFunctions:
    def test_boolean_conversions(self, engine, doc):
        assert ev(engine, doc, "boolean(1)") is True
        assert ev(engine, doc, "boolean(0)") is False
        assert ev(engine, doc, "boolean('')") is False
        assert ev(engine, doc, "boolean('x')") is True
        assert ev(engine, doc, "boolean(//a)") is True
        assert ev(engine, doc, "boolean(//zzz)") is False

    def test_not(self, engine, doc):
        assert ev(engine, doc, "not(true())") is False
        assert ev(engine, doc, "not(//zzz)") is True

    def test_true_false(self, engine, doc):
        assert ev(engine, doc, "true()") is True
        assert ev(engine, doc, "false()") is False


class TestNumberFunctions:
    def test_number_of_string(self, engine, doc):
        assert ev(engine, doc, "number(' 42 ')") == 42.0

    def test_number_of_garbage_is_nan(self, engine, doc):
        assert math.isnan(ev(engine, doc, "number('abc')"))

    def test_number_of_boolean(self, engine, doc):
        assert ev(engine, doc, "number(true())") == 1.0

    def test_floor_ceiling(self, engine, doc):
        assert ev(engine, doc, "floor(2.7)") == 2.0
        assert ev(engine, doc, "ceiling(2.1)") == 3.0
        assert ev(engine, doc, "floor(-2.5)") == -3.0

    def test_round_half_up(self, engine, doc):
        assert ev(engine, doc, "round(2.5)") == 3.0
        assert ev(engine, doc, "round(-2.5)") == -2.0  # toward +inf
        assert ev(engine, doc, "round(2.4)") == 2.0

    def test_round_special_values(self, engine, doc):
        assert math.isnan(ev(engine, doc, "round(0 div 0)"))
        assert math.isinf(ev(engine, doc, "round(1 div 0)"))


class TestUnknowns:
    def test_unknown_function(self, engine, doc):
        with pytest.raises(XPathEvaluationError):
            ev(engine, doc, "frobnicate()")

    def test_unbound_variable(self, engine, doc):
        with pytest.raises(XPathEvaluationError):
            ev(engine, doc, "$NOPE")

    def test_extra_functions_injectable(self, doc):
        def double(ctx, args):
            return 2 * args[0]

        engine = XPathEngine(extra_functions={"double": double})
        assert engine.evaluate(doc, "double(21)") == 42.0
