"""Shared fixtures for the serving-layer suite: virtual time."""

import pytest


class ManualClock:
    """A monotonic clock advanced by hand; doubles as a fake sleep.

    Passing ``clock=clock`` and ``sleep=clock.sleep`` to a
    :class:`~repro.serving.server.DatabaseServer` makes every deadline
    and backoff decision a pure function of the test script -- no real
    waiting, no flakiness.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


@pytest.fixture
def clock():
    """A fresh manual clock per test."""
    return ManualClock()
