"""Crash recovery: checkpoint + committed log prefix -> the database.

:func:`recover` restores the database a crash interrupted: it loads the
newest loadable checkpoint snapshot, scans the segments, cuts off the
torn tail (the artifact of the crash -- reported, never replayed), and
replays the committed records in lsn order **through the real update
machinery**: a logged session script re-executes via
:meth:`Session.execute` (the secured path of axioms 18-25), an
administrative script via :meth:`SecureXMLDatabase.admin_update`, and
subject/policy events re-dispatch onto the live hierarchy.  Because the
paper makes ``dbnew`` a deterministic function of ``db`` and the script
(formulae (2)-(9)), the replayed database is *equal* -- document,
version, policy, and every user's authorized view -- to one that
applied the same committed prefix from scratch.

The recovery invariant, checked record by record: replaying a commit
record must land the database exactly on the version the record was
stamped with.  A mismatch means the log and the snapshot disagree;
strict mode raises :class:`~repro.errors.RecoveryError`, the default
lenient mode stops at the last consistent point and reports through the
:class:`~repro.storage.LoadReport`.

Fencing epochs ride the same invariant: records stamped with an epoch
(see :mod:`repro.wal.log`) must never regress mid-log -- a record whose
epoch is *below* the highest one already replayed is a deposed
primary's leftover and is treated exactly like a version-stamp
divergence (strict raises, lenient stops in front of it).  Records and
checkpoints written before epochs existed carry no epoch field and load
as epoch 0 on both paths, so old logs replay unchanged.  Recovery also
rebuilds the exactly-once dedup ledger: every replayed ``update``
record carrying an ``idem`` annotation contributes its
(key -> commit summary) entry to :attr:`RecoveryResult.dedup`.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import RecoveryError, WalCorruptionError
from ..storage import LoadReport, load_database
from ..testing.diskfaults import disk
from ..xmltree.labels import NumberingScheme
from ..xupdate.parser import parse_xupdate
from .log import (
    Checkpoint,
    TornTail,
    WalRecord,
    classify_damage,
    list_checkpoints,
    quarantine_segment,
    quarantined_segments,
    scan_directory,
)

__all__ = [
    "RecoveryResult",
    "apply_record",
    "load_newest_checkpoint",
    "recover",
]


@dataclass
class RecoveryResult:
    """What :func:`recover` rebuilt and how it got there.

    Attributes:
        database: the recovered database (no write-ahead log attached;
            attach a re-opened one to resume durable operation).
        checkpoint: the snapshot replay started from, or None when the
            log bootstrapped from a full-state record instead.
        replayed: commit records (``update`` / ``admin`` / ``state``)
            actually replayed on top of the starting point.
        last_lsn: lsn of the last record applied (0 when nothing was).
        torn: the torn tail that ended the usable log, or None when
            every segment read cleanly.
        report: everything lenient recovery dropped or repaired
            (checkpoints that failed to load, the torn tail, a replay
            stop); ``report.clean`` means the log replayed fully.
        epoch: the highest fencing epoch observed across the starting
            checkpoint and every replayed record (0 for pre-epoch
            logs).
        dedup: the exactly-once ledger rebuilt from the log --
            idempotency key -> the commit summary of the ``update`` or
            ``admin`` record that carried it (insertion order = replay
            order).
    """

    database: object
    checkpoint: Optional[Checkpoint] = None
    replayed: int = 0
    last_lsn: int = 0
    torn: Optional[TornTail] = None
    report: LoadReport = field(default_factory=LoadReport)
    epoch: int = 0
    dedup: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def version(self) -> int:
        """The recovered database's version."""
        return self.database.version


def recover(
    directory: str,
    *,
    strict: bool = False,
    repair: bool = False,
    scheme: Optional[NumberingScheme] = None,
) -> RecoveryResult:
    """Rebuild the database from a write-ahead-log directory.

    Args:
        directory: the log directory (segments + checkpoint snapshots).
        strict: raise instead of degrade -- a torn tail becomes
            :class:`WalCorruptionError`, an unloadable newest
            checkpoint or a replay divergence becomes
            :class:`RecoveryError`.  The default lenient mode recovers
            the longest consistent committed prefix and reports what it
            dropped.
        repair: physically truncate the torn tail (and delete
            unreachable later segments) so the directory can be
            re-opened for appending.  Lenient-mode only; the scan
            itself never needs it.
        scheme: numbering scheme for loaded documents (storage default
            if omitted).

    Returns:
        A :class:`RecoveryResult`; its database has *no* log attached.

    Raises:
        RecoveryError: nothing recoverable in the directory (no
            loadable checkpoint and no bootstrap ``state`` record), or
            any degradation in strict mode.
        WalCorruptionError: strict mode, torn or corrupt log.
    """
    result = RecoveryResult(database=None)
    result.report.source = directory
    if not os.path.isdir(directory):
        raise RecoveryError(f"{directory} is not a directory")

    quarantined = set(quarantined_segments(directory))
    if quarantined and strict:
        names = ", ".join(sorted(os.path.basename(p) for p in quarantined))
        raise WalCorruptionError(
            f"{directory}: quarantined segment(s) present ({names}); "
            f"strict recovery refuses to replay past quarantined damage "
            f"-- repair from a healthy peer first"
        )

    scan = scan_directory(directory)
    result.torn = scan.torn
    damage = None
    if scan.torn is not None:
        damage = classify_damage(scan.torn)
        if not damage.tail:
            # Non-tail corruption: intact records exist past the damage
            # (bit rot, a flipped length field, dropped segments).  The
            # torn-tail rule must not swallow this -- quarantine the
            # segment so no writer truncates it and no stream serves it.
            quarantine_segment(
                scan.torn.segment,
                f"{scan.torn} (non-tail: intact record at offset "
                f"{damage.resync_offset}, lsn {damage.resync_lsn})",
            )
            quarantined.add(scan.torn.segment)
        if strict:
            detail = (
                "" if damage.tail
                else (
                    f"; non-tail corruption (intact lsn "
                    f"{damage.resync_lsn} follows) -- segment quarantined"
                )
            )
            raise WalCorruptionError(f"{directory}: {scan.torn}{detail}")
        if damage.tail:
            result.report.add("wal", str(scan.torn))
        else:
            result.report.add(
                "wal",
                f"{scan.torn}; non-tail corruption -- segment "
                f"quarantined, replay stops at the damage",
            )

    checkpoint, database = load_newest_checkpoint(
        directory, scheme=scheme, strict=strict, report=result.report
    )
    result.checkpoint = checkpoint
    start_lsn = checkpoint.lsn if checkpoint is not None else 0
    result.epoch = checkpoint.epoch if checkpoint is not None else 0

    def remember(applied: WalRecord, summary: Dict[str, Any]) -> None:
        key = applied.payload.get("idem")
        if key is not None:
            result.dedup[str(key)] = summary

    for record in scan.records:
        if record.lsn <= start_lsn:
            continue
        if record.segment in quarantined:
            result.report.add(
                "wal",
                f"segment {os.path.basename(record.segment)} is "
                f"quarantined; stopping before lsn {record.lsn}",
            )
            break
        # Epoch regression is the fencing invariant's version of a bad
        # version stamp: a record from a lower epoch after a higher one
        # is a deposed primary's leftover, never part of the committed
        # history.  (Records without the field predate epochs and load
        # as epoch 0 -- a regression only exists once something newer
        # was already seen.)
        if record.epoch < result.epoch:
            message = (
                f"lsn {record.lsn} carries stale epoch {record.epoch} "
                f"after epoch {result.epoch} was observed"
            )
            if strict:
                raise RecoveryError(message)
            result.report.add("wal", message + "; stopping here")
            break
        result.epoch = record.epoch
        # The recovery invariant, checked *before* applying: a replayed
        # commit bumps the version by exactly one (a state record sets
        # it outright), so a record whose stamp is not the successor of
        # the current version disagrees with the log it sits in.  The
        # divergent record is never applied -- lenient mode stops at the
        # last consistent point, strict mode raises.
        if record.kind in ("update", "admin") and database is not None:
            stamped = int(record.payload["version"])
            if stamped != database.version + 1:
                message = (
                    f"lsn {record.lsn} is stamped version {stamped}, but "
                    f"the database stands at {database.version}"
                )
                if strict:
                    raise RecoveryError(message)
                result.report.add("wal", message + "; stopping here")
                break
        try:
            database = apply_record(
                database, record, scheme, result_sink=remember
            )
        except Exception as exc:
            message = (
                f"replay of lsn {record.lsn} ({record.kind}) failed: {exc}"
            )
            if strict:
                raise RecoveryError(message) from exc
            result.report.add("wal", message + "; stopping here")
            break
        if record.kind in ("update", "admin", "state"):
            result.replayed += 1
            stamped = int(record.payload["version"])
            if database.version != stamped:
                message = (
                    f"replay of lsn {record.lsn} left the database at "
                    f"version {database.version}, but the record is "
                    f"stamped {stamped}"
                )
                if strict:
                    raise RecoveryError(message)
                result.report.add("wal", message + "; stopping here")
                break
        result.last_lsn = record.lsn

    if database is None:
        raise RecoveryError(
            f"{directory} holds no loadable checkpoint and no bootstrap "
            f"state record; nothing to recover"
        )
    if repair and scan.torn is not None:
        if damage is not None and not damage.tail:
            # Truncating non-tail damage would destroy the intact
            # committed records behind it; repair here means
            # anti-entropy from a healthy peer, never the saw.
            result.report.add(
                "wal",
                "non-tail corruption is quarantined, not truncated; "
                "repair it from a healthy peer "
                "(repro.replication.repair_from_peer)",
            )
        else:
            _repair_tail(scan.torn)
            result.report.add("wal", "torn tail physically truncated (repair)")
    result.database = database
    return result


# ---------------------------------------------------------------------------
# starting point
# ---------------------------------------------------------------------------
def load_newest_checkpoint(
    directory: str,
    *,
    scheme: Optional[NumberingScheme] = None,
    strict: bool = False,
    report: Optional[LoadReport] = None,
):
    """The newest loadable checkpoint as ``(Checkpoint, database)``.

    Walks the directory's checkpoint snapshots newest-first and returns
    the first that loads (with its version counter restored), falling
    back through older generations when a newer snapshot is corrupt.
    Returns ``(None, None)`` when no snapshot loads at all -- recovery
    then bootstraps from a full-state log record if one exists.

    This is both :func:`recover`'s starting point and the replication
    catch-up protocol's re-seed step
    (:meth:`repro.replication.Replica.catch_up`).

    Args:
        directory: the log directory holding the snapshots.
        scheme: numbering scheme for the loaded document.
        strict: raise :class:`RecoveryError` if the *newest* snapshot
            fails to load, instead of degrading to an older one.
        report: a :class:`~repro.storage.LoadReport` collecting what
            the fallback skipped (optional).
    """
    if report is None:
        report = LoadReport()
    # Snapshot files are written to a temp name and atomically renamed,
    # so every visible checkpoint is complete -- even one whose
    # *checkpoint record* was torn off the log tail is a valid (indeed
    # the best) starting point.
    checkpoints = list_checkpoints(directory)
    for index, checkpoint in enumerate(reversed(checkpoints)):
        try:
            with disk.open(checkpoint.path, "r", encoding="utf-8") as handle:
                text = handle.read()
            database = load_database(
                text, scheme, mode="strict",
                source=os.path.basename(checkpoint.path),
            )
        except Exception as exc:
            message = (
                f"checkpoint {os.path.basename(checkpoint.path)} failed to "
                f"load: {exc}"
            )
            if strict and index == 0:
                raise RecoveryError(message) from exc
            report.add("checkpoint", message + "; trying an older one")
            continue
        database.restore_version(checkpoint.version)
        return checkpoint, database
    return None, None


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------
def apply_record(
    database,
    record: WalRecord,
    scheme=None,
    result_sink: Optional[
        Callable[[WalRecord, Dict[str, Any]], None]
    ] = None,
):
    """Apply one log record; returns the (possibly replaced) database.

    The single replay step both recovery and replication are built on:
    a logged session script re-executes through the real secured path
    (:meth:`Session.execute`), an administrative script through
    :meth:`SecureXMLDatabase.admin_update`, subject/policy events
    re-dispatch onto the live hierarchies, and a full-state record
    replaces the database outright.  ``checkpoint`` records are
    informational and return the database unchanged.

    Stamped-version checking is the *caller's* contract (recovery stops
    or raises; a replica quarantines itself) -- this function only
    applies.

    Args:
        result_sink: called after a successful ``update`` or ``admin``
            replay with
            ``(record, summary)`` where the summary is the same typed
            shape the serving layer acknowledges over the wire
            (``fully_applied`` / ``selected`` / ``affected`` /
            ``denied`` / ``version``).  Recovery and replicas use it to
            rebuild the exactly-once dedup ledger from the log; replay
            is deterministic, so the rebuilt summary is the one the
            original commit acknowledged.

    Raises:
        RecoveryError: the record kind is unknown, or a record that
            needs a database arrived before any state to replay onto.
    """
    kind, payload = record.kind, record.payload
    if kind == "state":
        rebuilt = load_database(
            payload["data"], scheme, mode="strict",
            source=f"wal lsn {record.lsn}",
        )
        rebuilt.restore_version(int(payload["version"]))
        return rebuilt
    if kind == "checkpoint":
        # Informational: marks where a snapshot was cut.  The snapshot
        # itself was already chosen (or rejected) as the starting point.
        return database
    if database is None:
        raise RecoveryError(
            f"lsn {record.lsn} ({kind}) needs a database to replay onto, "
            f"but no checkpoint loaded and no state record preceded it"
        )
    if kind == "update":
        session = database.login(payload["user"])
        outcome = session.execute(
            parse_xupdate(payload["script"]),
            strict=bool(payload.get("strict", False)),
        )
        if result_sink is not None:
            result_sink(
                record,
                {
                    "fully_applied": bool(outcome.fully_applied),
                    "selected": len(outcome.selected),
                    "affected": len(outcome.affected),
                    "denied": len(outcome.denials),
                    "version": database.version,
                },
            )
        return database
    if kind == "admin":
        outcome = database.admin_update(parse_xupdate(payload["script"]))
        if result_sink is not None:
            result_sink(
                record,
                {
                    "fully_applied": True,
                    "selected": len(outcome.selected),
                    "affected": len(outcome.affected),
                    "denied": len(outcome.denied),
                    "version": database.version,
                },
            )
        return database
    if kind == "subjects":
        _apply_subjects(database.subjects, payload["op"], payload["args"])
        return database
    if kind == "policy":
        _apply_policy(database.policy, payload["op"], payload["args"])
        return database
    raise RecoveryError(f"lsn {record.lsn}: unknown record kind {kind!r}")


def _apply_subjects(subjects, op: str, args) -> None:
    if op == "add_role":
        subjects.add_role(args[0])
    elif op == "add_user":
        subjects.add_user(args[0])
    elif op == "add_isa":
        subjects.add_isa(args[0], args[1])
    else:
        raise RecoveryError(f"unknown subjects event {op!r}")


def _apply_policy(policy, op: str, args) -> None:
    if op == "accept":
        privilege, path, subject, priority = args
        policy.grant(privilege, path, subject, priority=int(priority))
    elif op == "deny":
        privilege, path, subject, priority = args
        policy.deny(privilege, path, subject, priority=int(priority))
    elif op == "revoke":
        priority = int(args[0])
        for rule in policy:
            if rule.priority == priority:
                policy.revoke(rule)
                return
        raise RecoveryError(
            f"revoke event references unknown rule priority {priority}"
        )
    else:
        raise RecoveryError(f"unknown policy event {op!r}")


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------
def _repair_tail(torn: TornTail) -> None:
    """Make the damage physical truth: cut the torn segment and drop
    the unreachable ones, so the directory re-opens for appending."""
    if torn.offset == 0:
        with contextlib.suppress(OSError):
            os.unlink(torn.segment)
    else:
        with open(torn.segment, "r+b") as handle:
            handle.truncate(torn.offset)
            handle.flush()
            os.fsync(handle.fileno())
    for path in torn.dropped_segments:
        with contextlib.suppress(OSError):
            os.unlink(path)
