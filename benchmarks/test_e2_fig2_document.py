"""E2 (figure 2 / equation 1): build the sample document's theory.

Regenerates: the fact set F of equation 1 and the child facts the
paper derives in section 3.3, timing parse + fact extraction.
"""

from repro.core import MEDICAL_XML
from repro.xmltree import parse_xml

PAPER_LABELS = sorted(
    [
        "/",
        "patients",
        "franck",
        "service",
        "otolarynology",
        "diagnosis",
        "tonsillitis",
        "robert",
        "service",
        "pneumology",
        "diagnosis",
        "pneumonia",
    ]
)


def test_e2_parse_and_facts(benchmark):
    def build():
        doc = parse_xml(MEDICAL_XML)
        facts = doc.facts()
        child = doc.child_facts()
        assert sorted(v for (_n, v) in facts) == PAPER_LABELS
        # 11 non-document nodes, each a child of exactly one parent.
        assert len(child) == 11
        return doc

    doc = benchmark(build)
    assert doc.root is not None


def test_e2_geometry_derivation(benchmark):
    """Time the full geometry closure in the formal (Datalog) theory."""
    from repro.formal import document_theory
    from repro.logic import DatalogEngine

    doc = parse_xml(MEDICAL_XML)

    def derive():
        engine = DatalogEngine(document_theory(doc))
        solved = engine.solve()
        assert len(solved["child"]) == 11
        assert ("descendant" in solved)
        return solved

    benchmark(derive)
