"""CLI integration tests (run in-process via main())."""

import os

import pytest

from repro.cli import main
from repro.storage import load_from_file

XUPDATE_NS = 'xmlns:xupdate="http://www.xmldb.org/xupdate"'
APPEND_BOB = (
    f"<xupdate:modifications {XUPDATE_NS}>"
    '<xupdate:append select="/patients">'
    '<xupdate:element name="bob"/></xupdate:append>'
    "</xupdate:modifications>"
)


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "db.xml")


def run(*argv):
    return main(list(argv))


@pytest.fixture
def seeded(db_path):
    assert run("init", db_path, "--xml", "<patients/>") == 0
    assert run("add-role", db_path, "staff") == 0
    assert run("add-user", db_path, "alice", "--member-of", "staff") == 0
    assert run("grant", db_path, "read", "//node()", "staff") == 0
    assert run("grant", db_path, "insert", "/patients", "staff") == 0
    return db_path


class TestInit:
    def test_init_creates_file(self, db_path):
        assert run("init", db_path, "--xml", "<r/>") == 0
        assert os.path.exists(db_path)
        db = load_from_file(db_path)
        assert db.document.label(db.document.root) == "r"

    def test_init_refuses_overwrite(self, db_path):
        run("init", db_path, "--xml", "<r/>")
        assert run("init", db_path, "--xml", "<other/>") == 2

    def test_init_force_overwrites(self, db_path):
        run("init", db_path, "--xml", "<r/>")
        assert run("init", db_path, "--xml", "<other/>", "--force") == 0
        db = load_from_file(db_path)
        assert db.document.label(db.document.root) == "other"

    def test_init_from_document_file(self, tmp_path, db_path):
        doc_path = str(tmp_path / "doc.xml")
        with open(doc_path, "w") as handle:
            handle.write("<patients><franck/></patients>")
        assert run("init", db_path, "--document", doc_path) == 0
        db = load_from_file(db_path)
        assert len(db.document) == 3


class TestSubjectsAndPolicy:
    def test_duplicate_role_fails_cleanly(self, seeded):
        assert run("add-role", seeded, "staff") == 2

    def test_member_of_unknown_fails(self, seeded):
        assert run("add-user", seeded, "bob", "--member-of", "ghost") == 2

    def test_grant_bad_path_fails(self, seeded):
        assert run("grant", seeded, "read", "//a[", "staff") == 2

    def test_deny_recorded_after_grant(self, seeded):
        assert run("deny", seeded, "read", "//secret", "staff") == 0
        db = load_from_file(seeded)
        facts = list(db.policy.facts())
        assert facts[-1][0] == "deny"
        assert facts[-1][4] > facts[0][4]

    def test_show_runs(self, seeded, capsys):
        assert run("show", seeded) == 0
        out = capsys.readouterr().out
        assert "role staff" in out
        assert "user alice" in out
        assert "rule(accept,read" in out


class TestViewQueryUpdate:
    def test_update_and_view(self, seeded, capsys):
        assert run("update", seeded, "alice", APPEND_BOB) == 0
        capsys.readouterr()
        assert run("view", seeded, "alice") == 0
        assert "<bob/>" in capsys.readouterr().out

    def test_view_tree_notation(self, seeded, capsys):
        assert run("view", seeded, "alice", "--tree") == 0
        assert "/patients" in capsys.readouterr().out

    def test_query_scalar(self, seeded, capsys):
        run("update", seeded, "alice", APPEND_BOB)
        capsys.readouterr()
        assert run("query", seeded, "alice", "count(//bob)") == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_query_node_set(self, seeded, capsys):
        run("update", seeded, "alice", APPEND_BOB)
        capsys.readouterr()
        assert run("query", seeded, "alice", "//bob") == 0
        assert "<bob/>" in capsys.readouterr().out

    def test_query_boolean(self, seeded, capsys):
        assert run("query", seeded, "alice", "true()") == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_update_from_file(self, seeded, tmp_path, capsys):
        script_path = str(tmp_path / "script.xml")
        with open(script_path, "w") as handle:
            handle.write(APPEND_BOB)
        assert run("update", seeded, "alice", script_path) == 0

    def test_denied_update_exit_code(self, seeded, capsys):
        denied = (
            f"<xupdate:modifications {XUPDATE_NS}>"
            '<xupdate:remove select="/patients"/>'
            "</xupdate:modifications>"
        )
        assert run("update", seeded, "alice", denied) == 3
        assert "DENIED" in capsys.readouterr().out

    def test_strict_denied_does_not_commit(self, seeded, capsys):
        before = open(seeded).read()
        denied = (
            f"<xupdate:modifications {XUPDATE_NS}>"
            '<xupdate:remove select="/patients"/>'
            "</xupdate:modifications>"
        )
        assert run("update", seeded, "alice", denied, "--strict") == 3
        assert open(seeded).read() == before

    def test_unknown_user_fails(self, seeded):
        assert run("view", seeded, "ghost") == 2

    def test_missing_database_fails(self, tmp_path):
        assert run("view", str(tmp_path / "nope.xml"), "alice") == 2

    def test_audit_demo(self, seeded, capsys):
        assert run("audit-demo", seeded, "alice", APPEND_BOB) == 0
        assert "ALLOW" in capsys.readouterr().out


class TestLint:
    def test_clean_policy_exits_zero(self, seeded, capsys):
        assert run("lint", seeded) == 0
        assert "clean" in capsys.readouterr().out

    def test_dead_rule_exits_four(self, seeded, capsys):
        # The read grant is fully shadowed by a later deny on the same
        # path for the same role: dead under axiom 14.
        assert run("deny", seeded, "read", "//node()", "staff") == 0
        assert run("lint", seeded) == 4
        out = capsys.readouterr().out
        assert "dead" in out

    def test_empty_path_rule_reported(self, seeded, capsys):
        assert run("grant", seeded, "read", "//never-matches", "staff") == 0
        assert run("lint", seeded) == 4
        assert "empty-path" in capsys.readouterr().out


class TestRecover:
    def test_recover_reports_dropped_rule(self, seeded, capsys):
        text = open(seeded).read()
        broken = text.replace('subject="staff"', 'subject="ghost"', 1)
        with open(seeded, "w") as handle:
            handle.write(broken)
        assert run("recover", seeded) == 4
        out = capsys.readouterr().out
        assert "ghost" in out
        assert "recovered:" in out

    def test_recover_clean_file_exits_zero(self, seeded, capsys):
        assert run("recover", seeded) == 0
        assert "cleanly" in capsys.readouterr().out

    def test_recover_write_repairs_file(self, seeded, capsys):
        text = open(seeded).read()
        with open(seeded, "w") as handle:
            handle.write(text.replace('subject="staff"', 'subject="ghost"', 1))
        assert run("recover", seeded, "--write") == 4
        capsys.readouterr()
        # After the rewrite the file is strict-loadable and lint-clean.
        assert run("recover", seeded) == 0

    def test_recover_missing_file_fails(self, tmp_path):
        assert run("recover", str(tmp_path / "nope.xml")) == 2


class TestCrashSafeSaves:
    def test_mutating_commands_keep_a_backup(self, seeded):
        before = open(seeded).read()
        assert run("add-role", seeded, "nurse", "--member-of", "staff") == 0
        assert open(seeded + ".bak").read() == before

    def test_backup_is_loadable(self, seeded):
        run("add-role", seeded, "nurse")
        assert load_from_file(seeded + ".bak").document.root is not None


class TestWalCli:
    @pytest.fixture
    def walled(self, seeded):
        """The seeded database plus a WAL directory holding one commit
        that was never saved back to the snapshot file."""
        from repro.wal import WriteAheadLog

        db = load_from_file(seeded)
        wal = WriteAheadLog(seeded + ".wal")
        db.attach_wal(wal)
        wal.checkpoint(db)
        db.login("alice").execute(APPEND_BOB)
        db.detach_wal().close()
        return seeded

    def tear(self, wal_dir):
        last = sorted(
            os.path.join(wal_dir, name)
            for name in os.listdir(wal_dir)
            if name.startswith("segment-")
        )[-1]
        with open(last, "r+b") as handle:
            handle.truncate(os.path.getsize(last) - 3)

    def test_inspect_clean_log(self, walled, capsys):
        assert run("wal", "inspect", walled + ".wal") == 0
        out = capsys.readouterr().out
        assert "segment segment-0000000001.wal" in out
        assert "checkpoint checkpoint-" in out
        assert "update=1" in out
        assert "log is clean" in out

    def test_inspect_records_listing(self, walled, capsys):
        assert run("wal", "inspect", walled + ".wal", "--records") == 0
        out = capsys.readouterr().out
        assert "update version=1 user=alice" in out

    def test_inspect_torn_log_exits_four(self, walled, capsys):
        self.tear(walled + ".wal")
        assert run("wal", "inspect", walled + ".wal") == 4
        assert "TORN" in capsys.readouterr().out

    def test_inspect_missing_directory(self, tmp_path):
        assert run("wal", "inspect", str(tmp_path / "nope.wal")) == 2

    def test_recover_replays_the_log(self, walled, capsys):
        assert run("recover", walled) == 0
        out = capsys.readouterr().out
        assert "replayed 1 commit record(s)" in out
        assert "recovered version 1" in out

    def test_recover_write_persists_the_replayed_state(self, walled, capsys):
        assert run("recover", walled, "--write") == 0
        capsys.readouterr()
        # the WAL-only commit is now in the snapshot file
        assert run("view", walled, "alice") == 0
        assert "<bob/>" in capsys.readouterr().out

    def test_recover_write_repairs_a_torn_tail(self, walled, capsys):
        self.tear(walled + ".wal")
        assert run("recover", walled, "--write") == 4  # torn: reported
        capsys.readouterr()
        assert run("wal", "inspect", walled + ".wal") == 0  # now clean

    def test_recover_no_wal_uses_the_snapshot(self, walled, capsys):
        assert run("recover", walled, "--no-wal") == 0
        out = capsys.readouterr().out
        assert "replayed" not in out
        assert "loaded cleanly" in out


class TestStress:
    def test_stress_reports_serving_stats(self, seeded, capsys):
        code = run(
            "stress", seeded, "alice", APPEND_BOB,
            "--writers", "2", "--readers", "2", "--rounds", "3",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "commits: 6" in out  # 2 writers x 3 rounds, none lost
        assert "reads: 6" in out
        assert "retry_exhausted: 0" in out
        assert "req/s" in out

    def test_stress_does_not_modify_the_file(self, seeded):
        before = open(seeded, "rb").read()
        assert run("stress", seeded, "alice", APPEND_BOB, "--rounds", "2") == 0
        assert open(seeded, "rb").read() == before

    def test_stress_shed_mode_counts_rejections(self, seeded, capsys):
        code = run(
            "stress", seeded, "alice", APPEND_BOB,
            "--writers", "4", "--readers", "4", "--rounds", "4",
            "--max-in-flight", "1", "--overload", "shed",
        )
        assert code == 0  # shed requests are governed, not failures
        out = capsys.readouterr().out
        assert "shed:" in out


class TestFailoverCli:
    @pytest.fixture
    def logged(self, seeded):
        """The seeded database plus a WAL directory holding one keyed
        commit that was never saved back to the snapshot file."""
        from repro.wal import WriteAheadLog

        db = load_from_file(seeded)
        wal = WriteAheadLog(seeded + ".wal")
        db.attach_wal(wal)
        wal.checkpoint(db)
        with wal.annotate(idem="req-1"):
            db.login("alice").execute(APPEND_BOB)
        db.detach_wal().close()
        return seeded + ".wal"

    def append_epoch_regression(self, seeded, wal_dir):
        """Smuggle an epoch-2-then-epoch-1 tail onto the (epoch-0) log
        -- a deposed primary's leftover writes."""
        from repro.wal import WriteAheadLog

        version = load_from_file(seeded).version + 1  # + the keyed commit
        with WriteAheadLog(wal_dir) as wal:
            wal.append({"kind": "update", "epoch": 2, "user": "alice",
                        "script": APPEND_BOB, "version": version + 1})
            wal.append({"kind": "update", "epoch": 1, "user": "alice",
                        "script": APPEND_BOB, "version": version + 2})

    def test_promote_creates_a_primary_log(self, logged, tmp_path, capsys):
        new_dir = str(tmp_path / "promoted")
        assert run("replica", logged, "--promote", new_dir) == 0
        out = capsys.readouterr().out
        assert "promoted to primary: epoch 1" in out
        assert "1 idempotency entr" in out
        # The new log is a self-sufficient primary baseline.
        assert run("failover-status", new_dir) == 0
        out = capsys.readouterr().out
        assert "epoch: 1" in out
        assert "single unbroken epoch line" in out

    def test_promote_diverged_replica_exits_four(
        self, seeded, logged, tmp_path, capsys
    ):
        self.append_epoch_regression(seeded, logged)
        code = run("replica", logged, "--promote", str(tmp_path / "p"))
        assert code == 4
        assert "diverged" in capsys.readouterr().err

    def test_failover_status_clean_log(self, logged, capsys):
        assert run("failover-status", logged) == 0
        out = capsys.readouterr().out
        assert "epoch: 0" in out
        assert "idempotency keys on record: 1" in out
        assert "single unbroken epoch line" in out

    def test_failover_status_fenced_log_exits_four(
        self, seeded, logged, capsys
    ):
        self.append_epoch_regression(seeded, logged)
        assert run("failover-status", logged) == 4
        out = capsys.readouterr().out
        assert "FENCED: 1 stale-epoch record(s)" in out

    def test_failover_status_missing_directory(self, tmp_path):
        assert run("failover-status", str(tmp_path / "nope")) == 2
