"""Change-sets: the delta an update publishes alongside ``dbnew``.

The paper's semantics replaces the whole theory on every update, and the
seed implementation mirrored that operationally: each commit bumped the
database version and every cached artifact (rule-path selections,
permission tables, materialized views) was rebuilt from scratch.  That
is O(users x rules x |doc|) per commit -- avoidably so, because almost
every real update touches a tiny region of the tree (Mahfoud & Imine
2012 localize view maintenance to updated regions; Cheney 2013 rules
out most rule/update interactions statically).

A :class:`ChangeSet` is the structural summary of one update (or one
whole script) that makes that localization possible:

- ``added`` / ``removed`` -- roots of inserted / deleted subtrees;
- ``relabelled`` / ``revalued`` -- nodes whose label / value changed
  in place;
- ``labels`` -- every label touched by the update: old and new labels
  of relabelled nodes, and the labels of *every* node inside added or
  removed subtrees.  A compiled rule path whose label skeleton is
  disjoint from this set provably selects the same nodes before and
  after the commit (see :mod:`repro.xpath.skeleton`).

Downstream consumers (:class:`~repro.security.perm.PermissionResolver`,
:class:`~repro.security.viewcache.ViewCache`) treat a missing or
:attr:`conservative` change-set as "anything may have changed" and fall
back to full re-derivation, so producing a change-set is always an
optimization, never a correctness requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set

from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId

__all__ = ["ChangeSet", "subtree_labels"]


def subtree_labels(doc: XMLDocument, root: NodeId) -> Set[str]:
    """Every label in the subtree of ``root`` (attributes included)."""
    return {doc.node(nid).label for nid in doc.subtree(root)}


@dataclass
class ChangeSet:
    """The structural delta of one update, script, or commit.

    Attributes:
        added: roots of freshly inserted subtrees.
        removed: roots of deleted subtrees.
        relabelled: nodes whose label changed in place.
        revalued: nodes whose value changed in place.
        labels: all labels touched (see module docstring).
        conservative: True when the extent of the change is unknown;
            consumers must treat the whole document as touched.
    """

    added: Set[NodeId] = field(default_factory=set)
    removed: Set[NodeId] = field(default_factory=set)
    relabelled: Set[NodeId] = field(default_factory=set)
    revalued: Set[NodeId] = field(default_factory=set)
    labels: Set[str] = field(default_factory=set)
    conservative: bool = False

    @classmethod
    def unknown(cls) -> "ChangeSet":
        """A conservative change-set: "assume everything changed"."""
        return cls(conservative=True)

    def __bool__(self) -> bool:
        """True when the change-set records any change at all."""
        return bool(
            self.conservative
            or self.added
            or self.removed
            or self.relabelled
            or self.revalued
        )

    def touched_roots(self) -> Set[NodeId]:
        """Roots of every region whose view/selection state may differ."""
        return self.added | self.removed | self.relabelled | self.revalued

    # ------------------------------------------------------------------
    # recording helpers (called by the executors)
    # ------------------------------------------------------------------
    def note_added(self, doc: XMLDocument, root: NodeId) -> None:
        """Record an inserted subtree (``doc`` already contains it)."""
        self.added.add(root)
        self.labels |= subtree_labels(doc, root)

    def note_removed(self, doc: XMLDocument, root: NodeId) -> None:
        """Record a removal; call *before* the subtree is deleted."""
        self.removed.add(root)
        self.labels |= subtree_labels(doc, root)

    def note_relabelled(self, nid: NodeId, old: str, new: str) -> None:
        """Record an in-place relabel (rename / update-content)."""
        self.relabelled.add(nid)
        self.labels.add(old)
        self.labels.add(new)

    def note_revalued(self, nid: NodeId, label: str) -> None:
        """Record an in-place value change (attribute value, PI data)."""
        self.revalued.add(nid)
        self.labels.add(label)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def merge(self, other: "ChangeSet") -> "ChangeSet":
        """The composite change-set of this update followed by ``other``.

        Composition is set union: a root added then removed appears in
        both sets, which consumers resolve by checking presence in the
        final document (a patch of a region that no longer exists is a
        removal).
        """
        return ChangeSet(
            added=self.added | other.added,
            removed=self.removed | other.removed,
            relabelled=self.relabelled | other.relabelled,
            revalued=self.revalued | other.revalued,
            labels=self.labels | other.labels,
            conservative=self.conservative or other.conservative,
        )

    @classmethod
    def merge_all(cls, changesets: Iterable["ChangeSet"]) -> "ChangeSet":
        """Fold a sequence of change-sets into one composite."""
        out = cls()
        for cs in changesets:
            out = out.merge(cs)
        return out
