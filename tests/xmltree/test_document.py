"""Unit tests for the XMLDocument store and its geometry accessors."""

import pytest

from repro.xmltree import (
    DOCUMENT_ID,
    DocumentError,
    NodeKind,
    RenumberingScheme,
    XMLDocument,
    parse_xml,
)


@pytest.fixture
def medical():
    return parse_xml(
        "<patients>"
        "<franck><service>otolarynology</service>"
        "<diagnosis>tonsillitis</diagnosis></franck>"
        "<robert><service>pneumology</service>"
        "<diagnosis>pneumonia</diagnosis></robert>"
        "</patients>"
    )


class TestConstruction:
    def test_empty_document_has_only_document_node(self):
        doc = XMLDocument()
        assert len(doc) == 1
        assert doc.root is None
        assert doc.document_node.is_document

    def test_add_root(self):
        doc = XMLDocument()
        root = doc.add_root("patients")
        assert doc.root == root
        assert doc.label(root) == "patients"

    def test_second_root_rejected(self):
        doc = XMLDocument()
        doc.add_root("a")
        with pytest.raises(DocumentError):
            doc.add_root("b")
        with pytest.raises(DocumentError):
            doc.append_child(DOCUMENT_ID, NodeKind.ELEMENT, "c")

    def test_text_cannot_have_children(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        t = doc.append_child(root, NodeKind.TEXT, "hello")
        with pytest.raises(DocumentError):
            doc.append_child(t, NodeKind.ELEMENT, "b")

    def test_document_kind_cannot_be_created(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        with pytest.raises(DocumentError):
            doc.append_child(root, NodeKind.DOCUMENT, "/")

    def test_unknown_node_raises(self):
        doc = XMLDocument()
        ghost = DOCUMENT_ID.child(object())  # never installed
        with pytest.raises(DocumentError):
            doc.node(ghost)
        assert doc.get(ghost) is None


class TestGeometry:
    def test_children_in_document_order(self, medical):
        root = medical.root
        kids = medical.children(root)
        assert [medical.label(k) for k in kids] == ["franck", "robert"]

    def test_parent_of_root_is_document(self, medical):
        assert medical.parent(medical.root) == DOCUMENT_ID
        assert medical.parent(DOCUMENT_ID) is None

    def test_descendants_order_and_count(self, medical):
        root = medical.root
        labels = [medical.label(n) for n in medical.descendants(root)]
        assert labels == [
            "franck",
            "service",
            "otolarynology",
            "diagnosis",
            "tonsillitis",
            "robert",
            "service",
            "pneumology",
            "diagnosis",
            "pneumonia",
        ]

    def test_descendants_or_self_includes_self(self, medical):
        root = medical.root
        nodes = list(medical.descendants_or_self(root))
        assert nodes[0] == root
        assert len(nodes) == 11

    def test_ancestors(self, medical):
        franck = medical.children(medical.root)[0]
        service = medical.children(franck)[0]
        chain = list(medical.ancestors(service))
        assert chain == [franck, medical.root, DOCUMENT_ID]

    def test_sibling_axes(self, medical):
        franck, robert = medical.children(medical.root)
        assert medical.following_siblings(franck) == [robert]
        assert medical.preceding_siblings(franck) == []
        assert medical.preceding_siblings(robert) == [franck]
        assert medical.following_siblings(robert) == []

    def test_following_crosses_subtrees(self, medical):
        franck = medical.children(medical.root)[0]
        service = medical.children(franck)[0]
        following = medical.following(service)
        labels = [medical.label(n) for n in following]
        # Everything after service's subtree in document order.
        assert labels == [
            "diagnosis",
            "tonsillitis",
            "robert",
            "service",
            "pneumology",
            "diagnosis",
            "pneumonia",
        ]

    def test_preceding_is_reverse_document_order(self, medical):
        robert = medical.children(medical.root)[1]
        preceding = medical.preceding(robert)
        labels = [medical.label(n) for n in preceding]
        assert labels == [
            "tonsillitis",
            "diagnosis",
            "otolarynology",
            "service",
            "franck",
        ]

    def test_following_and_preceding_partition(self, medical):
        """following + preceding + ancestors + descendants-or-self
        partition the element/text nodes (the XPath axes identity)."""
        all_nodes = set(medical.all_nodes())
        for nid in all_nodes:
            if medical.kind(nid) is NodeKind.ATTRIBUTE:
                continue
            parts = (
                set(medical.following(nid))
                | set(medical.preceding(nid))
                | set(medical.ancestors(nid))
                | set(medical.descendants_or_self(nid))
            )
            non_attr = {
                n for n in all_nodes if medical.kind(n) is not NodeKind.ATTRIBUTE
            }
            assert parts == non_attr

    def test_string_value_of_element(self, medical):
        franck = medical.children(medical.root)[0]
        assert medical.string_value(franck) == "otolarynologytonsillitis"

    def test_string_value_of_text(self, medical):
        franck = medical.children(medical.root)[0]
        service = medical.children(franck)[0]
        t = medical.children(service)[0]
        assert medical.string_value(t) == "otolarynology"


class TestFacts:
    def test_fact_count(self, medical):
        # document node + 11 element/text nodes
        assert len(medical.facts()) == 12

    def test_child_facts_match_children(self, medical):
        facts = medical.child_facts()
        for child, parent in facts:
            assert child in medical.children(parent)
        total = sum(len(medical.children(n)) for n in medical.all_nodes())
        assert len(facts) == total

    def test_path_string(self, medical):
        franck = medical.children(medical.root)[0]
        service = medical.children(franck)[0]
        t = medical.children(service)[0]
        assert medical.path_string(DOCUMENT_ID) == "/"
        assert medical.path_string(franck) == "/patients/franck"
        assert medical.path_string(t) == "/patients/franck/service/text()"

    def test_path_string_disambiguates_same_names(self):
        doc = parse_xml("<r><a/><a/></r>")
        first, second = doc.children(doc.root)
        assert doc.path_string(first) == "/r/a[1]"
        assert doc.path_string(second) == "/r/a[2]"


class TestMutation:
    def test_relabel(self, medical):
        franck = medical.children(medical.root)[0]
        medical.relabel(franck, "francois")
        assert medical.label(franck) == "francois"

    def test_relabel_document_node_rejected(self, medical):
        with pytest.raises(DocumentError):
            medical.relabel(DOCUMENT_ID, "nope")

    def test_remove_subtree_counts_nodes(self, medical):
        franck = medical.children(medical.root)[0]
        removed = medical.remove_subtree(franck)
        assert removed == 5
        assert franck not in medical
        assert len(medical.children(medical.root)) == 1

    def test_remove_document_node_rejected(self, medical):
        with pytest.raises(DocumentError):
            medical.remove_subtree(DOCUMENT_ID)

    def test_insert_before_and_after(self, medical):
        franck, robert = medical.children(medical.root)
        a = medical.insert_before(franck, NodeKind.ELEMENT, "aaa")
        z = medical.insert_after(robert, NodeKind.ELEMENT, "zzz")
        labels = [medical.label(k) for k in medical.children(medical.root)]
        assert labels == ["aaa", "franck", "robert", "zzz"]
        m = medical.insert_after(franck, NodeKind.ELEMENT, "mmm")
        labels = [medical.label(k) for k in medical.children(medical.root)]
        assert labels == ["aaa", "franck", "mmm", "robert", "zzz"]

    def test_insert_sibling_of_document_rejected(self, medical):
        with pytest.raises(DocumentError):
            medical.insert_before(DOCUMENT_ID, NodeKind.ELEMENT, "x")

    def test_existing_ids_stable_across_inserts(self, medical):
        """The paper's persistence requirement (default scheme)."""
        before = {nid for nid in medical.all_nodes()}
        franck = medical.children(medical.root)[0]
        for _ in range(20):
            medical.insert_after(franck, NodeKind.ELEMENT, "filler")
        assert before <= set(medical.all_nodes())
        assert medical.renumber_count == 0

    def test_copy_is_independent(self, medical):
        dup = medical.copy()
        franck = medical.children(medical.root)[0]
        medical.relabel(franck, "changed")
        assert dup.label(franck) == "franck"
        medical.remove_subtree(franck)
        assert franck in dup


class TestAttributes:
    def test_set_and_read_attribute(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        attr = doc.set_attribute(root, "id", "42")
        assert doc.attribute_value(root, "id") == "42"
        assert doc.attributes(root) == [attr]

    def test_overwrite_attribute_keeps_id(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        first = doc.set_attribute(root, "id", "1")
        second = doc.set_attribute(root, "id", "2")
        assert first == second
        assert doc.attribute_value(root, "id") == "2"

    def test_attribute_on_text_rejected(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        t = doc.append_child(root, NodeKind.TEXT, "x")
        with pytest.raises(DocumentError):
            doc.set_attribute(t, "id", "1")

    def test_attributes_not_in_child_axis(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        doc.set_attribute(root, "id", "1")
        doc.append_child(root, NodeKind.ELEMENT, "b")
        assert [doc.label(c) for c in doc.children(root)] == ["b"]
        assert [doc.label(a) for a in doc.attributes(root)] == ["id"]

    def test_missing_attribute_value_is_none(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        assert doc.attribute_value(root, "nope") is None


class TestRenumbering:
    def test_renumbering_scheme_rewrites_ids(self):
        doc = parse_xml("<r><a/><b/></r>", scheme=RenumberingScheme())
        a = doc.children(doc.root)[0]
        doc.insert_after(a, NodeKind.ELEMENT, "m")
        assert doc.renumber_count == 1
        assert doc.renumbered_nodes > 0
        assert doc.last_renumber_mapping  # stale ids are re-resolvable
        labels = [doc.label(k) for k in doc.children(doc.root)]
        assert labels == ["a", "m", "b"]

    def test_renumber_mapping_resolves_stale_ids(self):
        doc = parse_xml("<r><a/><b/></r>", scheme=RenumberingScheme())
        a = doc.children(doc.root)[0]
        doc.insert_after(a, NodeKind.ELEMENT, "m0")
        a = doc.last_renumber_mapping.get(a, a)
        assert doc.label(a) == "a"

    def test_persistent_scheme_never_renumbers(self):
        doc = parse_xml("<r><a/><b/></r>")
        a = doc.children(doc.root)[0]
        for i in range(50):
            doc.insert_after(a, NodeKind.ELEMENT, f"m{i}")
        assert doc.renumber_count == 0
        assert doc.last_renumber_mapping == {}


class TestCommentsAndValues:
    def test_comment_nodes_via_api(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        c = doc.append_child(root, NodeKind.COMMENT, "remark")
        assert doc.kind(c) is NodeKind.COMMENT
        assert c in doc.children(root)
        from repro.xpath import XPathEngine

        engine = XPathEngine()
        assert engine.select(doc, "//comment()") == [c]
        # comment() is excluded from element name tests.
        assert engine.select(doc, "/a/*") == []

    def test_set_value_on_attribute(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        attr = doc.set_attribute(root, "k", "v1")
        doc.set_value(attr, "v2")
        assert doc.attribute_value(root, "k") == "v2"

    def test_set_value_on_document_rejected(self):
        doc = XMLDocument()
        with pytest.raises(DocumentError):
            doc.set_value(DOCUMENT_ID, "x")

    def test_insert_sibling_of_attribute_rejected(self):
        doc = XMLDocument()
        root = doc.add_root("a")
        attr = doc.set_attribute(root, "k", "v")
        with pytest.raises(DocumentError):
            doc.insert_before(attr, NodeKind.ELEMENT, "b")
        with pytest.raises(DocumentError):
            doc.insert_after(attr, NodeKind.ELEMENT, "b")

    def test_mutation_stamp_tracks_all_mutations(self):
        doc = XMLDocument()
        before = doc.mutation_stamp
        root = doc.add_root("a")
        doc.set_attribute(root, "k", "v")
        doc.relabel(root, "b")
        assert doc.mutation_stamp > before
