"""Node model for the XML tree substrate.

The paper models a document as a set of facts ``node(n, v)`` where ``n``
is a persistent identifier and ``v`` the node's *label*: the element name
for element nodes, the character data for text nodes (section 3.1).  We
additionally distinguish node kinds -- element, text, attribute, and the
unique document node -- because XPath node tests need them, while keeping
the paper's flat ``(identifier, label)`` fact view available through
:meth:`Node.fact`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Tuple

from .labels import NodeId

__all__ = ["NodeKind", "Node", "RESTRICTED"]


#: The special label shown in a user's view for nodes on which the user
#: holds only the *position* privilege (paper section 2.1; the label was
#: introduced by Sandhu & Jajodia for multilevel databases [19]).
RESTRICTED = "RESTRICTED"


class NodeKind(enum.Enum):
    """The kind of a tree node.

    The paper's formal model only distinguishes nodes by their labels, but
    the XPath substrate needs kinds for node tests (``text()``,
    ``node()``, name tests, the ``attribute`` axis).
    """

    DOCUMENT = "document"
    ELEMENT = "element"
    TEXT = "text"
    ATTRIBUTE = "attribute"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


@dataclass(frozen=True)
class Node:
    """One node of an XML document.

    Attributes:
        nid: persistent identifier (never reused, stable across updates
            under a persistent numbering scheme).
        kind: the node kind.
        label: the paper's ``v`` -- element/attribute name, or the text
            value for text and comment nodes.
        value: attribute value, or processing-instruction data; ``""``
            for other kinds (attributes are ``name=value`` pairs, which
            the paper folds into labels; we keep both parts).
    """

    nid: NodeId
    kind: NodeKind
    label: str
    value: str = ""

    @property
    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    @property
    def is_text(self) -> bool:
        return self.kind is NodeKind.TEXT

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_document(self) -> bool:
        return self.kind is NodeKind.DOCUMENT

    def fact(self) -> Tuple[NodeId, str]:
        """The paper's ``node(n, v)`` fact for this node."""
        return (self.nid, self.label)

    def relabelled(self, new_label: str) -> "Node":
        """A copy of this node carrying ``new_label`` (same identifier)."""
        return replace(self, label=new_label)

    def string_value(self) -> str:
        """The XPath string-value contribution of this single node.

        For text nodes this is the text; for attributes the attribute
        value.  Elements aggregate their descendants' text, which is
        computed at the document level (:meth:`XMLDocument.string_value`).
        """
        if self.kind is NodeKind.TEXT or self.kind is NodeKind.COMMENT:
            return self.label
        if self.kind is NodeKind.ATTRIBUTE:
            return self.value
        if self.kind is NodeKind.PROCESSING_INSTRUCTION:
            return self.value
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.is_document:
            return "Node(/)"
        if self.is_text:
            return f"Node({self.nid!r}, text={self.label!r})"
        if self.is_attribute:
            return f"Node({self.nid!r}, @{self.label}={self.value!r})"
        return f"Node({self.nid!r}, <{self.label}>)"
