"""The paper's running example, reproduced exactly.

Builders for:

- :func:`medical_document` -- the document of **figure 2** (patients
  franck and robert with service and diagnosis records);
- :func:`hospital_subjects` -- the subject hierarchy of **figure 3**
  (staff {secretary, doctor, epidemiologist} and patient trees, users
  beaufort, laporte, richard, robert, franck);
- :func:`hospital_policy` -- the 12-rule policy of **equation 13**;
- :func:`hospital_database` -- the three assembled into a
  :class:`~repro.security.database.SecureXMLDatabase`.

These fixtures drive the paper-reproduction experiments E1-E11 (see
DESIGN.md) and the example programs.

One documented deviation: the paper writes rule 5 as
``/patients/descendant-or-self::*[$USER]``.  Read compositionally, that
path selects only the single element *named* by the user's login, yet
the paper's own printed view for patient robert (section 4.4.1)
includes robert's whole medical file -- service, diagnosis and their
text.  The intended meaning is plainly "the subtree rooted at the
element named $USER", so the policy here uses the equivalent standard
XPath ``/patients/*[$USER]/descendant-or-self::*``, which regenerates
the paper's view verbatim.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..security.database import SecureXMLDatabase
from ..security.policy import Policy, SecurityRule
from ..security.subjects import SubjectHierarchy
from ..xmltree.document import XMLDocument
from ..xmltree.labels import NumberingScheme
from ..xmltree.parser import parse_xml

__all__ = [
    "MEDICAL_XML",
    "medical_document",
    "hospital_subjects",
    "hospital_policy",
    "hospital_database",
    "PAPER_POLICY_RULES",
]

#: The document of figure 2, extended with robert's record as printed in
#: the section 4.4.1 views (nodes n7-n11).
MEDICAL_XML = """\
<patients>
  <franck>
    <service>otolarynology</service>
    <diagnosis>tonsillitis</diagnosis>
  </franck>
  <robert>
    <service>pneumology</service>
    <diagnosis>pneumonia</diagnosis>
  </robert>
</patients>
"""

#: The twelve rules of equation 13 as (effect, privilege, path, subject)
#: tuples, in priority order 10..21 -- rule 5's path rewritten as
#: documented in the module docstring.
PAPER_POLICY_RULES: Tuple[Tuple[str, str, str, str], ...] = (
    ("accept", "read", "//*", "staff"),                                   # 1 (t=10)
    ("deny", "read", "//diagnosis/*", "secretary"),                       # 2 (t=11)
    ("accept", "position", "//diagnosis/*", "secretary"),                 # 3 (t=12)
    ("accept", "read", "/patients", "patient"),                           # 4 (t=13)
    ("accept", "read", "/patients/*[$USER]/descendant-or-self::*", "patient"),  # 5 (t=14)
    ("deny", "read", "/patients/*", "epidemiologist"),                    # 6 (t=15)
    ("accept", "position", "/patients/*", "epidemiologist"),              # 7 (t=16)
    ("accept", "insert", "/patients", "secretary"),                       # 8 (t=17)
    ("accept", "update", "/patients/*", "secretary"),                     # 9 (t=18)
    ("accept", "insert", "//diagnosis", "doctor"),                        # 10 (t=19)
    ("accept", "update", "//diagnosis/*", "doctor"),                      # 11 (t=20)
    ("accept", "delete", "//diagnosis/*", "doctor"),                      # 12 (t=21)
)


def medical_document(scheme: "NumberingScheme | None" = None) -> XMLDocument:
    """The figure-2 document as a fresh :class:`XMLDocument`."""
    return parse_xml(MEDICAL_XML, scheme)


def hospital_subjects() -> SubjectHierarchy:
    """The figure-3 hierarchy: roles and users with their isa facts."""
    subjects = SubjectHierarchy()
    subjects.add_role("staff")
    subjects.add_role("secretary", member_of="staff")
    subjects.add_role("doctor", member_of="staff")
    subjects.add_role("epidemiologist", member_of="staff")
    subjects.add_role("patient")
    subjects.add_user("beaufort", member_of="secretary")
    subjects.add_user("laporte", member_of="doctor")
    subjects.add_user("richard", member_of="epidemiologist")
    subjects.add_user("robert", member_of="patient")
    subjects.add_user("franck", member_of="patient")
    return subjects


def hospital_policy(subjects: SubjectHierarchy) -> Policy:
    """The equation-13 policy with the paper's priorities 10..21."""
    policy = Policy(subjects)
    for offset, (effect, privilege, path, subject) in enumerate(PAPER_POLICY_RULES):
        priority = 10 + offset
        if effect == "accept":
            policy.grant(privilege, path, subject, priority=priority)
        else:
            policy.deny(privilege, path, subject, priority=priority)
    return policy


def hospital_database(
    scheme: "NumberingScheme | None" = None,
) -> SecureXMLDatabase:
    """The fully assembled running example of the paper."""
    subjects = hospital_subjects()
    policy = hospital_policy(subjects)
    return SecureXMLDatabase(medical_document(scheme), subjects, policy)
