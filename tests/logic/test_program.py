"""Program container and stratification."""

import pytest

from repro.logic import Program, StratificationError, Var, atom, neg, pos

X, Y = Var("X"), Var("Y")


class TestFacts:
    def test_fact_storage(self):
        p = Program()
        p.fact("edge", 1, 2)
        p.fact("edge", 2, 3)
        assert p.facts_for("edge") == {(1, 2), (2, 3)}

    def test_duplicate_facts_deduped(self):
        p = Program()
        p.fact("a", 1)
        p.fact("a", 1)
        assert len(p.facts_for("a")) == 1

    def test_non_ground_fact_rejected(self):
        p = Program()
        with pytest.raises(ValueError):
            p.fact("a", X)

    def test_unknown_predicate_has_no_facts(self):
        assert Program().facts_for("nope") == set()


class TestRules:
    def test_unsafe_rule_rejected_at_insertion(self):
        p = Program()
        with pytest.raises(ValueError):
            p.rule(atom("q", X, Y), pos("p", X))

    def test_predicates_collects_all(self):
        p = Program()
        p.fact("e", 1)
        p.rule(atom("q", X), pos("e", X), neg("r", X))
        assert p.predicates() == {"e", "q", "r"}
        assert p.idb_predicates() == {"q"}

    def test_extend_merges(self):
        a, b = Program(), Program()
        a.fact("p", 1)
        b.fact("p", 2)
        b.rule(atom("q", X), pos("p", X))
        a.extend(b)
        assert a.facts_for("p") == {(1,), (2,)}
        assert len(a.rules) == 1


class TestStratification:
    def test_positive_recursion_single_stratum(self):
        p = Program()
        p.rule(atom("t", X, Y), pos("e", X, Y))
        p.rule(atom("t", X, Y), pos("t", X, Y))
        strata = p.stratify()
        assert len(strata) == 1

    def test_negation_forces_higher_stratum(self):
        p = Program()
        p.rule(atom("q", X), pos("e", X))
        p.rule(atom("r", X), pos("e", X), neg("q", X))
        strata = p.stratify()
        assert len(strata) == 2
        assert strata[0][0].head.predicate == "q"
        assert strata[1][0].head.predicate == "r"

    def test_negative_cycle_rejected(self):
        p = Program()
        p.rule(atom("a", X), pos("e", X), neg("b", X))
        p.rule(atom("b", X), pos("e", X), neg("a", X))
        with pytest.raises(StratificationError):
            p.stratify()

    def test_self_negation_rejected(self):
        p = Program()
        p.rule(atom("a", X), pos("e", X), neg("a", X))
        with pytest.raises(StratificationError):
            p.stratify()

    def test_long_chain_stratifies(self):
        p = Program()
        p.rule(atom("s1", X), pos("e", X))
        for i in range(1, 6):
            p.rule(atom(f"s{i + 1}", X), pos("e", X), neg(f"s{i}", X))
        assert len(p.stratify()) == 6
