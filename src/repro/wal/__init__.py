"""Durability: write-ahead logging, checkpointing, crash recovery.

The paper's update semantics makes the post-update theory ``dbnew`` a
deterministic function of ``db`` and the committed XUpdate script
(formulae (2)-(9)), so this subsystem logs commits *logically*: one
checksummed record carrying the script (or, for commits with no XUpdate
spelling, the full state), appended and optionally fsynced before the
new document is installed.  Recovery loads the newest checkpoint
snapshot, truncates the torn tail a crash left (reported, never
replayed), and replays the committed prefix through the real secure
executor path -- so the recovered database matches a from-scratch build
of the same commits: document, version, policy, and every user's
authorized view.

Typical lifecycle::

    from repro.wal import WriteAheadLog, recover

    wal = WriteAheadLog("db.wal", fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)            # cover the pre-attach state
    ...                           # commits are now write-ahead durable

    # after a crash:
    result = recover("db.wal", repair=True)
    db = result.database
    db.attach_wal(WriteAheadLog("db.wal"))

See DESIGN.md section 10 for the record format, the fsync policies and
the torn-tail rule.
"""

from .log import (
    Checkpoint,
    DamageClass,
    FsyncPolicy,
    QUARANTINE_SUFFIX,
    ScanResult,
    TornTail,
    WalRecord,
    WalStream,
    WriteAheadLog,
    classify_damage,
    list_checkpoints,
    quarantine_reason,
    quarantine_segment,
    quarantined_segments,
    scan_directory,
    scan_segment,
)
from .recover import (
    RecoveryResult,
    apply_record,
    load_newest_checkpoint,
    recover,
)

__all__ = [
    "Checkpoint",
    "DamageClass",
    "FsyncPolicy",
    "QUARANTINE_SUFFIX",
    "RecoveryResult",
    "ScanResult",
    "TornTail",
    "WalRecord",
    "WalStream",
    "WriteAheadLog",
    "apply_record",
    "classify_damage",
    "list_checkpoints",
    "load_newest_checkpoint",
    "quarantine_reason",
    "quarantine_segment",
    "quarantined_segments",
    "recover",
    "scan_directory",
    "scan_segment",
]
