"""E3-E6 (section 3.4): the four XUpdate worked examples.

Regenerates: the derived fact set F after each operation, exactly as
printed in the paper, and times the unsecured executors (formulae 2-9).
"""

import pytest

from repro.core import MEDICAL_XML
from repro.xmltree import element, parse_xml
from repro.xupdate import (
    Append,
    Remove,
    Rename,
    UpdateContent,
    XUpdateExecutor,
)

EXECUTOR = XUpdateExecutor()


@pytest.fixture
def doc():
    return parse_xml(MEDICAL_XML)


def labels(doc):
    return sorted(doc.label(n) for n in doc.all_nodes())


def test_e3_rename_service_to_department(benchmark, doc):
    def run():
        new = EXECUTOR.apply(doc, Rename("//service", "department")).document
        assert labels(new).count("department") == 2
        assert "service" not in labels(new)
        return new

    benchmark(run)


def test_e4_update_diagnosis_to_pharyngitis(benchmark, doc):
    def run():
        new = EXECUTOR.apply(
            doc, UpdateContent("/patients/franck/diagnosis", "pharyngitis")
        ).document
        assert "pharyngitis" in labels(new)
        assert "tonsillitis" not in labels(new)
        return new

    benchmark(run)


def test_e5_append_albert_record(benchmark, doc):
    tree = element(
        "albert", element("service", "cardiology"), element("diagnosis")
    )

    def run():
        result = EXECUTOR.apply(doc, Append("/patients", tree))
        new = result.document
        assert "albert" in labels(new)
        # The paper's derived geometry: albert is the last subtree.
        assert new.label(new.children(new.root)[-1]) == "albert"
        return new

    benchmark(run)


def test_e6_remove_franck_diagnosis(benchmark, doc):
    def run():
        new = EXECUTOR.apply(
            doc, Remove("/patients/franck/diagnosis")
        ).document
        assert "tonsillitis" not in labels(new)
        assert labels(new).count("diagnosis") == 1
        return new

    benchmark(run)
