"""XUpdate serialization: the round trip the log's replayability rests on."""

import pytest

from repro.xmltree import element, text
from repro.xmltree.fragments import Fragment
from repro.xmltree.node import NodeKind
from repro.xupdate import (
    Append,
    Remove,
    Rename,
    UpdateScript,
    XUpdateSerializeError,
    dump_xupdate,
    parse_xupdate,
)

XUPDATE_NS = 'xmlns:xupdate="http://www.xmldb.org/xupdate"'

SCRIPTS = [
    # one of each instruction, plus nested construction
    f"""<xupdate:modifications {XUPDATE_NS}>
      <xupdate:append select="/log">
        <xupdate:element name="entry">
          <xupdate:attribute name="kind">note</xupdate:attribute>
          hello
          <xupdate:element name="sub">deep</xupdate:element>
        </xupdate:element>
      </xupdate:append>
    </xupdate:modifications>""",
    f"""<xupdate:modifications {XUPDATE_NS}>
      <xupdate:insert-before select="/log/entry[1]">
        <xupdate:element name="first">x</xupdate:element>
      </xupdate:insert-before>
      <xupdate:insert-after select="/log/entry[1]">
        <xupdate:element name="second"/>
      </xupdate:insert-after>
    </xupdate:modifications>""",
    f"""<xupdate:modifications {XUPDATE_NS}>
      <xupdate:update select="/log/entry">rewritten</xupdate:update>
      <xupdate:rename select="/log/entry">renamed</xupdate:rename>
      <xupdate:remove select="/log/renamed"/>
    </xupdate:modifications>""",
    # comment constructor and an emptying update
    f"""<xupdate:modifications {XUPDATE_NS}>
      <xupdate:append select="/log">
        <xupdate:element name="entry"><xupdate:comment>why</xupdate:comment>
        </xupdate:element>
      </xupdate:append>
      <xupdate:update select="/log/entry[1]"/>
    </xupdate:modifications>""",
]


@pytest.mark.parametrize("source", SCRIPTS, ids=["append", "inserts",
                                                 "mutators", "comment"])
def test_round_trip(source):
    script = parse_xupdate(source)
    out = dump_xupdate(script)
    assert parse_xupdate(out) == script


def test_single_operation_becomes_a_script():
    out = dump_xupdate(Remove("/log/entry"))
    script = parse_xupdate(out)
    assert list(script) == [Remove("/log/entry")]


def test_label_colliding_with_the_prefix_survives():
    """Constructor syntax exists exactly for labels like this one."""
    script = UpdateScript(
        (Append("/log", element("xupdate:element", "tricky")),)
    )
    assert parse_xupdate(dump_xupdate(script)) == script


class TestRefusals:
    def test_whitespace_only_text_tree(self):
        with pytest.raises(XUpdateSerializeError):
            dump_xupdate(Append("/log", text("   ")))

    def test_attribute_fragment(self):
        frag = Fragment(NodeKind.ATTRIBUTE, "a")
        with pytest.raises(XUpdateSerializeError):
            dump_xupdate(Append("/log", frag))

    def test_rename_target_that_parsing_would_strip(self):
        with pytest.raises(XUpdateSerializeError):
            dump_xupdate(Rename("/log/entry", "padded "))
