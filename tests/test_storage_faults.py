"""Crash-safe persistence: interrupted saves never corrupt the file."""

import glob
import os

import pytest

from repro.core import hospital_database
from repro.storage import (
    backup_path,
    dump_database,
    load_from_file,
    save_to_file,
)
from repro.testing.faults import InjectedFault, inject
from repro.xupdate import Rename

pytestmark = pytest.mark.fault

STORAGE_KILL_POINTS = ("mid-write", "before-rename")


def modified_database():
    db = hospital_database()
    db.admin_update(Rename("//service", "ward"))
    return db


@pytest.fixture
def saved(tmp_path):
    """A committed database file plus its exact on-disk bytes."""
    path = str(tmp_path / "db.xml")
    save_to_file(hospital_database(), path)
    with open(path, "r", encoding="utf-8") as handle:
        return path, handle.read()


class TestInterruptedSave:
    @pytest.mark.parametrize("point", STORAGE_KILL_POINTS)
    def test_previous_file_survives_byte_identical(self, saved, point):
        path, committed = saved
        with inject(point):
            with pytest.raises(InjectedFault):
                save_to_file(modified_database(), path)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == committed

    @pytest.mark.parametrize("point", STORAGE_KILL_POINTS)
    def test_previous_file_stays_loadable(self, saved, point):
        path, committed = saved
        with inject(point):
            with pytest.raises(InjectedFault):
                save_to_file(modified_database(), path)
        again = load_from_file(path)
        assert dump_database(again) + "\n" == committed

    @pytest.mark.parametrize("point", STORAGE_KILL_POINTS)
    def test_no_temp_file_litter(self, saved, point):
        path, _ = saved
        with inject(point):
            with pytest.raises(InjectedFault):
                save_to_file(modified_database(), path)
        assert glob.glob(os.path.join(os.path.dirname(path), "*.tmp")) == []

    @pytest.mark.parametrize("point", STORAGE_KILL_POINTS)
    def test_retry_after_interruption_succeeds(self, saved, point):
        path, _ = saved
        db = modified_database()
        with inject(point):
            with pytest.raises(InjectedFault):
                save_to_file(db, path)
        save_to_file(db, path)
        assert "ward" in dump_database(load_from_file(path))

    @pytest.mark.parametrize("point", STORAGE_KILL_POINTS)
    def test_first_save_interruption_leaves_no_file(self, tmp_path, point):
        path = str(tmp_path / "fresh.xml")
        with inject(point):
            with pytest.raises(InjectedFault):
                save_to_file(hospital_database(), path)
        assert not os.path.exists(path)


class TestRollingBackup:
    def test_successful_save_keeps_previous_content_in_bak(self, saved):
        path, committed = saved
        save_to_file(modified_database(), path)
        with open(backup_path(path), "r", encoding="utf-8") as handle:
            assert handle.read() == committed
        # The backup is itself a loadable database.
        assert load_from_file(backup_path(path)).document.root is not None

    def test_first_save_creates_no_backup(self, tmp_path):
        path = str(tmp_path / "db.xml")
        save_to_file(hospital_database(), path)
        assert not os.path.exists(backup_path(path))

    def test_backup_can_be_disabled(self, saved):
        path, _ = saved
        save_to_file(modified_database(), path, backup=False)
        assert not os.path.exists(backup_path(path))

    def test_backup_rolls_forward(self, saved):
        path, first = saved
        db2 = modified_database()
        save_to_file(db2, path)
        save_to_file(hospital_database(), path)
        with open(backup_path(path), "r", encoding="utf-8") as handle:
            assert handle.read() == dump_database(db2) + "\n"
