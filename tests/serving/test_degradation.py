"""Graceful degradation: cache failures never fail a read.

The degradation ladder (DESIGN.md §9), bottom-up:

1. a resolver path-patch that raises drops the cached selection and
   re-evaluates from scratch;
2. a view-cache patch that raises discards the entry and rebuilds the
   materialization;
3. a shared-cache failure of any kind falls back to a per-session
   ``ViewBuilder`` build.

Every rung is counted (``degraded_rebuilds`` / ``degraded_view_serves``
in ``db.stats()``) and the served view is always identical to the
from-scratch derivation.
"""

import pytest

from repro.core import hospital_database
from repro.security import Policy, SecureXMLDatabase, SubjectHierarchy, SubjectError
from repro.security.view import ViewBuilder
from repro.security import perm as perm_module
from repro.xmltree import XMLDocument, element, serialize, text
from repro.xupdate import Rename


def role_database(users=("n1", "n2")) -> SecureXMLDatabase:
    """Users sharing one role: one fingerprint, one cached view."""
    doc = XMLDocument()
    root = doc.add_root("patients")
    element("patient", element("diagnosis", text("flu"))).attach(doc, root)
    element("patient", element("diagnosis", text("cold"))).attach(doc, root)
    subjects = SubjectHierarchy()
    subjects.add_role("nurse")
    for user in users:
        subjects.add_user(user, member_of="nurse")
    policy = Policy(subjects)
    policy.grant("read", "//*", "nurse")
    policy.deny("read", "//diagnosis/descendant-or-self::*", "nurse")
    policy.grant("position", "//diagnosis", "nurse")
    return SecureXMLDatabase(doc, subjects, policy)


def fresh_view(db, user):
    return ViewBuilder().build(db.document, db.policy, user)


class TestSharedCacheFallback:
    def test_cache_crash_falls_back_to_per_session_build(self, monkeypatch):
        db = hospital_database()

        def broken(database, user):
            raise RuntimeError("cache corrupted")

        monkeypatch.setattr(db._view_cache, "view_for", broken)
        view = db.build_view("laporte")  # the read still succeeds
        fresh = fresh_view(db, "laporte")
        assert view.facts() == fresh.facts()
        assert serialize(view.doc) == serialize(fresh.doc)
        assert db.stats()["degraded_view_serves"] == 1

    def test_every_read_is_served_while_degraded(self, monkeypatch):
        db = hospital_database()
        monkeypatch.setattr(
            db._view_cache,
            "view_for",
            lambda database, user: (_ for _ in ()).throw(KeyError("bug")),
        )
        for user in ("laporte", "beaufort", "richard"):
            view = db.build_view(user)
            assert view.facts() == fresh_view(db, user).facts()
        assert db.stats()["degraded_view_serves"] == 3

    def test_domain_errors_still_propagate(self, monkeypatch):
        # SubjectError is a real answer, not a cache failure: it must
        # not be swallowed into a degraded rebuild.
        db = hospital_database()
        with pytest.raises(SubjectError):
            db.build_view("nobody")
        assert db.stats()["degraded_view_serves"] == 0

    def test_sessions_read_through_the_fallback(self, monkeypatch):
        db = hospital_database()
        monkeypatch.setattr(
            db._view_cache,
            "view_for",
            lambda database, user: (_ for _ in ()).throw(RuntimeError("bug")),
        )
        xml = db.login("laporte").read_xml()
        assert "diagnosis" in xml


class TestViewPatchDegradation:
    def test_failing_patch_discards_entry_and_rebuilds(self, monkeypatch):
        db = role_database()
        db.build_view("n1")  # populate the cache
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))

        def broken_patch(*args, **kwargs):
            raise RuntimeError("mid-patch failure")

        monkeypatch.setattr(db._view_cache, "_patch", broken_patch)
        before = db.stats()
        view = db.build_view("n1")  # patch path raises; rebuild kicks in
        after = db.stats()
        assert after["view_degraded_rebuilds"] == before["view_degraded_rebuilds"] + 1
        assert after["view_full_builds"] == before["view_full_builds"] + 1
        assert after["view_incremental_patches"] == before["view_incremental_patches"]
        fresh = fresh_view(db, "n1")
        assert view.facts() == fresh.facts()
        assert serialize(view.doc) == serialize(fresh.doc)
        assert after["degraded_view_serves"] == 0  # ladder stopped in-cache

    def test_degraded_entry_recovers_afterwards(self, monkeypatch):
        db = role_database()
        db.build_view("n1")
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))
        monkeypatch.setattr(
            db._view_cache, "_patch", lambda *a, **k: 1 / 0
        )
        db.build_view("n1")  # degraded rebuild re-primes the cache
        monkeypatch.undo()
        db.admin_update(Rename("//patient[2]/diagnosis", "dx2"))
        before = db.stats()
        view = db.build_view("n1")  # healthy again: a normal patch
        after = db.stats()
        assert (
            after["view_incremental_patches"]
            == before["view_incremental_patches"] + 1
        )
        assert view.facts() == fresh_view(db, "n1").facts()

    def test_degraded_rebuilds_roll_up_in_db_stats(self, monkeypatch):
        db = role_database()
        db.build_view("n1")
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))
        monkeypatch.setattr(
            db._view_cache, "_patch", lambda *a, **k: 1 / 0
        )
        total_before = db.stats()["degraded_rebuilds"]
        db.build_view("n1")
        assert db.stats()["degraded_rebuilds"] == total_before + 1


class TestResolverPatchDegradation:
    def test_failing_path_patch_drops_and_rederives(self, monkeypatch):
        db = role_database()
        db.build_view("n1")  # primes the rule-path selection cache

        def broken(*args, **kwargs):
            raise RuntimeError("selection patch bug")

        monkeypatch.setattr(perm_module, "_patch_selection", broken)
        before = dict(db.resolver.stats)
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))
        after = dict(db.resolver.stats)
        assert after["degraded_rebuilds"] > before["degraded_rebuilds"]
        assert after["paths_dropped"] > before["paths_dropped"]
        # dropped selections re-evaluate from scratch -- still correct
        view = db.build_view("n1")
        fresh = fresh_view(db, "n1")
        assert view.facts() == fresh.facts()
        assert serialize(view.doc) == serialize(fresh.doc)
