"""E22 (added): the cost of durability and the speed of recovery.

Two questions the write-ahead log raises:

**Commit latency.**  Write-ahead logging puts an append -- and, under
fsync policy ``always``, an fsync -- on every commit's critical path.
Rows compare per-commit latency with no log, ``os`` (append only),
``batch(8,50)`` (bounded-loss group fsync) and ``always`` (a commit
acknowledged is a commit recovered), over the same update stream.  The
invariant behind the numbers: whatever the policy, a clean shutdown
recovers to exactly the live version.

**Recovery time.**  Replay cost grows with the un-checkpointed suffix
of the log, which is precisely what checkpointing bounds: recovering a
log of N commits is compared with recovering the same history after a
checkpoint (replay starts at the snapshot; the records before it are
dead weight on disk, not replay work).

The smoke variant (``-k smoke``) runs the same invariants at toy sizes
with no timing bars, so the lane stays meaningful on loaded CI
machines.
"""

import shutil
import time

from conftest import print_series, synthetic_hospital

from repro.wal import WriteAheadLog, recover
from repro.xupdate import UpdateContent

PATIENTS = 100
COMMITS = 60
REPLAY_SIZES = (20, 80, 240)

ILLNESS = "angina"


def committed_stream(db, commits):
    """Apply ``commits`` deterministic diagnosis updates through the
    unsecured admin path (each is one WAL record)."""
    for index in range(commits):
        db.admin_update(
            UpdateContent(
                f"//patient{index % PATIENTS:05d}/diagnosis",
                f"{ILLNESS}-{index}",
            )
        )


def timed_commits(tmp_path, label, fsync, commits=COMMITS):
    """Per-commit latency with the given durability, plus the recovery
    invariant check; returns (label, mean ms, fsyncs)."""
    db = synthetic_hospital(PATIENTS)
    wal_dir = str(tmp_path / f"{label}.wal")
    fsyncs = 0
    baseline = 0
    if fsync is not None:
        wal = WriteAheadLog(wal_dir, fsync=fsync)
        db.attach_wal(wal)
        wal.checkpoint(db)
        baseline = wal.stats["fsyncs"]  # checkpointing fsyncs regardless
    started = time.perf_counter()
    committed_stream(db, commits)
    elapsed = time.perf_counter() - started
    if fsync is not None:
        fsyncs = wal.stats["fsyncs"] - baseline  # commit-path fsyncs only
        wal.sync()
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.report.clean
        assert result.version == db.version  # nothing acked was lost
        shutil.rmtree(wal_dir)
    return label, elapsed / commits, fsyncs


def test_e22_commit_latency_across_fsync_policies(tmp_path):
    results = [
        timed_commits(tmp_path, "no-wal", None),
        timed_commits(tmp_path, "os", "os"),
        timed_commits(tmp_path, "batch", "batch(8,50)"),
        timed_commits(tmp_path, "always", "always"),
    ]
    rows = [("durability", "commits", "mean ms/commit", "fsyncs")]
    for label, mean, fsyncs in results:
        rows.append((label, COMMITS, f"{mean * 1000:.3f}", fsyncs))
    print_series("E22 commit latency vs durability", rows)
    by_label = {label: fsyncs for label, _mean, fsyncs in results}
    # the policies did what they promise on the fsync axis
    assert by_label["always"] >= COMMITS
    assert 0 < by_label["batch"] < by_label["always"]
    assert by_label["os"] == 0  # commits themselves never fsynced


def recovery_run(tmp_path, commits, checkpointed):
    """Build a log of ``commits`` records and time recovering it."""
    db = synthetic_hospital(PATIENTS)
    wal_dir = str(tmp_path / f"r{commits}-{checkpointed}.wal")
    wal = WriteAheadLog(wal_dir, fsync="os")
    db.attach_wal(wal)
    wal.checkpoint(db)
    committed_stream(db, commits)
    if checkpointed:
        wal.checkpoint(db)
    db.detach_wal().close()
    started = time.perf_counter()
    result = recover(wal_dir)
    elapsed = time.perf_counter() - started
    assert result.report.clean
    assert result.version == commits
    shutil.rmtree(wal_dir)
    return elapsed, result.replayed


def test_e22_checkpoint_bounds_recovery_work(tmp_path):
    rows = [("log", "replayed", "recover ms")]
    replay_times = {}
    for commits in REPLAY_SIZES:
        elapsed, replayed = recovery_run(tmp_path, commits, False)
        assert replayed == commits  # full replay without a checkpoint
        replay_times[commits] = elapsed
        rows.append((f"{commits} commits", replayed, f"{elapsed * 1000:.2f}"))
    elapsed, replayed = recovery_run(tmp_path, REPLAY_SIZES[-1], True)
    rows.append(
        (f"{REPLAY_SIZES[-1]} + checkpoint", replayed,
         f"{elapsed * 1000:.2f}")
    )
    print_series("E22 recovery time vs log length", rows)
    # a checkpoint removes the whole suffix from replay...
    assert replayed == 0
    # ...and recovering from it beats replaying the longest log
    assert elapsed < replay_times[REPLAY_SIZES[-1]]


def test_e22_smoke_durability_invariants(tmp_path):
    """Counter-only smoke: every policy recovers to the live version."""
    for label, fsync in (("os", "os"), ("batch", "batch(4,50)"),
                         ("always", "always")):
        db = synthetic_hospital(10)
        wal_dir = str(tmp_path / f"s-{label}.wal")
        wal = WriteAheadLog(wal_dir, fsync=fsync)
        db.attach_wal(wal)
        wal.checkpoint(db)
        committed_stream(db, 5)
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.report.clean
        assert result.version == 5


def test_e22_smoke_checkpoint_cuts_replay(tmp_path):
    db = synthetic_hospital(10)
    wal_dir = str(tmp_path / "s-ckpt.wal")
    wal = WriteAheadLog(wal_dir, fsync="os")
    db.attach_wal(wal)
    wal.checkpoint(db)
    committed_stream(db, 6)
    wal.checkpoint(db)
    db.detach_wal().close()
    result = recover(wal_dir)
    assert result.report.clean
    assert result.replayed == 0
    assert result.version == 6
