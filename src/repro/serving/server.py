"""The governed serving front-end over :class:`SecureXMLDatabase`.

One :class:`DatabaseServer` wraps one database and turns the library's
one-shot calls into *requests* with a serving contract:

1. **Lock discipline.**  Reads (views, queries) run under the shared
   side of a :class:`~repro.serving.rwlock.RWLock`, so any number of
   sessions serve views concurrently; writes take the exclusive side
   per attempt, so a script's selection, privilege checks and commit
   all observe one frozen database generation.  The backoff *sleep*
   between write attempts happens outside the lock -- a retrying
   writer never starves readers.
2. **Retry with backoff.**  A commit race
   (:class:`~repro.errors.ConcurrentUpdateError` from an interleaved
   commit -- another server, an administrative update) is absorbed by
   re-running the write under the
   :class:`~repro.serving.retry.RetryPolicy`'s decorrelated-jitter
   schedule; the race is invisible to the client unless the policy's
   attempts run out (:class:`~repro.errors.RetryExhausted`).
3. **Deadlines.**  Every request carries a
   :class:`~repro.serving.retry.Deadline` (per-call or the server
   default) checked at each blocking point; on the write path it rides
   the executor's checkpoint hook, so an expired script aborts through
   the savepoint path with nothing committed.
4. **Admission control + circuit breaker.**  An
   :class:`~repro.serving.admission.AdmissionController` bounds
   in-flight requests (``block`` queues, ``shed`` fails fast with
   :class:`~repro.errors.OverloadError`); a
   :class:`~repro.serving.admission.CircuitBreaker` refuses writes
   outright after repeated write failures until a timed probe
   succeeds.
5. **Graceful degradation.**  View serving never fails on a cache
   bug: the shared cache falls back internally (patch -> full build ->
   per-session rebuild, see ``SecureXMLDatabase.build_view``), and
   every degradation is logged and counted in :meth:`stats`.

Shed, timed-out, retry-exhausted and epoch-fenced requests are
recorded in the database's audit log (events ``"shed"`` /
``"deadline"`` / ``"retry-exhausted"`` / ``"fenced"``), exactly like
aborted scripts are.

Example::

    server = DatabaseServer(
        db,
        retry=RetryPolicy(max_attempts=8),
        max_in_flight=64,
        overload="shed",
        default_deadline=0.5,
    )
    xml = server.read_xml("laporte")
    result = server.execute("laporte", script, strict=True)
"""

from __future__ import annotations

import contextlib
import copy
import logging
import os
import random
import threading
import time
from typing import Any, Callable, Dict, Optional, Union

from ..errors import (
    ConcurrentUpdateError,
    DeadlineExceeded,
    DiskFullError,
    DiskIOError,
    OverloadError,
    RetryExhausted,
    StaleEpochError,
    UpdateAborted,
    WalWriteError,
)
from ..security.database import SecureXMLDatabase
from ..security.session import Session
from ..security.write import AccessDenied, SecureUpdateResult
from ..xpath.values import NodeSet, XPathValue
from ..xupdate.operations import UpdateScript, XUpdateOperation
from .admission import AdmissionController, CircuitBreaker
from .dedup import DedupTable, DedupedResult
from .retry import Deadline, RetryPolicy
from .rwlock import RWLock

__all__ = ["DatabaseServer"]

logger = logging.getLogger("repro.serving")


class _WalDegraded(Exception):
    """Internal: the write-ahead log was detached mid-attempt; the
    attempt committed nothing and is safe to re-run.  Never escapes
    the serving layer (:meth:`DatabaseServer.execute` retries it,
    :meth:`DatabaseServer.execute_once` re-raises the original
    :class:`~repro.errors.WalWriteError`, the group committer re-queues
    the member)."""

    def __init__(self, error: WalWriteError) -> None:
        super().__init__(str(error))
        self.error = error


class _DiskFull(Exception):
    """Internal: an append hit ``ENOSPC``; nothing was committed.

    The signal for the disk-full admission ladder (ISSUE 10): the
    retry loop catches it *outside* the write lock, reclaims space
    (re-open the poisoned log, checkpoint to rotate and prune), and
    re-runs the attempt -- or sheds the write with
    :class:`~repro.errors.OverloadError` when reclaim fails.  A full
    disk never detaches the log: snapshot-only durability would fail
    on the same full volume, and shedding is honest back-pressure.
    """

    def __init__(self, error: WalWriteError) -> None:
        super().__init__(str(error))
        self.error = error


class DatabaseServer:
    """A thread-safe, overload-aware front-end over one database.

    Args:
        database: the :class:`SecureXMLDatabase` being served.
        retry: backoff schedule for commit races (default
            :class:`RetryPolicy()`).
        max_in_flight: admission budget; None disables admission
            control.
        overload: ``"block"`` or ``"shed"`` (see
            :class:`AdmissionController`).
        breaker: write circuit breaker; None builds a default one on
            this server's clock.
        default_deadline: seconds applied to requests that pass no
            per-call deadline; None means unbounded.
        wal: a :class:`repro.wal.WriteAheadLog` to attach to the
            database (every commit becomes write-ahead durable); None
            serves whatever durability the database already has.
        wal_failure_threshold: consecutive
            :class:`~repro.errors.WalWriteError` commits after which
            the server *detaches* the failing log and keeps serving
            with snapshot-only durability (counted as ``wal_degraded``
            in :meth:`stats`) rather than refusing every write.
        checkpoint_every: automatically :meth:`checkpoint` after this
            many committed writes; None disables auto-checkpointing.
        dedup_capacity: entries in the exactly-once dedup table
            (idempotency key -> acknowledged summary, FIFO-bounded; see
            :class:`~repro.serving.dedup.DedupTable`).
        scrub_interval: seconds between background integrity-scrub
            steps over the attached log's directory (see
            :class:`repro.scrub.Scrubber`); None (the default) runs no
            background scrub -- :meth:`scrub_step` is still available
            for caller-paced scrubbing.
        scrub_budget: byte budget per scrub step (None = each step is
            a full pass).
        scrub_deep: scrub checkpoints by recomputing their SHA-256
            (not just checking the integrity header exists).
        disk_sick_threshold: consecutive disk-I/O-failed commits after
            which :meth:`stats` reports ``disk_sick`` True -- the
            failover supervisor treats a sick primary disk as a
            promotion reason.
        clock: monotonic time source (injectable for tests).
        sleep: how to wait out a backoff delay (injectable for tests).
        rng: randomness source for jitter (seedable for tests).
    """

    def __init__(
        self,
        database: SecureXMLDatabase,
        *,
        retry: Optional[RetryPolicy] = None,
        max_in_flight: Optional[int] = None,
        overload: str = "block",
        breaker: Optional[CircuitBreaker] = None,
        default_deadline: Optional[float] = None,
        wal=None,
        wal_failure_threshold: int = 3,
        checkpoint_every: Optional[int] = None,
        dedup_capacity: int = 1024,
        scrub_interval: Optional[float] = None,
        scrub_budget: Optional[int] = None,
        scrub_deep: bool = False,
        disk_sick_threshold: int = 3,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._database = database
        if wal is not None:
            database.attach_wal(wal)
        if wal_failure_threshold < 1:
            raise ValueError("wal_failure_threshold must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 or None")
        if scrub_interval is not None and scrub_interval <= 0:
            raise ValueError("scrub_interval must be positive or None")
        if disk_sick_threshold < 1:
            raise ValueError("disk_sick_threshold must be >= 1")
        self._wal_failure_threshold = wal_failure_threshold
        self._wal_consecutive_failures = 0
        self._disk_sick_threshold = disk_sick_threshold
        self._disk_io_consecutive = 0
        self._scrub_interval = scrub_interval
        self._scrub_budget = scrub_budget
        self._scrub_deep = scrub_deep
        self._scrubber = None
        self._scrub_thread: Optional[threading.Thread] = None
        self._scrub_stop = threading.Event()
        self._checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        self._source_path: Optional[str] = None
        self._backup_count = 1
        self._retry = retry if retry is not None else RetryPolicy()
        self._admission = AdmissionController(max_in_flight, overload)
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(clock=clock)
        )
        self._default_deadline = default_deadline
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = RWLock()
        self._dedup = DedupTable(dedup_capacity)
        self._fenced_at: Optional[int] = None
        self._sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "reads": 0,  # read requests served
            "writes": 0,  # write requests committed or cleanly refused
            "commits": 0,  # writes that installed a new generation
            "retries": 0,  # backoff sleeps taken
            "commit_races": 0,  # ConcurrentUpdateError absorbed or not
            "shed": 0,  # requests refused by admission control
            "deadline_exceeded": 0,  # requests that ran out of budget
            "retry_exhausted": 0,  # writes that gave up after max_attempts
            "wal_errors": 0,  # commits refused by a failing write-ahead log
            "wal_degraded": 0,  # times the failing log was detached
            "checkpoints": 0,  # checkpoints taken (manual + automatic)
            "checkpoint_failures": 0,  # auto-checkpoints that failed (logged)
            "group_commits": 0,  # commit groups flushed by a GroupCommitter
            "grouped_records": 0,  # commits that rode a group's single fsync
            "group_fsyncs_saved": 0,  # fsyncs the groups amortized away
            "fenced_writes": 0,  # writes refused because this server is fenced
            "dedup_hits": 0,  # writes answered from the exactly-once ledger
            "promotions": 0,  # times this server was promoted to primary
            "disk_full_events": 0,  # commits that hit ENOSPC on the log
            "disk_io_errors": 0,  # commits that hit EIO-class disk failures
            "space_reclaims": 0,  # successful reopen+checkpoint reclaim runs
            "reclaim_failures": 0,  # reclaim runs that could not free space
            "disk_full_shed": 0,  # writes shed because reclaim failed
            "scrub_quarantines": 0,  # segments the background scrub quarantined
        }
        if scrub_interval is not None:
            self.start_scrub()

    # ------------------------------------------------------------------
    # opening from disk
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        *,
        durability: str = "always",
        wal_dir: Optional[str] = None,
        backup_count: int = 1,
        scheme=None,
        **server_options,
    ) -> "DatabaseServer":
        """Open a served database from disk, recovering if needed.

        The durable unit on disk is the snapshot file at ``path`` (as
        written by :func:`repro.storage.save_to_file`) plus the
        write-ahead-log directory next to it (``path + ".wal"`` unless
        overridden).  Opening:

        1. If the log directory holds anything, crash recovery runs
           first (:func:`repro.wal.recover` with ``repair=True``): the
           torn tail a crash left is truncated and the committed prefix
           replayed -- the log is authoritative over the possibly-stale
           snapshot file.
        2. Otherwise the snapshot file at ``path`` is loaded.
        3. A fresh :class:`~repro.wal.WriteAheadLog` is attached with
           the requested ``durability`` (an fsync policy spec:
           ``"always"``, ``"batch(N,ms)"`` or ``"os"``), and an initial
           checkpoint is cut if the directory has none -- so the log
           alone can always rebuild the database.

        :meth:`checkpoint` (and auto-checkpointing via
        ``checkpoint_every``) then maintains both units: a WAL
        checkpoint snapshot plus a fresh ``save_to_file`` of ``path``
        with ``backup_count`` rolling backups.

        Args:
            path: the snapshot file (must exist unless the log
                directory already holds a recoverable state).
            durability: fsync policy for the attached log.
            wal_dir: the log directory (default ``path + ".wal"``).
            backup_count: rolling ``.bak`` generations kept by
                checkpoints' ``save_to_file``.
            scheme: numbering scheme for loaded documents.
            **server_options: any :class:`DatabaseServer` constructor
                option (``retry``, ``max_in_flight``,
                ``checkpoint_every``, ...).

        Raises:
            StorageError: neither a loadable snapshot nor a
                recoverable log exists.
        """
        from ..storage import load_from_file
        from ..wal import WriteAheadLog, list_checkpoints, recover

        wal_dir = wal_dir if wal_dir is not None else path + ".wal"
        database = None
        recovered = None
        if os.path.isdir(wal_dir) and os.listdir(wal_dir):
            recovered = recover(wal_dir, repair=True, scheme=scheme)
            database = recovered.database
            if not recovered.report.clean:
                logger.warning(
                    "recovery of %s: %s", wal_dir, recovered.report
                )
        if database is None:
            database = load_from_file(path, scheme)
        wal = WriteAheadLog(wal_dir, fsync=durability)
        database.attach_wal(wal)
        server = cls(database, **server_options)
        server._source_path = path
        server._backup_count = backup_count
        if recovered is not None:
            # The exactly-once ledger survives the crash: every replayed
            # commit carrying an idempotency key re-registers it, so a
            # client retrying across the restart is still deduplicated.
            server._dedup.seed(recovered.dedup.items())
        if not list_checkpoints(wal_dir):
            server._checkpoint_locked()
        return server

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    @property
    def database(self) -> SecureXMLDatabase:
        """The wrapped database (not thread-safe to mutate directly
        while the server is live, except through ``transaction()``)."""
        return self._database

    @property
    def admission(self) -> AdmissionController:
        """The in-flight budget (shared by reads and writes)."""
        return self._admission

    @property
    def breaker(self) -> CircuitBreaker:
        """The write circuit breaker."""
        return self._breaker

    @property
    def retry(self) -> RetryPolicy:
        """The commit-race backoff schedule."""
        return self._retry

    @property
    def dedup(self) -> DedupTable:
        """The exactly-once ledger (idempotency key -> acknowledged
        summary)."""
        return self._dedup

    @property
    def epoch(self) -> int:
        """The fencing epoch this server writes under: the attached
        log's epoch, or 0 when no log is attached."""
        wal = self._database.wal
        return wal.epoch if wal is not None else 0

    @property
    def fenced(self) -> bool:
        """True once a higher epoch was observed; every write is
        refused with :class:`~repro.errors.StaleEpochError`."""
        return self._fenced_at is not None

    @property
    def fenced_at(self) -> Optional[int]:
        """The epoch that fenced this server, or None while primary."""
        return self._fenced_at

    def fence(self, epoch: int) -> None:
        """Depose this server: a primary at ``epoch`` exists elsewhere.

        From this call on, every write (direct, retried, or grouped)
        is refused with :class:`~repro.errors.StaleEpochError` and
        counted as ``fenced_writes`` -- a deposed primary must never
        acknowledge again.  The attached log is fenced too
        (best-effort, so even a direct ``wal.append`` cannot land), but
        reads keep serving: a fenced server is exactly as useful as a
        stale replica, no less.  Idempotent; only ever raises the
        fence, never lowers it.
        """
        if epoch <= self.epoch and not self.fenced:
            raise ValueError(
                f"cannot fence epoch {self.epoch} server with epoch "
                f"{epoch} (fencing epoch must be higher)"
            )
        if self._fenced_at is None or epoch > self._fenced_at:
            self._fenced_at = epoch
        wal = self._database.wal
        if wal is not None:
            with contextlib.suppress(ValueError):
                wal.fence(epoch)
        logger.warning(
            "server fenced: epoch %d supersedes local epoch %d",
            epoch, self.epoch,
        )

    def observe_epoch(self, epoch: int) -> bool:
        """Note an epoch seen in the wild (a stream record, a peer's
        stats); fences this server when it is higher than its own.
        Returns True when the server is fenced afterwards -- the
        deposed primary's self-demotion trigger."""
        if epoch > self.epoch and not self.fenced:
            self.fence(epoch)
        return self.fenced

    def mark_promoted(self) -> None:
        """Count a completed promotion (called by the failover
        supervisor once this server has taken over as primary)."""
        self._count("promotions")

    def session(self, user: str) -> Session:
        """The served (cached, per-user) session for ``user``.

        Sessions are only safe to use through the server's own
        read/write discipline; use :meth:`SecureXMLDatabase.login` for
        an unmanaged session.
        """
        with self._sessions_lock:
            session = self._sessions.get(user)
            if session is None:
                session = self._database.login(user)
                self._sessions[user] = session
            return session

    # ------------------------------------------------------------------
    # reads (shared lock)
    # ------------------------------------------------------------------
    def view(self, user: str, deadline: Optional[float] = None):
        """The user's current authorized view, served under the read
        discipline (admission + deadline + shared lock)."""
        return self._read(user, lambda s: s.view(), deadline, "view")

    def query(
        self, user: str, path: str, deadline: Optional[float] = None
    ) -> XPathValue:
        """Evaluate an XPath expression on the user's view."""
        return self._read(user, lambda s: s.query(path), deadline, "query")

    def select(
        self, user: str, path: str, deadline: Optional[float] = None
    ) -> NodeSet:
        """Evaluate a path on the user's view, requiring a node-set."""
        return self._read(user, lambda s: s.select(path), deadline, "select")

    def read_xml(
        self,
        user: str,
        indent: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """The user's view serialized as XML."""
        return self._read(
            user, lambda s: s.read_xml(indent=indent), deadline, "read_xml"
        )

    def serve(
        self,
        user: str,
        fn: Callable[[Session], Any],
        deadline: Optional[float] = None,
        what: str = "serve",
    ) -> Any:
        """Run an arbitrary read callable against the user's session
        under the full read discipline (admission + deadline + shared
        lock).  ``fn`` must not mutate; the network front-end uses this
        to evaluate-and-serialize in one locked pass."""
        return self._read(user, fn, deadline, what)

    def _read(self, user, fn, budget, what):
        deadline = self._deadline(budget)
        session = self.session(user)
        self._admit(deadline, user, what, "")
        try:
            if not self._lock.acquire_read(deadline.timeout()):
                raise self._deadline_error(deadline, user, what, "read lock")
            try:
                self._check(deadline, user, what, "view serving")
                result = fn(session)
            finally:
                self._lock.release_read()
        finally:
            self._admission.release()
        self._count("reads")
        return result

    # ------------------------------------------------------------------
    # writes (exclusive lock + retry)
    # ------------------------------------------------------------------
    def execute(
        self,
        user: str,
        operation: Union[XUpdateOperation, UpdateScript, str],
        strict: bool = False,
        deadline: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> SecureUpdateResult:
        """Apply an update as ``user``, absorbing commit races.

        The operation is executed through the user's session exactly
        like :meth:`Session.execute`, but governed: admission control
        and the circuit breaker gate entry, each attempt runs under
        the exclusive lock, a commit race is retried on the backoff
        schedule (sleeping *outside* the lock), and the deadline is
        checkpointed before every script operation so an expired
        request aborts via the savepoint path with nothing committed.

        A non-None ``idempotency_key`` makes the write exactly-once
        across retries and failover: a key already acknowledged
        returns the remembered summary as a
        :class:`~repro.serving.dedup.DedupedResult` (counts, not node
        lists) without touching the database, and a fresh key rides
        the commit's WAL record so replicas and recovery remember it
        too.

        Raises:
            OverloadError: shed by admission control (audited).
            DeadlineExceeded: the budget expired at any phase
                (audited; nothing committed).
            CircuitOpenError: the write circuit is open.
            RetryExhausted: every attempt hit a commit race (audited).
            StaleEpochError: this server was fenced by a promotion
                (never acknowledged; re-submit to the current primary).
            AccessDenied, UpdateAborted: as for
                :meth:`Session.execute`; these are application
                outcomes and do not trip the circuit breaker.
        """
        deadline = self._deadline(deadline)
        opname, oppath = _describe(operation)
        self._ensure_not_fenced(user, opname, oppath)
        self._breaker.allow()
        session = self.session(user)
        self._admit(deadline, user, opname, oppath)
        try:
            result = self._execute_with_retry(
                session, operation, strict, deadline, opname, oppath,
                idempotency_key,
            )
        finally:
            self._admission.release()
        self._maybe_auto_checkpoint()
        return result

    def execute_once(
        self,
        user: str,
        operation: Union[XUpdateOperation, UpdateScript, str],
        strict: bool = False,
        deadline: "Optional[float | Deadline]" = None,
        idempotency_key: Optional[str] = None,
    ) -> SecureUpdateResult:
        """One governed write attempt with *no* internal retry.

        Exactly one trip through admission, the breaker and the
        exclusive lock; a commit race surfaces as
        :class:`~repro.errors.ConcurrentUpdateError` instead of being
        absorbed.  This is the primitive the
        :class:`~repro.serving.group.GroupCommitter` batches -- the
        committer owns the backoff schedule, so a racing member never
        holds its group hostage through a sleep.

        Accepts an already-ticking :class:`Deadline` as well as a float
        budget, so a caller retrying across attempts keeps one decaying
        budget.
        """
        deadline = self._deadline(deadline)
        opname, oppath = _describe(operation)
        self._ensure_not_fenced(user, opname, oppath)
        self._breaker.allow()
        session = self.session(user)
        self._admit(deadline, user, opname, oppath)
        try:
            try:
                return self._locked_attempt(
                    session, operation, strict, deadline, opname, oppath,
                    idem=idempotency_key,
                )
            except _WalDegraded as exc:
                raise exc.error from exc
            except _DiskFull as exc:
                # No internal retry here: surface the original error;
                # the caller (the group committer's backoff, or the
                # client) decides when to try again.  Reclaim still
                # runs so the *next* attempt finds a healthy log.
                self._reclaim_space()
                raise exc.error from exc
        finally:
            self._admission.release()

    def _execute_with_retry(
        self, session, operation, strict, deadline, opname, oppath, idem=None
    ):
        user = session.user
        delay = 0.0
        last: Optional[ConcurrentUpdateError] = None
        for attempt in range(1, self._retry.max_attempts + 1):
            try:
                return self._locked_attempt(
                    session, operation, strict, deadline, opname, oppath,
                    attempt=attempt, idem=idem,
                )
            except ConcurrentUpdateError as exc:
                last = exc
                logger.debug(
                    "commit race for %s (%s attempt %d/%d)",
                    user, opname, attempt, self._retry.max_attempts,
                )
            except _WalDegraded:
                # The failing log was detached; the attempt committed
                # nothing and re-runs against snapshot-only durability.
                pass
            except _DiskFull as exc:
                # ENOSPC poisoned the log writer mid-append; nothing
                # was committed.  Reclaim space outside the lock
                # (reopen the log past the torn tail, checkpoint to
                # rotate and prune old segments) and retry -- or shed.
                if not self._reclaim_space():
                    self._count("disk_full_shed")
                    self._audit_rejection(
                        user, opname, oppath,
                        f"disk full and space reclaim failed: {exc.error}",
                        "disk-full",
                    )
                    raise OverloadError(
                        f"{opname} by {user!r} shed: the log volume is "
                        f"full and reclaiming space failed; retry after "
                        f"freeing disk ({exc.error})"
                    ) from exc.error
            # Retryable outcome: back off outside the lock, then again.
            if attempt == self._retry.max_attempts:
                break
            remaining = deadline.remaining()
            if remaining <= 0.0:
                self._breaker.record_failure()
                raise self._deadline_error(deadline, user, opname, "backoff")
            delay = self._retry.next_delay(delay, self._rng)
            self._count("retries")
            self._sleep(min(delay, remaining))
        self._breaker.record_failure()
        self._count("retry_exhausted")
        self._audit_rejection(
            user, opname, oppath,
            f"gave up after {self._retry.max_attempts} attempts, every "
            f"commit raced a concurrent update",
            "retry-exhausted",
        )
        raise RetryExhausted(
            f"{opname} by {user!r} lost {self._retry.max_attempts} "
            f"commit race(s); giving up",
            attempts=self._retry.max_attempts,
            last_error=last,
        ) from last

    def _locked_attempt(
        self, session, operation, strict, deadline, opname, oppath,
        attempt=1, idem=None,
    ):
        """One write attempt under the exclusive lock.

        Raises ConcurrentUpdateError on a commit race (not counted as a
        breaker failure) and :class:`_WalDegraded` when this attempt
        pushed the failing log over the detach threshold; every other
        outcome matches :meth:`execute`'s contract.
        """
        user = session.user
        if not self._lock.acquire_write(deadline.timeout()):
            self._breaker.record_failure()
            raise self._deadline_error(deadline, user, opname, "write lock")
        if deadline.expired:
            # Raised outside the try: the handler below is for
            # checkpoint expiries *inside* the script and must not
            # double-count this one.
            self._lock.release_write()
            self._breaker.record_failure()
            raise self._deadline_error(
                deadline, user, opname, "write admission"
            )
        try:
            if idem is not None:
                # Exactly-once: the lookup shares the exclusive lock
                # with the commit-and-remember below, so two racing
                # re-sends of one key serialize -- the first applies,
                # the second reads the remembered acknowledgement.
                entry = self._dedup.get(idem)
                if entry is not None:
                    self._count("dedup_hits")
                    return DedupedResult.from_entry(entry)
            wal = self._database.wal
            annotation = (
                wal.annotate(idem=idem)
                if idem is not None and wal is not None
                else contextlib.nullcontext()
            )
            with annotation:
                result = session.execute(
                    operation,
                    strict=strict,
                    checkpoint=lambda: deadline.check(f"{opname} script"),
                )
        except ConcurrentUpdateError:
            self._count("commit_races")
            raise
        except DeadlineExceeded:
            self._breaker.record_failure()
            self._count("deadline_exceeded")
            self._audit_rejection(
                user, opname, oppath,
                f"deadline of {deadline.budget:.6g}s exceeded "
                f"mid-script (attempt {attempt})",
                "deadline",
            )
            raise
        except (AccessDenied, UpdateAborted):
            # Application outcomes: access control and script
            # semantics worked exactly as specified, so they are
            # neither breaker failures nor breaker successes.
            self._count("writes")
            raise
        except WalWriteError as exc:
            # The log refused to make the commit durable; nothing
            # was installed.  Feed the breaker, and after enough
            # consecutive refusals detach the log (snapshot-only
            # durability beats refusing every write) so the caller
            # can re-run the attempt without it.
            self._breaker.record_failure()
            self._count("wal_errors")
            if (
                isinstance(exc.disk, DiskFullError)
                and self._database.wal is not None
            ):
                # ENOSPC rides its own ladder: reclaim space outside
                # the lock and retry, or shed.  It never counts toward
                # detaching the log -- snapshot-only durability would
                # fail on the same full volume.
                self._count("disk_full_events")
                raise _DiskFull(exc) from exc
            if isinstance(exc.disk, DiskIOError):
                self._count("disk_io_errors")
                self._disk_io_consecutive += 1
            self._wal_consecutive_failures += 1
            if (
                self._database.wal is None
                or self._wal_consecutive_failures
                < self._wal_failure_threshold
            ):
                raise
            self._degrade_wal(exc)  # still under the write lock
            raise _WalDegraded(exc) from exc
        except Exception:
            self._breaker.record_failure()
            raise
        else:
            self._breaker.record_success()
            self._wal_consecutive_failures = 0
            if self._database.wal is not None:
                # Only a commit the log made durable proves the disk
                # healthy again; a snapshot-only commit after the sick
                # log was detached proves nothing about the device.
                self._disk_io_consecutive = 0
            self._count("writes")
            self._count("commits")
            self._commits_since_checkpoint += 1
            if idem is not None:
                self._dedup.put(
                    idem,
                    {
                        "fully_applied": bool(result.fully_applied),
                        "selected": len(result.selected),
                        "affected": len(result.affected),
                        "denied": len(result.denials),
                        "version": self._database.version,
                    },
                )
            return result
        finally:
            self._lock.release_write()

    # ------------------------------------------------------------------
    # durability maintenance
    # ------------------------------------------------------------------
    def _degrade_wal(self, error: WalWriteError) -> None:
        """Detach (and close) the failing log; serving continues with
        snapshot-only durability.  Called under the write lock."""
        wal = self._database.detach_wal()
        if wal is None:
            return
        with contextlib.suppress(Exception):
            wal.close()
        self._count("wal_degraded")
        logger.error(
            "write-ahead log failed %d consecutive commit(s), last: %s; "
            "detached it -- durability degraded to snapshot-only",
            self._wal_consecutive_failures, error,
        )

    def _reclaim_space(self) -> bool:
        """The disk-full ladder: reopen the poisoned log, checkpoint to
        rotate and prune, and report whether the log is healthy again.

        Called with no lock held (checkpointing takes the write lock
        itself).  Any failure -- the reopen finds quarantined damage,
        the checkpoint itself hits ``ENOSPC`` -- returns False; the
        caller sheds the write instead of crashing the server.
        """
        wal = self._database.wal
        if wal is None:
            return False
        try:
            wal.reopen()
            self.checkpoint()
        except Exception:
            self._count("reclaim_failures")
            logger.exception(
                "disk-full space reclaim failed; shedding writes until "
                "space is freed"
            )
            return False
        self._count("space_reclaims")
        logger.warning(
            "disk-full space reclaim succeeded: log reopened and "
            "checkpoint pruned old segments"
        )
        return True

    # ------------------------------------------------------------------
    # background integrity scrubbing
    # ------------------------------------------------------------------
    def _ensure_scrubber(self):
        """The lazily-built :class:`repro.scrub.Scrubber` over the
        attached log's directory (None when no log is attached)."""
        if self._scrubber is None:
            wal = self._database.wal
            if wal is None:
                return None
            from ..scrub import Scrubber

            self._scrubber = Scrubber(
                wal.directory,
                budget_bytes=self._scrub_budget,
                deep=self._scrub_deep,
            )
        return self._scrubber

    def scrub_step(self, budget_bytes: Optional[int] = None):
        """Run one integrity-scrub step over the attached log.

        Holds no server lock (the scrubber reads the directory like a
        follower does); serving continues concurrently.  Segments the
        step quarantines are counted (``scrub_quarantines``) and
        logged -- quarantined damage needs
        :func:`repro.replication.repair_from_peer`.

        Returns the step's :class:`repro.scrub.ScrubReport`, or None
        when no log is attached.
        """
        scrubber = self._ensure_scrubber()
        if scrubber is None:
            return None
        report = scrubber.step(budget_bytes)
        quarantined = report.quarantined
        if quarantined:
            self._count("scrub_quarantines", len(quarantined))
            for finding in quarantined:
                logger.error("scrub quarantined damage: %s", finding)
        return report

    def start_scrub(self) -> None:
        """Start the background scrub thread (idempotent; a no-op when
        ``scrub_interval`` was not configured)."""
        if self._scrub_interval is None:
            return
        if self._scrub_thread is not None and self._scrub_thread.is_alive():
            return
        self._scrub_stop.clear()
        self._scrub_thread = threading.Thread(
            target=self._scrub_loop, name="repro-scrub", daemon=True
        )
        self._scrub_thread.start()

    def stop_scrub(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the background scrub thread (idempotent)."""
        self._scrub_stop.set()
        thread = self._scrub_thread
        if thread is not None:
            thread.join(timeout)
        self._scrub_thread = None

    def _scrub_loop(self) -> None:
        while not self._scrub_stop.wait(self._scrub_interval):
            try:
                self.scrub_step()
            except Exception:
                # The scrubber must never take serving down with it.
                logger.exception("background scrub step failed; continuing")

    def checkpoint(self, deadline: Optional[float] = None) -> None:
        """Cut a durable checkpoint under the exclusive write lock.

        Takes a WAL checkpoint snapshot (when a log is attached:
        snapshot + segment rotation + retention pruning) and, when the
        server was :meth:`open`-ed from a file, re-saves that file with
        its rolling backups -- both durable units move forward
        together.

        Raises:
            DeadlineExceeded: could not get the write lock in time.
        """
        deadline = self._deadline(deadline)
        if not self._lock.acquire_write(deadline.timeout()):
            raise self._deadline_error(
                deadline, "<server>", "checkpoint", "write lock"
            )
        try:
            self._checkpoint_locked()
        finally:
            self._lock.release_write()

    def _checkpoint_locked(self) -> None:
        from ..storage import save_to_file

        wal = self._database.wal
        if wal is not None:
            wal.checkpoint(self._database)
        if self._source_path is not None:
            save_to_file(
                self._database,
                self._source_path,
                backup_count=self._backup_count,
            )
        self._commits_since_checkpoint = 0
        self._count("checkpoints")

    def _maybe_auto_checkpoint(self) -> None:
        if (
            self._checkpoint_every is None
            or self._commits_since_checkpoint < self._checkpoint_every
        ):
            return
        try:
            self.checkpoint()
        except Exception:
            # The write that triggered this already committed; a failed
            # checkpoint only delays compaction, so it must not fail
            # the request.  The next commit will retry.
            self._count("checkpoint_failures")
            logger.exception("automatic checkpoint failed; continuing")

    # ------------------------------------------------------------------
    # shared request plumbing
    # ------------------------------------------------------------------
    def _deadline(self, budget: "Optional[float | Deadline]") -> Deadline:
        if isinstance(budget, Deadline):
            return budget  # already ticking: shared across retries
        if budget is None:
            budget = self._default_deadline
        return Deadline(budget, clock=self._clock)

    def _ensure_not_fenced(self, user, opname, oppath) -> None:
        fenced_at = self._fenced_at
        if fenced_at is None:
            return
        self._count("fenced_writes")
        self._audit_rejection(
            user, opname, oppath,
            f"refused: server fenced at epoch {fenced_at} "
            f"(local epoch {self.epoch})",
            "fenced",
        )
        raise StaleEpochError(
            f"{opname} by {user!r} refused: this server was deposed by "
            f"epoch {fenced_at} (its own epoch is {self.epoch}); "
            f"re-submit to the current primary",
            epoch=self.epoch,
            current=fenced_at,
        )

    def _admit(self, deadline, user, opname, oppath) -> None:
        try:
            self._admission.acquire(deadline)
        except OverloadError as exc:
            self._count("shed")
            self._audit_rejection(user, opname, oppath, str(exc), "shed")
            raise
        except DeadlineExceeded as exc:
            self._count("deadline_exceeded")
            self._audit_rejection(user, opname, oppath, str(exc), "deadline")
            raise

    def _check(self, deadline, user, opname, what) -> None:
        try:
            deadline.check(what)
        except DeadlineExceeded:
            self._count("deadline_exceeded")
            self._audit_rejection(
                user, opname, "", f"deadline expired during {what}", "deadline"
            )
            raise

    def _deadline_error(self, deadline, user, opname, what) -> DeadlineExceeded:
        self._count("deadline_exceeded")
        reason = (
            f"deadline of {deadline.budget:.6g}s exceeded waiting for {what}"
            if deadline.budget is not None
            else f"timed out waiting for {what}"
        )
        self._audit_rejection(user, opname, "", reason, "deadline")
        return DeadlineExceeded(reason, budget=deadline.budget)

    def _audit_rejection(self, user, opname, oppath, reason, event) -> None:
        try:
            self._database.audit.record_rejected(
                user=user,
                operation=opname,
                path=oppath,
                reason=reason,
                event=event,
            )
        except Exception:  # the audit log must never break serving
            logger.exception("audit rejection record failed")

    def _count(self, key: str, by: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += by

    def stats(self) -> Dict[str, object]:
        """Serving counters: this server's request ledger, the
        admission controller's (``admission_`` prefix), the circuit
        breaker's (``breaker_`` prefix + ``breaker_state``), and the
        wrapped database's :meth:`SecureXMLDatabase.stats`.

        Returns a *point-in-time deep copy*: the server's own counters
        are snapshotted under their lock, and nothing in the returned
        dict aliases live server state -- callers may mutate the result
        (or any nested value) freely without corrupting the ledger.
        """
        with self._counters_lock:
            out: Dict[str, object] = dict(self._counters)
        out.update(
            {f"admission_{k}": v for k, v in self._admission.stats.items()}
        )
        out.update({f"breaker_{k}": v for k, v in self._breaker.stats.items()})
        out["breaker_state"] = self._breaker.state
        out["epoch"] = self.epoch
        out["fenced"] = self.fenced
        out["fenced_at"] = self._fenced_at
        out.update({f"dedup_{k}": v for k, v in self._dedup.stats().items()})
        wal = self._database.wal
        out["wal_attached"] = wal is not None
        if wal is not None:
            out.update({f"wal_{k}": v for k, v in wal.stats.items()})
            out["wal_lsn"] = wal.lsn
            out["wal_fsync_policy"] = str(wal.fsync_policy)
            out["wal_failed"] = wal.failed
        out["disk_sick"] = (
            self._disk_io_consecutive >= self._disk_sick_threshold
        )
        out["scrub"] = (
            self._scrubber.counters if self._scrubber is not None else None
        )
        out.update(self._database.stats())
        return copy.deepcopy(out)


def _describe(operation) -> tuple:
    """(operation name, path) for audit records, best-effort."""
    if isinstance(operation, str):
        return ("xupdate", "")
    if isinstance(operation, UpdateScript):
        ops = list(operation)
        return ("UpdateScript", ops[0].path if ops else "")
    return (type(operation).__name__, getattr(operation, "path", ""))
