"""The shared view cache: sharing, incremental patching, fallbacks.

Correctness is pinned elsewhere (the differential property suite); this
file tests the cache *decisions*: who shares what, when a patch happens
versus a rebuild, and that the counters surface it all through
``db.stats()``.
"""

import pytest

from repro.core import hospital_database
from repro.security import SecureXMLDatabase, SubjectHierarchy, Policy
from repro.security.view import ViewBuilder
from repro.xmltree import XMLDocument, element, serialize, text
from repro.xupdate import Rename, UpdateContent


def role_database(users=("n1", "n2", "n3")) -> SecureXMLDatabase:
    """A database where several users share one role (one fingerprint)."""
    doc = XMLDocument()
    root = doc.add_root("patients")
    element("patient", element("diagnosis", text("flu"))).attach(doc, root)
    element("patient", element("diagnosis", text("cold"))).attach(doc, root)
    subjects = SubjectHierarchy()
    subjects.add_role("nurse")
    for user in users:
        subjects.add_user(user, member_of="nurse")
    policy = Policy(subjects)
    policy.grant("read", "//*", "nurse")
    policy.deny("read", "//diagnosis/descendant-or-self::*", "nurse")
    policy.grant("position", "//diagnosis", "nurse")
    return SecureXMLDatabase(doc, subjects, policy)


class TestSharing:
    def test_same_fingerprint_users_share_one_materialization(self):
        db = role_database()
        v1 = db.build_view("n1")
        v2 = db.build_view("n2")
        assert v1.doc is v2.doc  # one pruned document serves both
        assert v1.user == "n1" and v2.user == "n2"
        assert v2.permissions.user == "n2"
        stats = db.stats()
        assert stats["view_full_builds"] == 1
        assert stats["view_hits"] == 1

    def test_repeated_requests_hit(self):
        db = role_database()
        db.build_view("n1")
        before = db.stats()["view_hits"]
        db.build_view("n1")
        assert db.stats()["view_hits"] == before + 1

    def test_facade_views_are_correct_per_user(self):
        db = role_database()
        shared = db.build_view("n1")
        fresh = ViewBuilder().build(db.document, db.policy, "n2")
        assert db.build_view("n2").facts() == fresh.facts()
        assert shared.facts() == fresh.facts()  # same table, same view

    def test_user_dependent_policies_do_not_share(self):
        db = hospital_database()  # rule 5 binds $USER for patients
        robert = db.build_view("robert")
        franck = db.build_view("franck")
        assert robert.doc is not franck.doc
        assert serialize(robert.doc) != serialize(franck.doc)


class TestMaintenance:
    def test_commit_with_changeset_patches_instead_of_rebuilding(self):
        db = role_database()
        for user in ("n1", "n2"):
            db.build_view(user)
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))
        before = db.stats()
        view = db.build_view("n1")
        after = db.stats()
        assert after["view_incremental_patches"] == before["view_incremental_patches"] + 1
        assert after["view_full_builds"] == before["view_full_builds"]
        # and the patched view is exactly the from-scratch derivation
        fresh = ViewBuilder().build(db.document, db.policy, "n1")
        assert view.facts() == fresh.facts()
        assert view.restricted == fresh.restricted

    def test_commit_without_changeset_falls_back_to_full_build(self):
        db = role_database()
        db.build_view("n1")
        with db.transaction() as txn:
            txn.commit(db.document.copy())  # no change-set published
        before = db.stats()
        db.build_view("n1")
        after = db.stats()
        assert after["view_full_builds"] == before["view_full_builds"] + 1
        assert (
            after["view_incremental_patches"]
            == before["view_incremental_patches"]
        )

    def test_policy_change_is_a_new_fingerprint(self):
        db = role_database()
        stale = db.build_view("n1")
        db.policy.grant("read", "//diagnosis/descendant-or-self::*", "nurse")
        view = db.build_view("n1")  # same version, different rules
        fresh = ViewBuilder().build(db.document, db.policy, "n1")
        assert view.facts() == fresh.facts()
        assert view.facts() != stale.facts()

    def test_multi_commit_gap_composes_changesets(self):
        db = role_database()
        db.build_view("n1")
        db.admin_update(Rename("//patient[1]/diagnosis", "dx"))
        db.admin_update(Rename("//patient[2]", "inpatient"))
        view = db.build_view("n1")  # two versions behind: one patch
        assert db.stats()["view_incremental_patches"] == 1
        fresh = ViewBuilder().build(db.document, db.policy, "n1")
        assert view.facts() == fresh.facts()

    def test_restricted_labels_survive_patching(self):
        db = role_database()
        db.build_view("n1")
        db.admin_update(UpdateContent("//patient[1]/diagnosis", "measles"))
        view = db.build_view("n1")
        fresh = ViewBuilder().build(db.document, db.policy, "n1")
        assert view.restricted == fresh.restricted
        assert serialize(view.doc) == serialize(fresh.doc)


class TestAblationAndSurface:
    def test_shared_views_can_be_disabled(self):
        db = role_database()
        db2 = SecureXMLDatabase(
            db.document, db.subjects, db.policy, shared_views=False
        )
        v1 = db2.build_view("n1")
        v2 = db2.build_view("n2")
        assert v1.doc is not v2.doc
        assert "view_hits" not in db2.stats()

    def test_stats_surface(self):
        db = role_database()
        stats = db.stats()
        for key in (
            "version",
            "full_resolves",
            "delta_resolves",
            "table_cache_hits",
            "view_hits",
            "view_full_builds",
            "view_incremental_patches",
        ):
            assert key in stats

    def test_table_cache_shares_across_users(self):
        db = role_database()
        db.permissions_for("n1")
        before = db.stats()["table_cache_hits"]
        table = db.permissions_for("n2")
        assert db.stats()["table_cache_hits"] == before + 1
        assert table.user == "n2"

    def test_session_can_does_not_materialize_a_view(self):
        db = role_database()
        session = db.login("n1")
        assert session.can("read", db.document.root)
        assert db.stats()["view_full_builds"] == 0
