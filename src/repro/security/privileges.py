"""The five privileges of the model (paper section 4.3).

- ``position`` -- the right to know a node *exists* (its label is shown
  as RESTRICTED in views); introduced by the paper to fix the
  availability/semantics problems of earlier XML models (section 2.1).
- ``read`` -- the right to see the node (existence *and* label).
- ``insert`` -- the right to add a new subtree under the node.
- ``update`` -- the right to change the node's label.
- ``delete`` -- the right to delete the subtree rooted at the node.

Privileges are held on *nodes*; operations (XUpdate instructions) are
distinct from privileges and *require* privileges to complete
(section 4.3: "Privileges should not be confused with operations").
"""

from __future__ import annotations

import enum
from typing import FrozenSet

__all__ = ["Privilege", "READ_PRIVILEGES", "WRITE_PRIVILEGES"]


class Privilege(enum.Enum):
    """One of the model's five node privileges."""

    POSITION = "position"
    READ = "read"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"

    @classmethod
    def parse(cls, name: "str | Privilege") -> "Privilege":
        """Accept either the enum member or the paper's lowercase name.

        Raises:
            ValueError: for an unknown privilege name.
        """
        if isinstance(name, Privilege):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown privilege {name!r} (expected one of: {valid})"
            ) from None

    def __str__(self) -> str:
        return self.value


#: Privileges governing what a subject can see (section 2.1).
READ_PRIVILEGES: FrozenSet[Privilege] = frozenset(
    {Privilege.POSITION, Privilege.READ}
)

#: Privileges governing what a subject can modify (section 2.2).
WRITE_PRIVILEGES: FrozenSet[Privilege] = frozenset(
    {Privilege.INSERT, Privilege.UPDATE, Privilege.DELETE}
)
