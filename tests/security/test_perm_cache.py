"""Correctness of the cross-user rule-path cache (ablation E18)."""

import pytest

from repro.core import hospital_database
from repro.security import PermissionResolver, Privilege
from repro.xmltree import NodeKind

USERS = ["beaufort", "laporte", "richard", "robert", "franck"]


@pytest.fixture
def db():
    return hospital_database()


class TestCacheCorrectness:
    def test_cached_equals_uncached_for_all_users(self, db):
        cold = PermissionResolver(cache_paths=False)
        warm = PermissionResolver(cache_paths=True)
        for user in USERS:
            a = cold.resolve(db.document, db.policy, user)
            b = warm.resolve(db.document, db.policy, user)
            # Second cached run exercises cache hits.
            c = warm.resolve(db.document, db.policy, user)
            assert a.facts() == b.facts() == c.facts()

    def test_user_dependent_paths_never_cached(self, db):
        """Rule 5's $USER path must stay per-user even with caching."""
        warm = PermissionResolver(cache_paths=True)
        robert = warm.resolve(db.document, db.policy, "robert")
        franck = warm.resolve(db.document, db.policy, "franck")
        robert_reads = robert.nodes_with(Privilege.READ)
        franck_reads = franck.nodes_with(Privilege.READ)
        assert robert_reads != franck_reads

    def test_cache_invalidated_by_in_place_mutation(self, db):
        resolver = PermissionResolver(cache_paths=True)
        doc = db.document.copy()
        before = resolver.resolve(doc, db.policy, "laporte")
        doc.append_child(doc.root, NodeKind.ELEMENT, "newpatient")
        after = resolver.resolve(doc, db.policy, "laporte")
        assert len(after.nodes_with(Privilege.READ)) == len(
            before.nodes_with(Privilege.READ)
        ) + 1

    def test_cache_is_per_document_object(self, db):
        resolver = PermissionResolver(cache_paths=True)
        doc_a = db.document
        doc_b = db.document.copy()
        # Turn franck's <service> into a <diagnosis>: its text now falls
        # under the secretary's //diagnosis/* deny (rule 2), so the two
        # documents must resolve differently despite the shared cache.
        franck = doc_b.children(doc_b.root)[0]
        doc_b.relabel(doc_b.children(franck)[0], "diagnosis")
        a = resolver.resolve(doc_a, db.policy, "beaufort")
        b = resolver.resolve(doc_b, db.policy, "beaufort")
        assert len(b.nodes_with(Privilege.READ)) < len(
            a.nodes_with(Privilege.READ)
        )

    def test_mutation_stamp_monotonic(self, db):
        doc = db.document.copy()
        stamps = [doc.mutation_stamp]
        doc.append_child(doc.root, NodeKind.ELEMENT, "a")
        stamps.append(doc.mutation_stamp)
        doc.relabel(doc.children(doc.root)[-1], "b")
        stamps.append(doc.mutation_stamp)
        doc.remove_subtree(doc.children(doc.root)[-1])
        stamps.append(doc.mutation_stamp)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)
