"""Fault injection: named kill-points for crash-safety testing.

The transactional update path and the storage layer call
:func:`kill_point` at the places where a crash would be most damaging.
In production nothing is armed and the call is a dictionary-emptiness
check; under test, :func:`inject` arms a point so that reaching it
raises :class:`InjectedFault`, simulating a process death at exactly
that instant.  The crash-safety suites then assert the atomicity
invariant: a failed script leaves every session view byte-identical to
its pre-script view, and an interrupted save leaves the previous
on-disk file loadable.

Named kill-points:

=================  =====================================================
``before-op``      script execution, before operation *i* starts
``after-op``       script execution, after operation *i* applied but
                   before its result is folded into the script result
``mid-write``      storage, after roughly half the payload is written
                   to the temp file (a torn write)
``before-rename``  storage, after the temp file is durable but before
                   the atomic rename installs it
=================  =====================================================

Example::

    from repro.testing.faults import inject, InjectedFault

    with inject("before-op", after=1):   # fail when op index 1 starts
        with pytest.raises(UpdateAborted):
            session.execute(script)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from ..errors import ReproError

__all__ = [
    "KILL_POINTS",
    "FaultInjector",
    "InjectedFault",
    "faults",
    "inject",
    "kill_point",
]

#: Every kill-point the library consults, in execution order.
KILL_POINTS = ("before-op", "after-op", "mid-write", "before-rename")


class InjectedFault(ReproError):
    """A simulated crash raised by an armed kill-point.

    Attributes:
        point: the kill-point name that fired.
        context: keyword context the call site passed to
            :func:`kill_point` (operation index, file path, ...).
    """

    def __init__(self, point: str, context: Dict[str, Any]) -> None:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(f"injected fault at kill-point {point!r}"
                         + (f" ({detail})" if detail else ""))
        self.point = point
        self.context = dict(context)


@dataclass
class _Armed:
    """One armed kill-point: fail on the (``after`` + 1)-th reach."""

    remaining: int


@dataclass
class FaultInjector:
    """A registry of armed kill-points plus a reach history.

    Thread-safe; a module-level instance (:data:`faults`) is what the
    library consults, but independent injectors can be built for
    isolated tests.
    """

    _armed: Dict[str, _Armed] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Every reach of every kill-point since the last :meth:`reset`,
    #: as ``(point, context)`` pairs -- lets tests assert coverage.
    history: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    #: When True, every reach is appended to :data:`history` even while
    #: nothing is armed (off by default: zero cost in production).
    trace: bool = False

    def arm(self, point: str, after: int = 0) -> None:
        """Make ``point`` raise on its next reach.

        Args:
            point: one of :data:`KILL_POINTS`.
            after: number of reaches to let through first (so a script
                of N operations can be killed at any operation index).
        """
        self._check(point)
        if after < 0:
            raise ValueError("after must be >= 0")
        with self._lock:
            self._armed[point] = _Armed(remaining=after)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one kill-point, or all of them when ``point`` is None."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._check(point)
                self._armed.pop(point, None)

    def is_armed(self, point: str) -> bool:
        """True if ``point`` is currently armed."""
        self._check(point)
        with self._lock:
            return point in self._armed

    def reset(self) -> None:
        """Disarm everything and clear the reach history."""
        with self._lock:
            self._armed.clear()
            self.history.clear()

    def reach(self, point: str, **context: Any) -> None:
        """Called by the library at a kill-point; raises when armed.

        Raises:
            InjectedFault: when ``point`` is armed and its countdown
                has expired.
        """
        if not self._armed and not self.trace:
            return  # hot path: nothing armed, nothing traced
        self._check(point)
        with self._lock:
            if self.trace:
                self.history.append((point, dict(context)))
            armed = self._armed.get(point)
            if armed is None:
                return
            if armed.remaining > 0:
                armed.remaining -= 1
                return
            del self._armed[point]  # one-shot: fire once, then disarm
        raise InjectedFault(point, context)

    @contextmanager
    def injected(self, point: str, after: int = 0) -> Iterator["FaultInjector"]:
        """Arm ``point`` for the duration of a ``with`` block."""
        self.arm(point, after=after)
        try:
            yield self
        finally:
            self.disarm(point)

    @staticmethod
    def _check(point: str) -> None:
        if point not in KILL_POINTS:
            raise ValueError(
                f"unknown kill-point {point!r}; known: {', '.join(KILL_POINTS)}"
            )


#: The injector the executor and storage layers consult.
faults = FaultInjector()


def kill_point(point: str, **context: Any) -> None:
    """Library-side hook: consult the default injector at ``point``."""
    faults.reach(point, **context)


def inject(point: str, after: int = 0):
    """Test-side sugar: arm the default injector inside a ``with`` block."""
    return faults.injected(point, after=after)
