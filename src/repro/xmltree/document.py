"""The XML document store: the paper's theory ``db`` made operational.

An :class:`XMLDocument` is the set of facts ``node(n, v)`` (section 3.3,
equation 1) together with the tree-geometry relations the paper derives
from the numbering scheme (``child``, ``parent``, ``descendant``,
``ancestor``, the sibling axes, ...).  Geometry is derivable from the
:class:`~repro.xmltree.labels.NodeId` values alone; the document keeps a
children index purely as an accelerator.

Updates follow the paper's theory-replacement reading: an XUpdate
operation maps theory ``db`` to theory ``dbnew``.  Callers that need that
functional behaviour copy the document first (:meth:`XMLDocument.copy` is
cheap -- node objects are immutable and shared).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .labels import (
    DOCUMENT_ID,
    NodeId,
    NumberingScheme,
    PersistentDeweyScheme,
    RenumberingRequired,
)
from .node import Node, NodeKind

__all__ = ["XMLDocument", "DocumentError"]


class DocumentError(Exception):
    """Structural error: unknown node, illegal parent/child combination..."""


_DOCUMENT_NODE = Node(DOCUMENT_ID, NodeKind.DOCUMENT, "/")

#: Kinds that participate in the child axis (attributes do not).
_CHILD_KINDS = frozenset(
    {
        NodeKind.ELEMENT,
        NodeKind.TEXT,
        NodeKind.COMMENT,
        NodeKind.PROCESSING_INSTRUCTION,
    }
)


class XMLDocument:
    """A mutable XML tree over persistent node identifiers.

    Args:
        scheme: the numbering scheme assigning ordering components to new
            nodes.  Defaults to the persistent Dewey scheme, which never
            renumbers (the paper's requirement).
    """

    def __init__(self, scheme: Optional[NumberingScheme] = None) -> None:
        self._scheme = scheme if scheme is not None else PersistentDeweyScheme()
        self._nodes: Dict[NodeId, Node] = {DOCUMENT_ID: _DOCUMENT_NODE}
        # All children (attributes included) per parent, in document order.
        self._children: Dict[NodeId, List[NodeId]] = {DOCUMENT_ID: []}
        #: Number of renumbering episodes performed (0 unless the naive
        #: scheme is in use); read by benchmark E13.
        self.renumber_count = 0
        #: Number of individual node ids rewritten by renumbering.
        self.renumbered_nodes = 0
        #: Old-id -> new-id mapping of the most recent renumbering, so
        #: callers holding stale identifiers can re-resolve them.  Empty
        #: under persistent schemes.
        self.last_renumber_mapping: Dict[NodeId, NodeId] = {}
        #: Monotonic counter bumped by every mutation; caches keyed on
        #: (document, stamp) stay sound even under in-place updates.
        self.mutation_stamp = 0
        # Lazy element-label index for the //name fast path, guarded by
        # the mutation stamp.
        self._label_index: Optional[Dict[str, Set[NodeId]]] = None
        self._label_index_stamp = -1
        # Lazy per-kind index for the //*, //node(), //text() fast paths.
        self._kind_index: Optional[Dict[NodeKind, Set[NodeId]]] = None
        self._kind_index_stamp = -1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> NumberingScheme:
        """The numbering scheme in use."""
        return self._scheme

    @property
    def document_node(self) -> Node:
        """The unique document node (identifier ``/``)."""
        return self._nodes[DOCUMENT_ID]

    @property
    def root(self) -> Optional[NodeId]:
        """The root element's identifier, or None for an empty document."""
        kids = self.children(DOCUMENT_ID)
        return kids[0] if kids else None

    def __contains__(self, nid: NodeId) -> bool:
        return nid in self._nodes

    def __len__(self) -> int:
        """Number of nodes, document node included."""
        return len(self._nodes)

    def node(self, nid: NodeId) -> Node:
        """The node with identifier ``nid``.

        Raises:
            DocumentError: if no such node exists.
        """
        try:
            return self._nodes[nid]
        except KeyError:
            raise DocumentError(f"no node with id {nid!r}") from None

    def get(self, nid: NodeId) -> Optional[Node]:
        """The node with identifier ``nid``, or None."""
        return self._nodes.get(nid)

    def label(self, nid: NodeId) -> str:
        """The paper's ``v`` for node ``n`` -- its label."""
        return self.node(nid).label

    def kind(self, nid: NodeId) -> NodeKind:
        """The kind of node ``nid``."""
        return self.node(nid).kind

    # ------------------------------------------------------------------
    # geometry (the paper's derived predicates)
    # ------------------------------------------------------------------
    def parent(self, nid: NodeId) -> Optional[NodeId]:
        """``parent(x)``: the parent identifier, None for the document node."""
        self.node(nid)
        return None if nid.is_document else nid.parent()

    def children(self, nid: NodeId) -> List[NodeId]:
        """``child`` axis: non-attribute children in document order."""
        return [
            c
            for c in self._children.get(nid, ())
            if self._nodes[c].kind in _CHILD_KINDS
        ]

    def attributes(self, nid: NodeId) -> List[NodeId]:
        """Attribute nodes of an element, in document order."""
        return [
            c
            for c in self._children.get(nid, ())
            if self._nodes[c].kind is NodeKind.ATTRIBUTE
        ]

    def attribute_value(self, element: NodeId, name: str) -> Optional[str]:
        """The value of attribute ``name`` on ``element``, or None."""
        for attr in self.attributes(element):
            node = self._nodes[attr]
            if node.label == name:
                return node.value
        return None

    def descendants(self, nid: NodeId) -> Iterator[NodeId]:
        """Proper descendants in document order (attributes excluded).

        Iterative (explicit stack) so document depth is bounded by
        memory, not the interpreter's recursion limit.
        """
        stack = list(reversed(self.children(nid)))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children(node)))

    def descendants_or_self(self, nid: NodeId) -> Iterator[NodeId]:
        """``descendant_or_self``: the node, then descendants in order."""
        yield nid
        yield from self.descendants(nid)

    def ancestors(self, nid: NodeId) -> Iterator[NodeId]:
        """Proper ancestors, nearest first, ending at the document node."""
        self.node(nid)
        yield from nid.ancestors()

    def subtree(self, nid: NodeId) -> Iterator[NodeId]:
        """The node and every descendant *including* attribute nodes."""
        stack = [nid]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children.get(node, ())))

    def siblings(self, nid: NodeId) -> List[NodeId]:
        """All non-attribute children of this node's parent (self included)."""
        parent = self.parent(nid)
        if parent is None:
            return [nid]
        return self.children(parent)

    def following_siblings(self, nid: NodeId) -> List[NodeId]:
        """``following_sibling`` axis, in document order."""
        sibs = self.siblings(nid)
        try:
            i = sibs.index(nid)
        except ValueError:
            return []
        return sibs[i + 1 :]

    def preceding_siblings(self, nid: NodeId) -> List[NodeId]:
        """``preceding_sibling`` axis, in *reverse* document order."""
        sibs = self.siblings(nid)
        try:
            i = sibs.index(nid)
        except ValueError:
            return []
        return list(reversed(sibs[:i]))

    def following(self, nid: NodeId) -> List[NodeId]:
        """XPath ``following`` axis: after the subtree, in document order."""
        result: List[NodeId] = []
        current = nid
        while not current.is_document:
            for sib in self.following_siblings(current):
                result.extend(self.descendants_or_self(sib))
            current = current.parent()
        return result

    def preceding(self, nid: NodeId) -> List[NodeId]:
        """XPath ``preceding`` axis, in reverse document order."""
        result: List[NodeId] = []
        current = nid
        while not current.is_document:
            for sib in self.preceding_siblings(current):
                result.extend(reversed(list(self.descendants_or_self(sib))))
            current = current.parent()
        return result

    def all_nodes(self) -> List[NodeId]:
        """Every node id (attributes included) in document order."""
        return list(self.subtree(DOCUMENT_ID))

    def string_value(self, nid: NodeId) -> str:
        """XPath string-value of a node.

        Elements and the document node concatenate descendant text; other
        kinds carry their own value.
        """
        node = self.node(nid)
        if node.kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            parts = [
                self._nodes[d].label
                for d in self.descendants(nid)
                if self._nodes[d].kind is NodeKind.TEXT
            ]
            return "".join(parts)
        return node.string_value()

    # ------------------------------------------------------------------
    # fact views (the formal layer reads these)
    # ------------------------------------------------------------------
    def facts(self) -> Set[Tuple[NodeId, str]]:
        """The paper's set ``F`` of ``node(n, v)`` facts (equation 1)."""
        return {node.fact() for node in self._nodes.values()}

    def labelled_facts(self) -> Set[Tuple[str, str]]:
        """``F`` with human-readable ids -- used when matching the paper's
        printed examples, where ids are written ``n1, n2, ...``."""
        return {(self.path_string(n), v) for (n, v) in self.facts()}

    def child_facts(self) -> Set[Tuple[NodeId, NodeId]]:
        """All ``child(x, y)`` facts (x is a child of y), as in section 3.3."""
        out: Set[Tuple[NodeId, NodeId]] = set()
        for parent, kids in self._children.items():
            for kid in kids:
                if self._nodes[kid].kind in _CHILD_KINDS:
                    out.add((kid, parent))
        return out

    def path_string(self, nid: NodeId) -> str:
        """A stable, human-readable absolute path for a node.

        Uses element labels with positional indices; text nodes are shown
        as ``text()``.  Intended for error messages, audit logs and the
        EXPERIMENTS.md transcripts, never for addressing.
        """
        if nid.is_document:
            return "/"
        parts: List[str] = []
        current = nid
        while not current.is_document:
            node = self._nodes.get(current)
            if node is None:
                parts.append("?")
            elif node.kind is NodeKind.TEXT:
                parts.append("text()")
            elif node.kind is NodeKind.ATTRIBUTE:
                parts.append("@" + node.label)
            else:
                parent = current.parent()
                same = [
                    c
                    for c in self.children(parent)
                    if self._nodes[c].kind is node.kind
                    and self._nodes[c].label == node.label
                ]
                if len(same) > 1:
                    parts.append(f"{node.label}[{same.index(current) + 1}]")
                else:
                    parts.append(node.label)
            current = current.parent()
        return "/" + "/".join(reversed(parts))

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    def add_root(self, label: str) -> NodeId:
        """Create the root element; the document must be empty.

        Raises:
            DocumentError: if a root element already exists.
        """
        if self.root is not None:
            raise DocumentError("document already has a root element")
        return self.append_child(DOCUMENT_ID, NodeKind.ELEMENT, label)

    def append_child(
        self,
        parent: NodeId,
        kind: NodeKind,
        label: str,
        value: str = "",
    ) -> NodeId:
        """Append a new node as the last child of ``parent``."""
        self._check_can_contain(parent, kind)
        kids = self._children.setdefault(parent, [])
        before = kids[-1] if kids else None
        nid = self._fresh_child_id(parent, before, None)
        self._install(Node(nid, kind, label, value))
        return nid

    def insert_before(
        self,
        sibling: NodeId,
        kind: NodeKind,
        label: str,
        value: str = "",
    ) -> NodeId:
        """Insert a new node as the immediately preceding sibling."""
        parent = self.parent(sibling)
        if parent is None:
            raise DocumentError("cannot insert a sibling of the document node")
        if self.node(sibling).kind is NodeKind.ATTRIBUTE:
            raise DocumentError("attributes have no sibling order to insert into")
        self._check_can_contain(parent, kind)
        kids = self._children[parent]
        i = kids.index(sibling)
        before = kids[i - 1] if i > 0 else None
        nid = self._fresh_child_id(parent, before, sibling)
        self._install(Node(nid, kind, label, value))
        return nid

    def insert_after(
        self,
        sibling: NodeId,
        kind: NodeKind,
        label: str,
        value: str = "",
    ) -> NodeId:
        """Insert a new node as the immediately following sibling."""
        parent = self.parent(sibling)
        if parent is None:
            raise DocumentError("cannot insert a sibling of the document node")
        if self.node(sibling).kind is NodeKind.ATTRIBUTE:
            raise DocumentError("attributes have no sibling order to insert into")
        self._check_can_contain(parent, kind)
        kids = self._children[parent]
        i = kids.index(sibling)
        after = kids[i + 1] if i + 1 < len(kids) else None
        nid = self._fresh_child_id(parent, sibling, after)
        self._install(Node(nid, kind, label, value))
        return nid

    def set_attribute(self, element: NodeId, name: str, value: str) -> NodeId:
        """Set (create or overwrite) an attribute on an element."""
        node = self.node(element)
        if node.kind is not NodeKind.ELEMENT:
            raise DocumentError("attributes can only be set on elements")
        for attr in self.attributes(element):
            if self._nodes[attr].label == name:
                self._nodes[attr] = Node(attr, NodeKind.ATTRIBUTE, name, value)
                return attr
        kids = self._children.setdefault(element, [])
        # Attributes are kept at the front of the sibling run so document
        # order places them between the element and its content children.
        attrs = self.attributes(element)
        before = attrs[-1] if attrs else None
        content = self.children(element)
        after = content[0] if content else None
        nid = self._fresh_child_id(element, before, after)
        self._install(Node(nid, NodeKind.ATTRIBUTE, name, value))
        return nid

    def relabel(self, nid: NodeId, new_label: str) -> None:
        """Change a node's label in place (XUpdate rename/update target)."""
        node = self.node(nid)
        if node.is_document:
            raise DocumentError("the document node cannot be relabelled")
        self._nodes[nid] = node.relabelled(new_label)
        self.mutation_stamp += 1

    def set_value(self, nid: NodeId, new_value: str) -> None:
        """Change a node's value in place (attribute values, PI data)."""
        node = self.node(nid)
        if node.is_document:
            raise DocumentError("the document node has no value")
        self._nodes[nid] = Node(nid, node.kind, node.label, new_value)
        self.mutation_stamp += 1

    def remove_subtree(self, nid: NodeId) -> int:
        """Delete a node and its whole subtree; returns nodes removed.

        Raises:
            DocumentError: for the document node or an unknown node.
        """
        node = self.node(nid)
        if node.is_document:
            raise DocumentError("the document node cannot be removed")
        removed = list(self.subtree(nid))
        for r in removed:
            self._nodes.pop(r, None)
            self._children.pop(r, None)
        parent = nid.parent()
        kids = self._children.get(parent)
        if kids is not None and nid in kids:
            kids.remove(nid)
        self.mutation_stamp += 1
        return len(removed)

    def nodes_with_label(self, label: str) -> Set[NodeId]:
        """All *element* nodes carrying ``label`` (unordered).

        Backed by a lazily built index that the mutation stamp keeps
        honest; the XPath engine uses it to evaluate ``//name`` steps
        without walking the whole tree.
        """
        if self._label_index is None or self._label_index_stamp != self.mutation_stamp:
            index: Dict[str, Set[NodeId]] = {}
            for nid, node in self._nodes.items():
                if node.kind is NodeKind.ELEMENT:
                    index.setdefault(node.label, set()).add(nid)
            self._label_index = index
            self._label_index_stamp = self.mutation_stamp
        return self._label_index.get(label, set())

    def nodes_with_kind(self, kind: NodeKind) -> Set[NodeId]:
        """All nodes of one kind (unordered), from a lazy stamped index.

        Like :meth:`nodes_with_label`, this backs the evaluator's
        ``//*`` / ``//node()`` / ``//text()`` fast paths.
        """
        if self._kind_index is None or self._kind_index_stamp != self.mutation_stamp:
            index: Dict[NodeKind, Set[NodeId]] = {}
            for nid, node in self._nodes.items():
                index.setdefault(node.kind, set()).add(nid)
            self._kind_index = index
            self._kind_index_stamp = self.mutation_stamp
        return self._kind_index.get(kind, set())

    def adopt(self, node: Node) -> NodeId:
        """Install a node object *preserving its identifier*.

        The node's parent must already be present.  This is the graft
        primitive of incremental view maintenance: the serving layer
        re-prunes an updated source region into a cached view document
        by adopting the (immutable, shared) source nodes one by one,
        parents before children, instead of copy-and-pruning the whole
        tree.  Sibling order follows from the identifier, so adoption
        order within a sibling run does not matter.

        Raises:
            DocumentError: for the document node, an already-present
                identifier, or a missing parent.
        """
        if node.nid.is_document:
            raise DocumentError("the document node cannot be adopted")
        if node.nid in self._nodes:
            raise DocumentError(f"node {node.nid!r} already present")
        if node.nid.parent() not in self._nodes:
            raise DocumentError(
                f"cannot adopt {node.nid!r}: parent not in this document"
            )
        self._install(node)
        return node.nid

    def copy(self) -> "XMLDocument":
        """An independent copy sharing immutable node objects."""
        dup = XMLDocument.__new__(XMLDocument)
        dup._scheme = self._scheme
        dup._nodes = dict(self._nodes)
        dup._children = {k: list(v) for k, v in self._children.items()}
        dup._label_index = None
        dup._label_index_stamp = -1
        dup._kind_index = None
        dup._kind_index_stamp = -1
        dup.renumber_count = self.renumber_count
        dup.renumbered_nodes = self.renumbered_nodes
        dup.last_renumber_mapping = dict(self.last_renumber_mapping)
        dup.mutation_stamp = self.mutation_stamp
        return dup

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_can_contain(self, parent: NodeId, kind: NodeKind) -> None:
        pnode = self.node(parent)
        if pnode.kind is NodeKind.TEXT or pnode.kind is NodeKind.ATTRIBUTE:
            raise DocumentError(f"{pnode.kind.value} nodes cannot have children")
        if kind is NodeKind.DOCUMENT:
            raise DocumentError("cannot create a second document node")
        if pnode.is_document and kind is NodeKind.ELEMENT and self.root is not None:
            raise DocumentError("document already has a root element")

    def _fresh_child_id(
        self,
        parent: NodeId,
        before: Optional[NodeId],
        after: Optional[NodeId],
    ) -> NodeId:
        try:
            return self._scheme.child_id_between(parent, before, after)
        except RenumberingRequired:
            mapping = self._renumber_children(parent)
            before = mapping.get(before, before) if before is not None else None
            after = mapping.get(after, after) if after is not None else None
            # The sibling run is now 2-spaced, so a gap always exists.
            return self._scheme.child_id_between(parent, before, after)

    def _renumber_children(self, parent: NodeId) -> Dict[NodeId, NodeId]:
        """Reassign 2-spaced integer components to a sibling run.

        Only reachable under :class:`RenumberingScheme`; rewrites the ids
        of the siblings *and all their descendants* -- the cost that
        persistent schemes avoid (benchmark E13 measures it through
        :attr:`renumber_count` / :attr:`renumbered_nodes`).
        """
        kids = list(self._children.get(parent, ()))
        self.renumber_count += 1
        mapping: Dict[NodeId, NodeId] = {}
        for index, old in enumerate(kids):
            new = parent.child(Fraction(2 * (index + 1)))
            if new != old:
                for sub in self.subtree(old):
                    mapping[sub] = NodeId(new.components + sub.components[old.level :])
        self.last_renumber_mapping = mapping
        if not mapping:
            return mapping
        self.renumbered_nodes += len(mapping)
        new_nodes: Dict[NodeId, Node] = {}
        for nid, node in self._nodes.items():
            target = mapping.get(nid, nid)
            new_nodes[target] = Node(target, node.kind, node.label, node.value)
        new_children: Dict[NodeId, List[NodeId]] = {}
        for nid, cs in self._children.items():
            new_children[mapping.get(nid, nid)] = [mapping.get(c, c) for c in cs]
        self._nodes = new_nodes
        self._children = new_children
        self.mutation_stamp += 1
        return mapping

    def renumber_siblings(self, parent: NodeId) -> None:
        """Public hook used by the E13 ablation to force a renumbering."""
        self._renumber_children(parent)

    def _install(self, node: Node) -> None:
        parent = node.nid.parent()
        kids = self._children.setdefault(parent, [])
        # Insert preserving document order (labels are ordered, so a
        # bisect on the component would also work; linear keeps it simple
        # and the lists are short in practice).
        index = len(kids)
        for i, existing in enumerate(kids):
            if node.nid < existing:
                index = i
                break
        kids.insert(index, node.nid)
        self._nodes[node.nid] = node
        self._children.setdefault(node.nid, [])
        self.mutation_stamp += 1
