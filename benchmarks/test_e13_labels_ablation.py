"""E13 (added, ablation): numbering schemes under update churn.

The paper requires a scheme where "numbers assigned to existing nodes
remain the same even after an update" (section 3.1).  This ablation
measures what that buys: repeated insert-between under

- the persistent Dewey scheme (the paper's [12] equivalent),
- the LSDX-style string scheme ([8]),
- the naive renumbering baseline, which must rewrite sibling ids.

Rows: scheme | inserts | renumber episodes | node ids rewritten.
"""

import pytest

from repro.xmltree import (
    LSDXScheme,
    NodeKind,
    PersistentDeweyScheme,
    RenumberingScheme,
    XMLDocument,
)

INSERTS = 200


def churn(scheme) -> "XMLDocument":
    """Worst-case churn: always insert right after the first child."""
    doc = XMLDocument(scheme)
    root = doc.add_root("r")
    anchor = doc.append_child(root, NodeKind.ELEMENT, "first")
    doc.append_child(root, NodeKind.ELEMENT, "last")
    for i in range(INSERTS):
        doc.insert_after(anchor, NodeKind.ELEMENT, f"n{i}")
        anchor = doc.last_renumber_mapping.get(anchor, anchor)
    return doc


@pytest.mark.parametrize(
    "scheme_factory",
    [PersistentDeweyScheme, LSDXScheme, RenumberingScheme],
    ids=["persistent-dewey", "lsdx", "renumbering"],
)
def test_e13_insert_between_churn(benchmark, scheme_factory):
    doc = benchmark(churn, scheme_factory())
    assert len(doc.children(doc.root)) == INSERTS + 2
    if scheme_factory is RenumberingScheme:
        # The ablation's point: the naive scheme pays for persistence.
        assert doc.renumber_count > 0
        assert doc.renumbered_nodes > 0
    else:
        assert doc.renumber_count == 0
        assert doc.renumbered_nodes == 0


@pytest.mark.parametrize(
    "scheme_factory",
    [PersistentDeweyScheme, LSDXScheme, RenumberingScheme],
    ids=["persistent-dewey", "lsdx", "renumbering"],
)
def test_e13_append_only_workload(benchmark, scheme_factory):
    """Append-only: every scheme should be renumbering-free."""

    def run():
        doc = XMLDocument(scheme_factory())
        root = doc.add_root("r")
        for i in range(INSERTS):
            doc.append_child(root, NodeKind.ELEMENT, f"n{i}")
        return doc

    doc = benchmark(run)
    assert doc.renumber_count == 0


def test_e13_geometry_survives_churn(benchmark):
    """Persistence pays off: ids taken before churn remain valid and
    their derived geometry is unchanged (the paper's core claim)."""
    scheme = PersistentDeweyScheme()
    doc = XMLDocument(scheme)
    root = doc.add_root("r")
    anchor = doc.append_child(root, NodeKind.ELEMENT, "first")
    witness = doc.append_child(anchor, NodeKind.ELEMENT, "deep")

    def run():
        local = doc.copy()
        a = anchor
        for i in range(100):
            local.insert_after(a, NodeKind.ELEMENT, f"n{i}")
        # The pre-churn identifiers still resolve, and geometry derived
        # from numbers alone is intact.
        assert local.label(witness) == "deep"
        assert witness.parent() == anchor
        assert anchor.parent() == root
        return local

    benchmark(run)
