"""Conflict resolution (axiom 14): latest matching rule wins."""

import pytest

from repro.security import (
    PermissionResolver,
    Policy,
    Privilege,
    SubjectHierarchy,
)
from repro.xmltree import parse_xml


@pytest.fixture
def tiny_doc():
    return parse_xml("<r><a>t1</a><b>t2</b></r>")


@pytest.fixture
def tiny_subjects():
    h = SubjectHierarchy()
    h.add_role("role")
    h.add_role("subrole", member_of="role")
    h.add_user("user", member_of="subrole")
    return h


@pytest.fixture
def rsv():
    return PermissionResolver()


def node_of(doc, path):
    from repro.xpath import XPathEngine

    return XPathEngine().select(doc, path)[0]


class TestAxiom14:
    def test_no_rules_means_no_perm(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        table = rsv.resolve(tiny_doc, policy, "user")
        for priv in Privilege:
            assert table.nodes_with(priv) == frozenset()

    def test_simple_accept(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        b = node_of(tiny_doc, "//b")
        assert table.holds(a, Privilege.READ)
        assert not table.holds(b, Privilege.READ)

    def test_later_deny_overrides_accept(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//*", "role")
        policy.deny("read", "//a", "subrole")
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        b = node_of(tiny_doc, "//b")
        assert not table.holds(a, Privilege.READ)
        assert table.holds(b, Privilege.READ)

    def test_later_accept_overrides_deny(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.deny("read", "//a", "role")
        policy.grant("read", "//a", "subrole")
        table = rsv.resolve(tiny_doc, policy, "user")
        assert table.holds(node_of(tiny_doc, "//a"), Privilege.READ)

    def test_accept_deny_accept_chain(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        policy.deny("read", "//a", "role")
        policy.grant("read", "//a", "role")
        table = rsv.resolve(tiny_doc, policy, "user")
        assert table.holds(node_of(tiny_doc, "//a"), Privilege.READ)

    def test_deny_on_disjoint_path_does_not_override(
        self, tiny_doc, tiny_subjects, rsv
    ):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        policy.deny("read", "//b", "role")  # later, but different nodes
        table = rsv.resolve(tiny_doc, policy, "user")
        assert table.holds(node_of(tiny_doc, "//a"), Privilege.READ)

    def test_rules_for_unrelated_subject_ignored(
        self, tiny_doc, tiny_subjects, rsv
    ):
        tiny_subjects.add_user("other")
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "other")
        table = rsv.resolve(tiny_doc, policy, "user")
        assert not table.holds(node_of(tiny_doc, "//a"), Privilege.READ)

    def test_deny_through_different_ancestor_applies(
        self, tiny_doc, tiny_subjects, rsv
    ):
        """The deny may target any subject s'' with isa(s, s'')."""
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        policy.deny("read", "//a", "user")  # directly at the user
        table = rsv.resolve(tiny_doc, policy, "user")
        assert not table.holds(node_of(tiny_doc, "//a"), Privilege.READ)

    def test_privileges_independent(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        policy.deny("update", "//a", "role")
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        assert table.holds(a, Privilege.READ)
        assert not table.holds(a, Privilege.UPDATE)

    def test_user_variable_binds_to_resolved_user(self, tiny_subjects, rsv):
        doc = parse_xml("<r><user/><other/></r>")
        policy = Policy(tiny_subjects)
        policy.grant("read", "/r/*[$USER]", "role")
        table = rsv.resolve(doc, policy, "user")
        assert table.holds(node_of(doc, "//user"), Privilege.READ)
        assert not table.holds(node_of(doc, "//other"), Privilege.READ)


class TestExplanation:
    def test_explain_returns_winning_rule(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        deny = policy.deny("read", "//a", "subrole")
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        assert table.explain(a, Privilege.READ) == deny

    def test_explain_none_when_no_rule_matched(
        self, tiny_doc, tiny_subjects, rsv
    ):
        policy = Policy(tiny_subjects)
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        assert table.explain(a, Privilege.READ) is None

    def test_facts_projection(self, tiny_doc, tiny_subjects, rsv):
        policy = Policy(tiny_subjects)
        policy.grant("read", "//a", "role")
        table = rsv.resolve(tiny_doc, policy, "user")
        a = node_of(tiny_doc, "//a")
        assert ("user", a, "read") in table.facts()


class TestPaperPolicy:
    """Spot checks of equation 13 against the running example."""

    def test_secretary_reads_structure_not_diagnosis_content(
        self, doc, policy, rsv
    ):
        table = rsv.resolve(doc, policy, "beaufort")
        diag_text = node_of(doc, "/patients/franck/diagnosis/text()")
        diag = node_of(doc, "/patients/franck/diagnosis")
        assert table.holds(diag, Privilege.READ)
        assert not table.holds(diag_text, Privilege.READ)
        assert table.holds(diag_text, Privilege.POSITION)  # rule 3

    def test_secretary_write_privileges(self, doc, policy, rsv):
        table = rsv.resolve(doc, policy, "beaufort")
        patients = node_of(doc, "/patients")
        franck = node_of(doc, "//franck")
        assert table.holds(patients, Privilege.INSERT)  # rule 8
        assert table.holds(franck, Privilege.UPDATE)  # rule 9
        assert not table.holds(patients, Privilege.DELETE)

    def test_doctor_diagnosis_privileges(self, doc, policy, rsv):
        table = rsv.resolve(doc, policy, "laporte")
        diag = node_of(doc, "/patients/franck/diagnosis")
        diag_text = node_of(doc, "/patients/franck/diagnosis/text()")
        assert table.holds(diag, Privilege.INSERT)  # rule 10
        assert table.holds(diag_text, Privilege.UPDATE)  # rule 11
        assert table.holds(diag_text, Privilege.DELETE)  # rule 12

    def test_patient_reads_only_own_file(self, doc, policy, rsv):
        table = rsv.resolve(doc, policy, "robert")
        robert = node_of(doc, "//robert")
        franck = node_of(doc, "//franck")
        assert table.holds(robert, Privilege.READ)
        assert not table.holds(franck, Privilege.READ)

    def test_epidemiologist_position_on_names(self, doc, policy, rsv):
        table = rsv.resolve(doc, policy, "richard")
        franck = node_of(doc, "//franck")
        assert not table.holds(franck, Privilege.READ)  # rule 6
        assert table.holds(franck, Privilege.POSITION)  # rule 7
