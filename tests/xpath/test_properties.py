"""Property-based tests of the XPath evaluator on random documents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import NodeKind, document_order_key
from repro.xpath import XPathEngine

from tests.strategies import documents

ENGINE = XPathEngine()
COMPAT_ENGINE = XPathEngine(star_matches_text=True)

PATHS = st.sampled_from(
    [
        "//*",
        "//a",
        "//a/*",
        "//b//c",
        "/*/*",
        "//text()",
        "//node()",
        "//a/..",
        "//*[1]",
        "//*[last()]",
        "//a | //b",
        "//*/self::*",
    ]
)


@given(documents(), PATHS)
@settings(max_examples=120)
def test_node_sets_are_sorted_and_unique(doc, path):
    """Every node-set result is in document order without duplicates."""
    result = ENGINE.select(doc, path)
    keys = [document_order_key(n) for n in result]
    assert keys == sorted(keys)
    assert len(set(result)) == len(result)


@given(documents())
@settings(max_examples=80)
def test_descendant_equals_child_transitive_closure(doc):
    via_axis = set(ENGINE.select(doc, "/descendant::*"))
    # Fixpoint of repeated child steps.
    frontier = set(ENGINE.select(doc, "/*"))
    closure = set()
    while frontier:
        closure |= frontier
        nxt = set()
        for node in frontier:
            nxt |= set(doc.children(node))
        frontier = {n for n in nxt if doc.kind(n) is NodeKind.ELEMENT} - closure
        closure |= nxt
    elements = {n for n in closure if doc.kind(n) is NodeKind.ELEMENT}
    assert via_axis == elements


@given(documents())
@settings(max_examples=80)
def test_following_preceding_partition(doc):
    """For every node: following, preceding, ancestors and
    descendants-or-self partition the non-attribute nodes."""
    everything = {
        n for n in doc.all_nodes() if doc.kind(n) is not NodeKind.ATTRIBUTE
    }
    for node in everything:
        following = set(ENGINE.select(doc, "following::node()", context_node=node))
        preceding = set(ENGINE.select(doc, "preceding::node()", context_node=node))
        ancestors = set(ENGINE.select(doc, "ancestor::node()", context_node=node))
        dos = set(
            ENGINE.select(doc, "descendant-or-self::node()", context_node=node)
        )
        sets = [following, preceding, ancestors, dos]
        union = set().union(*sets)
        assert union == everything
        total = sum(len(s) for s in sets)
        assert total == len(everything)  # pairwise disjoint


@given(documents())
@settings(max_examples=80)
def test_double_slash_equals_descendant_or_self_expansion(doc):
    assert ENGINE.select(doc, "//a") == ENGINE.select(
        doc, "/descendant-or-self::node()/child::a"
    )


@given(documents())
@settings(max_examples=80)
def test_union_is_commutative_and_idempotent(doc):
    ab = ENGINE.select(doc, "//a | //b")
    ba = ENGINE.select(doc, "//b | //a")
    aa = ENGINE.select(doc, "//a | //a")
    assert ab == ba
    assert aa == ENGINE.select(doc, "//a")


@given(documents())
@settings(max_examples=80)
def test_count_matches_selection_length(doc):
    count = ENGINE.evaluate(doc, "count(//*)")
    assert count == float(len(ENGINE.select(doc, "//*")))


@given(documents())
@settings(max_examples=80)
def test_parent_of_child_is_self(doc):
    """x/child::*/parent::* never leaves x's subtree closure."""
    for node in ENGINE.select(doc, "//*"):
        kids = ENGINE.select(doc, "child::*", context_node=node)
        if kids:
            parents = ENGINE.select(doc, "child::*/..", context_node=node)
            assert parents == [node]


@given(documents())
@settings(max_examples=100)
def test_label_index_fast_path_equals_generic_evaluation(doc):
    """``//a`` (fast path) == the same steps written so the generic
    evaluator must run them (a vacuous predicate defeats the fast
    path's predicate-free requirement)."""
    for name in ("a", "b", "diagnosis", "zzz"):
        fast = ENGINE.select(doc, f"//{name}")
        slow = ENGINE.select(
            doc, f"/descendant-or-self::node()/child::{name}[true()]"
        )
        assert fast == slow


@given(documents())
@settings(max_examples=60)
def test_label_index_fast_path_from_inner_context(doc):
    """The fast path respects the context subtree, not just the root."""
    for context in ENGINE.select(doc, "/*/*"):
        fast = ENGINE.select(doc, ".//a", context_node=context)
        slow = ENGINE.select(
            doc, "./descendant-or-self::node()/child::a[true()]",
            context_node=context,
        )
        assert fast == slow


@given(documents())
@settings(max_examples=100)
def test_kind_index_fast_paths_equal_generic(doc):
    """``//*``, ``//node()``, ``//text()`` (index-answered) equal the
    generic evaluation of the same steps (fast path defeated by a
    vacuous predicate)."""
    for engine in (ENGINE, COMPAT_ENGINE):
        for test in ("*", "node()", "text()"):
            fast = engine.select(doc, f"//{test}")
            slow = engine.select(
                doc, f"/descendant-or-self::node()/child::{test}[true()]"
            )
            assert fast == slow, (test, engine is COMPAT_ENGINE)


@given(documents())
@settings(max_examples=60)
def test_kind_index_fast_path_from_inner_context(doc):
    for context in ENGINE.select(doc, "/*/*"):
        for test in ("*", "node()", "text()"):
            fast = ENGINE.select(doc, f".//{test}", context_node=context)
            slow = ENGINE.select(
                doc,
                f"./descendant-or-self::node()/child::{test}[true()]",
                context_node=context,
            )
            assert fast == slow
