"""The section-2.2 covert channel: open in the insecure baseline,
closed by the secure executor."""

import pytest

from repro.security import (
    InsecureWriteExecutor,
    SecureWriteExecutor,
)
from repro.xmltree import serialize
from repro.xupdate import Remove, Rename, UpdateContent


@pytest.fixture
def secretary_view(db):
    return db.build_view("beaufort")


@pytest.fixture
def insecure():
    return InsecureWriteExecutor()


@pytest.fixture
def secure():
    return SecureWriteExecutor()


PROBE = Rename("/patients/robert[diagnosis/text()='pneumonia']", "robert")
MISS = Rename("/patients/robert[diagnosis/text()='influenza']", "robert")


class TestInsecureLeaks:
    def test_probe_hits_on_source(self, secretary_view, insecure):
        """The SQL-style attack: selection count leaks the diagnosis."""
        hit = insecure.apply(secretary_view, PROBE)
        miss = insecure.apply(secretary_view, MISS)
        assert len(hit.selected) == 1
        assert len(miss.selected) == 0
        # The attacker holds the update privilege, so the hit succeeds.
        assert len(hit.affected) == 1

    def test_write_privileges_still_enforced(self, secretary_view, insecure):
        """Insecure = source-evaluated, not privilege-free."""
        result = insecure.apply(
            secretary_view,
            UpdateContent("/patients/robert/diagnosis", "overwritten"),
        )
        # Secretary has no update on diagnosis text even insecurely.
        assert result.affected == []
        assert result.denials

    def test_paper_sql_example_shape(self, secretary_view, insecure):
        """2 rows updated: count(affected) is the leaked bit-count."""
        probe_all = Rename(
            "/patients/*[diagnosis/text()]", "x"
        )
        result = insecure.apply(secretary_view, probe_all)
        assert len(result.selected) == 2  # "2 rows updated"


class TestSecureCloses:
    def test_probe_selects_nothing_on_view(self, secretary_view, secure):
        hit = secure.apply(secretary_view, PROBE)
        miss = secure.apply(secretary_view, MISS)
        # Both probes are indistinguishable: zero selected either way.
        assert len(hit.selected) == len(miss.selected) == 0
        assert hit.affected == miss.affected == []

    def test_remove_probe_also_blind(self, secretary_view, secure):
        probe = Remove("/patients/robert[diagnosis/text()='pneumonia']")
        result = secure.apply(secretary_view, probe)
        assert result.selected == []

    def test_secure_and_insecure_agree_on_clean_operations(
        self, db, secretary_view, secure, insecure
    ):
        """When the PATH touches only visible data, both semantics
        produce the same new database."""
        op = Rename("/patients/franck", "francois")
        a = secure.apply(secretary_view, op)
        b = insecure.apply(secretary_view, op)
        assert a.document.facts() == b.document.facts()
        assert serialize(a.document) == serialize(b.document)


class TestInsecureOtherOperations:
    """The remaining operation branches of the insecure baseline."""

    def test_insecure_append(self, db):
        from repro.xmltree import element
        from repro.xupdate import Append

        view = db.build_view("beaufort")
        result = InsecureWriteExecutor().apply(
            view, Append("/patients", element("albert"))
        )
        assert len(result.affected) == 1  # secretary holds insert

    def test_insecure_insert_before_and_after(self, db):
        from repro.xmltree import element
        from repro.xupdate import InsertAfter, InsertBefore

        view = db.build_view("beaufort")
        executor = InsecureWriteExecutor()
        before = executor.apply(view, InsertBefore("/patients/robert", element("k")))
        after = executor.apply(view, InsertAfter("/patients/robert", element("k")))
        assert len(before.affected) == len(after.affected) == 1

    def test_insecure_remove_checks_delete(self, db):
        view = db.build_view("beaufort")
        result = InsecureWriteExecutor().apply(view, Remove("/patients/franck"))
        # Secretary has no delete privilege anywhere.
        assert result.affected == []
        assert result.denials

    def test_insecure_remove_with_privilege(self, db):
        view = db.build_view("laporte")
        result = InsecureWriteExecutor().apply(
            view, Remove("//diagnosis/text()")
        )
        assert len(result.affected) == 2  # doctor deletes both contents

    def test_insecure_update_content(self, db):
        view = db.build_view("laporte")
        result = InsecureWriteExecutor().apply(
            view, UpdateContent("//diagnosis", "flu")
        )
        assert len(result.affected) == 2

    def test_unknown_operation_type_rejected(self, db):
        view = db.build_view("beaufort")

        class Weird:
            path = "/"

        with pytest.raises(TypeError):
            InsecureWriteExecutor().apply(view, Weird())
