"""View derivation: the pruned document a user may see (axioms 15-17).

The paper's view access-control strategy (section 4.4.1):

- the document node always belongs to the view (axiom 15);
- a node is *selected* iff the user holds the ``read`` or ``position``
  privilege on it **and its parent is itself selected** (axioms 16-17),
  so the view is a pruned version of the source;
- a selected node held with only ``position`` is shown with the
  ``RESTRICTED`` label (axiom 17); holding ``read`` shows the real
  label (axiom 16 wins over 17 by its ``¬perm(s, n, read)`` guard).

Selected nodes are *not renumbered* -- identifiers are internal and
invisible to users, so sharing them between source and view creates no
inference channel (paper, section 4.4.1) while letting the write layer
map view selections straight back to source nodes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.labels import DOCUMENT_ID, NodeId
from ..xmltree.node import RESTRICTED, NodeKind
from ..xmltree.serializer import serialize
from ..xpath.engine import XPathEngine
from .perm import PermissionResolver, PermissionTable
from .policy import Policy
from .privileges import Privilege

__all__ = ["View", "ViewBuilder"]


@dataclass
class View:
    """A user's authorized view of a source document.

    Attributes:
        user: the session user the view was derived for.
        doc: the view *as a document* -- pruned, with RESTRICTED labels
            substituted; queries and PATH selection run against this.
        source: the source document the view was derived from.
        restricted: nodes shown with the RESTRICTED label (position
            privilege without read).
        permissions: the full permission table used to build the view
            (also carries the write privileges for the secure executor).
        policy: the policy the view was derived under, kept so the
            secure executor can re-derive views between script steps.
    """

    user: str
    doc: XMLDocument
    source: XMLDocument
    restricted: FrozenSet[NodeId]
    permissions: PermissionTable
    policy: Policy
    #: Memoized (mutation_stamp, digest) of the last fingerprint call.
    _fingerprint_cache: Optional[Tuple[int, str]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def visible(self, nid: NodeId) -> bool:
        """True if the node is in the view (readable or RESTRICTED)."""
        return nid in self.doc

    def is_restricted(self, nid: NodeId) -> bool:
        """True if the node is shown with the RESTRICTED label."""
        return nid in self.restricted

    def label(self, nid: NodeId) -> str:
        """The label the user sees for a visible node."""
        return self.doc.label(nid)

    def facts(self) -> Set[Tuple[NodeId, str]]:
        """The ``node_view(n, v)`` facts of the derived view theory."""
        return self.doc.facts()

    def fingerprint(self) -> str:
        """Content hash of the serialized view document.

        Two views with equal fingerprints are byte-identical to the
        user; the crash-safety suite uses this to state the atomicity
        invariant (a failed script leaves every session's fingerprint
        unchanged).

        The digest is memoized against the view document's mutation
        stamp, so repeated fingerprinting of an unchanged view (the
        atomicity suite fingerprints every session before *and* after
        every script) serializes once.
        """
        stamp = self.doc.mutation_stamp
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        digest = hashlib.sha256(
            serialize(self.doc).encode("utf-8")
        ).hexdigest()
        self._fingerprint_cache = (stamp, digest)
        return digest


class ViewBuilder:
    """Materializes :class:`View` objects (axioms 15-17).

    Args:
        resolver: permission resolver; a paper-compat default is built
            if omitted.
    """

    def __init__(self, resolver: Optional[PermissionResolver] = None) -> None:
        self._resolver = resolver if resolver is not None else PermissionResolver()

    @property
    def resolver(self) -> PermissionResolver:
        return self._resolver

    def build(
        self,
        doc: XMLDocument,
        policy: Policy,
        user: str,
        permissions: Optional[PermissionTable] = None,
    ) -> View:
        """Derive the view of ``doc`` that ``user`` is permitted to see.

        Args:
            doc: the source document.
            policy: the security policy.
            user: the session user (the paper's ``logged(s)``).
            permissions: a pre-computed permission table (derived if
                omitted).
        """
        table = (
            permissions
            if permissions is not None
            else self._resolver.resolve(doc, policy, user)
        )
        readable = table.nodes_with(Privilege.READ)
        positioned = table.nodes_with(Privilege.POSITION)

        selected: Set[NodeId] = {DOCUMENT_ID}
        restricted: Set[NodeId] = set()
        prune_roots: List[NodeId] = []
        stack: List[NodeId] = [DOCUMENT_ID]
        while stack:
            parent = stack.pop()
            for child in self._all_children(doc, parent):
                if child in readable:
                    selected.add(child)
                    stack.append(child)
                elif child in positioned:
                    selected.add(child)
                    restricted.add(child)
                    stack.append(child)
                else:
                    prune_roots.append(child)

        view_doc = doc.copy()
        for root in prune_roots:
            view_doc.remove_subtree(root)
        for nid in restricted:
            view_doc.relabel(nid, RESTRICTED)
            # A position-only *attribute* must hide its value too --
            # relabelling alone would leak it through serialization.
            if view_doc.node(nid).kind is NodeKind.ATTRIBUTE:
                view_doc.set_value(nid, RESTRICTED)
        return View(
            user=user,
            doc=view_doc,
            source=doc,
            restricted=frozenset(restricted),
            permissions=table,
            policy=policy,
        )

    @staticmethod
    def _all_children(doc: XMLDocument, nid: NodeId) -> List[NodeId]:
        """Content children plus attribute nodes (both access-checked)."""
        if doc.kind(nid) is NodeKind.ELEMENT:
            return doc.attributes(nid) + doc.children(nid)
        return doc.children(nid)
