"""The concurrent serving layer: governed requests over a database.

The paper specifies the access control model; this package makes it
*servable*: a thread-safe front-end (:class:`DatabaseServer`) that
wraps one :class:`~repro.security.SecureXMLDatabase` and gives every
call a serving contract -- reader-writer locking, retry with
decorrelated-jitter backoff on commit races, per-request deadlines,
admission control with a block/shed overload policy, a write circuit
breaker, and graceful degradation of the view caches.  See DESIGN.md
§9 for the full concurrency and failure/overload model.
"""

from .admission import AdmissionController, CircuitBreaker
from .dedup import DedupedResult, DedupTable
from .group import CommitTicket, GroupCommitter
from .retry import Deadline, RetryPolicy
from .rwlock import RWLock
from .server import DatabaseServer

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CommitTicket",
    "DatabaseServer",
    "Deadline",
    "DedupTable",
    "DedupedResult",
    "GroupCommitter",
    "RetryPolicy",
    "RWLock",
]
