"""Property tests for the Datalog engine.

The crucial one: the semi-naive evaluator computes exactly the naive
fixpoint.  A reference naive evaluator is implemented right here (20
lines, obviously correct, no deltas) and compared on random programs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    Atom,
    DatalogEngine,
    Literal,
    Program,
    Rule,
    Var,
    atom,
    neg,
    pos,
)

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def naive_fixpoint(facts, rules):
    """Reference evaluation: re-derive everything until nothing is new.

    Handles positive programs only (the random programs below are
    positive; negation is covered by the stratified unit tests).
    """
    db = {}
    for pred, args in facts:
        db.setdefault(pred, set()).add(args)
    changed = True
    while changed:
        changed = False
        fresh = []
        for rule in rules:
            for binding in _all_bindings(rule.body, db, {}):
                fresh.append(
                    (rule.head.predicate, rule.head.substitute(binding).args)
                )
        for pred, row in fresh:
            bucket = db.setdefault(pred, set())
            if row not in bucket:
                bucket.add(row)
                changed = True
    return db


def _all_bindings(body, db, binding):
    if not body:
        yield binding
        return
    first, rest = body[0], body[1:]
    assert isinstance(first, Literal) and not first.negated
    for row in db.get(first.atom.predicate, ()):
        extended = _match(first.atom.args, row, binding)
        if extended is not None:
            yield from _all_bindings(rest, db, extended)


def _match(pattern, row, binding):
    if len(pattern) != len(row):
        return None
    out = dict(binding)
    for term, value in zip(pattern, row):
        if isinstance(term, Var):
            if term.name in out:
                if out[term.name] != value:
                    return None
            else:
                out[term.name] = value
        elif term != value:
            return None
    return out


RULE_SHAPES = [
    Rule(atom("p", X, Y), (pos("e", X, Y),)),
    Rule(atom("p", X, Z), (pos("p", X, Y), pos("e", Y, Z))),
    Rule(atom("q", X), (pos("p", X, X),)),
    Rule(atom("r", X, Y), (pos("e", X, Y), pos("e", Y, X))),
    Rule(atom("s", X), (pos("e", X, Y), pos("p", Y, Z))),
    Rule(atom("p", Y, X), (pos("r", X, Y),)),
]


@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=15
    ),
    st.lists(st.integers(0, len(RULE_SHAPES) - 1), min_size=1, max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_semi_naive_equals_naive(edges, rule_indexes):
    facts = [("e", (a, b)) for a, b in edges]
    rules = [RULE_SHAPES[i] for i in rule_indexes]

    program = Program()
    for pred, args in facts:
        program.fact(pred, *args)
    for rule in rules:
        program.add_rule(rule)
    engine = DatalogEngine(program)
    derived = engine.solve()

    expected = naive_fixpoint(facts, rules)
    for pred in set(derived) | set(expected):
        assert derived.get(pred, set()) == expected.get(pred, set()), pred


@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
@settings(max_examples=60, deadline=None)
def test_negation_complement_property(edges):
    """good(X) with not bad(X) partitions the domain exactly."""
    program = Program()
    nodes = {n for edge in edges for n in edge}
    for n in nodes:
        program.fact("n", n)
    for a, b in edges:
        program.fact("bad", a)  # anything with an outgoing edge is bad
    program.rule(atom("good", X), pos("n", X), neg("bad", X))
    engine = DatalogEngine(program)
    good = {x for (x,) in engine.query("good")}
    bad = {a for a, _b in edges}
    assert good == nodes - bad


@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
@settings(max_examples=60, deadline=None)
def test_solve_deterministic(edges):
    """Two engines over the same program derive identical relations."""

    def build():
        program = Program()
        for a, b in edges:
            program.fact("e", a, b)
        program.rule(atom("t", X, Y), pos("e", X, Y))
        program.rule(atom("t", X, Z), pos("t", X, Y), pos("e", Y, Z))
        return DatalogEngine(program).solve()

    assert build() == build()
