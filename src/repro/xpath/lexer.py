"""Tokenizer for XPath 1.0 expressions.

Implements the disambiguation rules of the XPath 1.0 spec section 3.7:

- ``*`` is the multiplication operator when the preceding token could end
  an operand, otherwise a wildcard name test;
- the names ``and``, ``or``, ``div``, ``mod`` are operators in the same
  "after an operand" position, otherwise ordinary names;
- a name followed by ``(`` is a function call or a kind test; a name
  followed by ``::`` is an axis name.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "XPathSyntaxError", "tokenize"]


class XPathSyntaxError(ValueError):
    """Malformed XPath expression.

    Attributes:
        position: character offset of the error in the expression.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    """One lexical token.

    kinds: ``name``, ``number``, ``literal``, ``variable``, ``op``
    (multi-purpose operators and punctuation), ``eof``.
    """

    kind: str
    value: str
    position: int

    def is_op(self, *values: str) -> bool:
        """True when this is an op token with one of the given values."""
        return self.kind == "op" and self.value in values


_NUMBER_RE = re.compile(r"\d+(\.\d*)?|\.\d+")
_NAME_RE = re.compile(r"[A-Za-z_][-A-Za-z0-9._]*(:[A-Za-z_][-A-Za-z0-9._]*)?")
_TWO_CHAR_OPS = ("//", "..", "::", "<=", ">=", "!=")
_ONE_CHAR_OPS = "/()[].@,|+-=<>*"
_OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})


def tokenize(expression: str) -> List[Token]:
    """Tokenize an XPath expression.

    Returns a token list terminated by an ``eof`` token.

    Raises:
        XPathSyntaxError: on an unrecognized character or unterminated
            literal.
    """
    tokens: List[Token] = []
    pos = 0
    n = len(expression)

    def preceding_allows_operator() -> bool:
        """True when the previous token can end an operand (spec 3.7)."""
        if not tokens:
            return False
        prev = tokens[-1]
        if prev.kind in ("number", "literal", "variable"):
            return True
        if prev.kind == "name":
            return True
        return prev.is_op(")", "]", "..", ".")

    while pos < n:
        ch = expression[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch in "'\"":
            end = expression.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", pos)
            tokens.append(Token("literal", expression[pos + 1 : end], pos))
            pos = end + 1
            continue
        if ch == "$":
            match = _NAME_RE.match(expression, pos + 1)
            if match is None:
                raise XPathSyntaxError("expected a variable name after '$'", pos)
            tokens.append(Token("variable", match.group(), pos))
            pos = match.end()
            continue
        number = _NUMBER_RE.match(expression, pos)
        if number is not None and (ch.isdigit() or (ch == "." and number.group() != ".")):
            tokens.append(Token("number", number.group(), pos))
            pos = number.end()
            continue
        two = expression[pos : pos + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, pos))
            pos += 2
            continue
        if ch == "*":
            if preceding_allows_operator():
                tokens.append(Token("op", "*", pos))
            else:
                tokens.append(Token("name", "*", pos))
            pos += 1
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, pos))
            pos += 1
            continue
        match = _NAME_RE.match(expression, pos)
        if match is not None:
            name = match.group()
            if name in _OPERATOR_NAMES and preceding_allows_operator():
                tokens.append(Token("op", name, pos))
            else:
                tokens.append(Token("name", name, pos))
            pos = match.end()
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", pos)

    tokens.append(Token("eof", "", n))
    return tokens
