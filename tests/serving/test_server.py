"""The governed serving front-end: locks, retries, deadlines, overload."""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConcurrentUpdateError,
    DeadlineExceeded,
    OverloadError,
    RetryExhausted,
)
from repro.security import AccessDenied
from repro.serving import CircuitBreaker, DatabaseServer, Deadline, RetryPolicy
from repro.xmltree.serializer import serialize
from repro.xupdate import UpdateContent, UpdateScript

OP = UpdateContent("/patients/franck/diagnosis", "flu")


def make_server(db, clock, **kwargs):
    """A server on virtual time (no real sleeping or waiting)."""
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("sleep", clock.sleep)
    return DatabaseServer(db, **kwargs)


def make_flaky(session, races, monkeypatch):
    """Make the served session lose ``races`` commit races first."""
    real = session.execute
    seen = {"calls": 0}

    def flaky(operation, strict=False, checkpoint=None):
        seen["calls"] += 1
        if seen["calls"] <= races:
            raise ConcurrentUpdateError(
                f"synthetic race {seen['calls']}/{races}"
            )
        return real(operation, strict=strict, checkpoint=checkpoint)

    monkeypatch.setattr(session, "execute", flaky)
    return seen


class TestReads:
    def test_reads_flow_through_the_session(self, db, clock):
        server = make_server(db, clock)
        assert "diagnosis" in server.read_xml("laporte")
        assert server.query("laporte", "count(/patients/*)")
        assert server.view("laporte").user == "laporte"
        assert server.stats()["reads"] == 3

    def test_sessions_are_cached_per_user(self, db, clock):
        server = make_server(db, clock)
        assert server.session("laporte") is server.session("laporte")
        assert server.session("laporte") is not server.session("beaufort")

    def test_read_respects_the_default_deadline(self, db, clock):
        server = make_server(db, clock, default_deadline=1.0)
        server.read_xml("laporte")  # within budget
        clock.advance(0.0)
        expired = make_server(db, clock, default_deadline=0.0)
        with pytest.raises(DeadlineExceeded):
            expired.read_xml("laporte")
        assert expired.stats()["deadline_exceeded"] == 1


class TestWrites:
    def test_write_commits_and_counts(self, db, clock):
        server = make_server(db, clock)
        before = db.version
        result = server.execute("laporte", OP)
        assert result.fully_applied
        assert db.version == before + 1
        assert server.query("laporte", "string(/patients/franck/diagnosis)") == "flu"
        stats = server.stats()
        assert stats["writes"] == 1
        assert stats["commits"] == 1
        assert stats["commit_races"] == 0

    def test_strict_denial_is_an_application_outcome(self, db, clock):
        # AccessDenied means the model worked; it must not trip even a
        # hair-trigger breaker.
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        server = make_server(db, clock, breaker=breaker)
        with pytest.raises(AccessDenied):
            server.execute("beaufort", OP, strict=True)
        assert server.breaker.state == "closed"
        assert server.stats()["writes"] == 1
        assert server.stats()["commits"] == 0


class TestRetry:
    def test_commit_races_are_absorbed(self, db, clock, monkeypatch):
        policy = RetryPolicy(max_attempts=8, base=0.002, cap=0.25)
        server = make_server(db, clock, retry=policy)
        make_flaky(server.session("laporte"), races=3, monkeypatch=monkeypatch)
        result = server.execute("laporte", OP)  # no error reaches the client
        assert result.fully_applied
        stats = server.stats()
        assert stats["commit_races"] == 3
        assert stats["retries"] == 3
        assert stats["commits"] == 1
        assert stats["retry_exhausted"] == 0

    def test_backoff_sleeps_follow_the_policy(self, db, clock, monkeypatch):
        policy = RetryPolicy(max_attempts=8, base=0.002, cap=0.25)
        server = make_server(db, clock, retry=policy)
        make_flaky(server.session("laporte"), races=4, monkeypatch=monkeypatch)
        server.execute("laporte", OP)
        assert len(clock.sleeps) == 4
        assert clock.sleeps[0] == policy.base  # first backoff is the floor
        assert all(policy.base <= s <= policy.cap for s in clock.sleeps)

    def test_retry_exhausted_after_max_attempts(self, db, clock, monkeypatch):
        policy = RetryPolicy(max_attempts=3, base=0.001, cap=0.01)
        server = make_server(db, clock, retry=policy)
        seen = make_flaky(
            server.session("laporte"), races=99, monkeypatch=monkeypatch
        )
        with pytest.raises(RetryExhausted) as err:
            server.execute("laporte", OP)
        assert seen["calls"] == 3  # every attempt ran
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, ConcurrentUpdateError)
        stats = server.stats()
        assert stats["retry_exhausted"] == 1
        assert stats["commit_races"] == 3
        assert db.audit.rejections("retry-exhausted")

    def test_deadline_caps_the_backoff(self, db, clock, monkeypatch):
        # Remaining budget smaller than the drawn delay: sleep only the
        # remainder; waking exactly at the deadline surfaces
        # DeadlineExceeded instead of silently sleeping past it.
        policy = RetryPolicy(max_attempts=8, base=0.2, cap=0.2)
        server = make_server(db, clock, retry=policy)
        make_flaky(server.session("laporte"), races=1, monkeypatch=monkeypatch)
        with pytest.raises(DeadlineExceeded):
            server.execute("laporte", OP, deadline=0.05)
        assert clock.sleeps == [pytest.approx(0.05)]

    def test_deadline_spent_across_several_backoffs(self, db, clock, monkeypatch):
        policy = RetryPolicy(max_attempts=8, base=0.1, cap=0.1)
        server = make_server(db, clock, retry=policy)
        make_flaky(server.session("laporte"), races=99, monkeypatch=monkeypatch)
        with pytest.raises(DeadlineExceeded):
            # Two full backoffs fit the budget, the third is clipped to
            # the remaining 0.05s, then the expiry surfaces.
            server.execute("laporte", OP, deadline=0.25)
        assert clock.sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.1),
            pytest.approx(0.05),
        ]
        assert server.stats()["deadline_exceeded"] == 1


class TestDeadlines:
    def test_expired_budget_never_reaches_the_database(self, db, clock):
        server = make_server(db, clock)
        version = db.version
        with pytest.raises(DeadlineExceeded):
            server.execute("laporte", OP, deadline=0.0)
        assert db.version == version
        assert server.stats()["deadline_exceeded"] == 1
        assert db.audit.rejections("deadline")

    def test_mid_script_expiry_aborts_with_nothing_committed(self, db, clock):
        # Drive the executor's checkpoint hook directly: the deadline
        # expires between operations 1 and 2 and the whole script rolls
        # back through the savepoint path.
        session = db.login("laporte")
        before = serialize(db.document)
        version = db.version
        deadline = Deadline(1.0, clock=clock)
        calls = {"n": 0}

        def checkpoint():
            calls["n"] += 1
            if calls["n"] == 2:
                clock.advance(2.0)  # the first operation was slow
            deadline.check(f"script operation {calls['n'] - 1}")

        script = UpdateScript(
            (
                UpdateContent("/patients/franck/diagnosis", "flu"),
                UpdateContent("/patients/franck/diagnosis", "cold"),
            )
        )
        with pytest.raises(DeadlineExceeded):
            session.execute(script, checkpoint=checkpoint)
        assert calls["n"] == 2
        assert db.version == version
        assert serialize(db.document) == before  # op 1 rolled back
        aborts = db.audit.aborts()
        assert aborts and "deadline" in aborts[-1].reason

    def test_server_surfaces_mid_script_expiry(self, db, clock, monkeypatch):
        server = make_server(db, clock)
        session = server.session("laporte")

        def slow_script(operation, strict=False, checkpoint=None):
            clock.advance(10.0)  # the script out-runs its budget...
            checkpoint()  # ...and the next per-op checkpoint notices
            raise AssertionError("checkpoint should have raised")

        monkeypatch.setattr(session, "execute", slow_script)
        with pytest.raises(DeadlineExceeded):
            server.execute("laporte", OP, deadline=1.0)
        stats = server.stats()
        assert stats["deadline_exceeded"] == 1
        assert stats["commits"] == 0
        records = db.audit.rejections("deadline")
        assert records and "mid-script" in records[-1].reason


class TestOverload:
    def test_shed_policy_raises_and_audits(self, db, clock):
        server = make_server(db, clock, max_in_flight=1, overload="shed")
        server.admission.acquire()  # the budget is fully occupied
        try:
            with pytest.raises(OverloadError):
                server.query("laporte", "count(//*)")
            with pytest.raises(OverloadError):
                server.execute("laporte", OP)
        finally:
            server.admission.release()
        stats = server.stats()
        assert stats["shed"] == 2
        assert stats["admission_shed"] == 2
        shed = db.audit.rejections("shed")
        assert {r.operation for r in shed} == {"query", "UpdateContent"}
        # the budget recovered: requests flow again
        assert server.query("laporte", "count(//*)")

    def test_block_policy_times_out_against_the_deadline(self, db, clock):
        server = make_server(db, clock, max_in_flight=1, overload="block")
        server.admission.acquire()
        try:
            with pytest.raises(DeadlineExceeded):
                server.read_xml("laporte", deadline=0.0)
        finally:
            server.admission.release()
        assert server.stats()["deadline_exceeded"] == 1
        assert server.stats()["admission_queued"] == 1
        assert db.audit.rejections("deadline")

    def test_slots_are_released_after_failures(self, db, clock):
        server = make_server(db, clock, max_in_flight=2, overload="shed")
        with pytest.raises(AccessDenied):
            server.execute("beaufort", OP, strict=True)
        with pytest.raises(DeadlineExceeded):
            server.read_xml("laporte", deadline=0.0)
        assert server.admission.in_flight == 0


class TestCircuitBreaker:
    def test_failure_storm_opens_then_probe_heals(self, db, clock, monkeypatch):
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=5.0, clock=clock
        )
        server = make_server(db, clock, breaker=breaker)
        session = server.session("laporte")
        real = session.execute

        def boom(operation, strict=False, checkpoint=None):
            raise RuntimeError("storage torn")

        monkeypatch.setattr(session, "execute", boom)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                server.execute("laporte", OP)
        assert server.breaker.state == "open"
        assert server.stats()["breaker_trips"] == 1
        # while open, writes are refused without touching the session
        monkeypatch.setattr(
            session, "execute", lambda *a, **k: pytest.fail("must not run")
        )
        with pytest.raises(CircuitOpenError):
            server.execute("laporte", OP)
        # reads keep flowing: the breaker only guards the write path
        assert server.read_xml("laporte")
        # after the reset timeout the single probe closes the circuit
        clock.advance(5.0)
        monkeypatch.setattr(session, "execute", real)
        result = server.execute("laporte", OP)
        assert result.fully_applied
        assert server.breaker.state == "closed"


class TestStats:
    def test_stats_merge_all_layers(self, db, clock):
        server = make_server(db, clock, max_in_flight=8, overload="shed")
        server.read_xml("laporte")
        server.execute("laporte", OP)
        stats = server.stats()
        for key in (
            "reads",
            "writes",
            "commits",
            "retries",
            "commit_races",
            "shed",
            "deadline_exceeded",
            "retry_exhausted",
            "admission_admitted",
            "admission_peak_in_flight",
            "breaker_trips",
            "breaker_rejections",
            "breaker_state",
            "version",
            "degraded_rebuilds",
            "degraded_view_serves",
        ):
            assert key in stats, key
        assert stats["breaker_state"] == "closed"
        assert stats["version"] == db.version

    def test_stats_is_a_deep_snapshot_not_a_window(self, db, clock):
        """The returned ledger is a point-in-time deep copy: mutating
        it -- including any nested value -- never corrupts the live
        counters, and later server activity never shows up in an
        already-taken snapshot."""
        server = make_server(db, clock)
        server.read_xml("laporte")
        before = server.stats()

        # Vandalize the snapshot, top-level and nested alike.
        before["reads"] = 10_000
        before["commits"] = -5
        for value in before.values():
            if isinstance(value, dict):
                value.clear()
            elif isinstance(value, list):
                value.append("junk")
        assert server.stats()["reads"] == 1
        assert server.stats()["commits"] == 0

        # And the snapshot is frozen: new traffic does not leak in.
        frozen = server.stats()
        server.read_xml("laporte")
        server.read_xml("laporte")
        assert frozen["reads"] == 1
        assert server.stats()["reads"] == 3

    def test_two_snapshots_share_no_mutable_state(self, db, clock):
        server = make_server(db, clock)
        server.read_xml("laporte")
        one, two = server.stats(), server.stats()
        assert one == two
        for key, value in one.items():
            if isinstance(value, (dict, list)):
                assert value is not two[key], key
