"""Group commit: one fsync amortized over N concurrent writers.

Under fsync policy ``always`` every commit pays its own fsync -- E22's
numbers make that the dominant fixed cost of a durable write.  The
classic fix is *group commit* (leader/follower): writers that arrive
within a short window are batched, the batch's records are appended to
the write-ahead log back to back, and **one** fsync makes the whole
group durable before any member is acknowledged.

The shape here:

- :meth:`GroupCommitter.submit` joins the open group (creating one
  when none is open).  The first member in becomes the **leader**; the
  rest are **followers** who park on their :class:`CommitTicket`.
- The leader calls :meth:`GroupCommitter.drive`: it waits up to
  ``max_delay_ms`` for followers (or until ``max_batch`` members),
  seals the group, executes every member through
  :meth:`DatabaseServer.execute_once` inside the log's
  :meth:`~repro.wal.WriteAheadLog.group` window (appends deferred),
  issues the group's single :meth:`~repro.wal.WriteAheadLog.sync_group`,
  and only then resolves the tickets.
- A member's *own* failure (``AccessDenied``, ``UpdateAborted``, a
  deadline) resolves only that member's ticket -- it never poisons the
  group.  A member's commit race (``ConcurrentUpdateError``) marks the
  ticket *retryable*: the member re-submits into a later group on the
  server's :class:`~repro.serving.retry.RetryPolicy` schedule instead
  of holding this group through a backoff sleep.
- A *group* failure -- the fsync refused, a crash between append and
  sync -- poisons every committed-but-unacknowledged member's ticket
  and feeds the server's circuit breaker: an unacknowledged commit may
  or may not survive recovery, exactly like any other crash window.

Kill-points consulted (:mod:`repro.testing.faults`):
``group-after-leader-append`` once the leader's own member has run,
``group-before-fsync`` after every append but before the group's one
fsync, and ``old-primary-late-ack`` at the last instant before the
group fsync+acknowledge -- the deposed-primary window failover chaos
aims at.

Epoch poisoning: a group whose server was **fenced** (a promotion
bumped the fencing epoch elsewhere, see
:meth:`DatabaseServer.fence`) between its appends and its fsync fails
as a whole with :class:`~repro.errors.StaleEpochError` -- no member is
acknowledged, exactly like a crashed group, so a deposed primary can
never hand out a late ack for a write the new primary's history does
not contain.

Thread-agnostic by design: :meth:`commit` is the blocking wrapper for
thread-per-caller use (tests, the chaos lanes), while the asyncio
front-end (:mod:`repro.netserve`) uses :meth:`submit`/:meth:`drive`
plus ticket callbacks so ten thousand parked writers cost no threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from ..errors import (
    ConcurrentUpdateError,
    RetryExhausted,
    StaleEpochError,
    WalWriteError,
)
from ..testing.faults import kill_point
from .retry import Deadline
from .server import DatabaseServer

__all__ = ["CommitTicket", "GroupCommitter"]


class CommitTicket:
    """One writer's seat in a commit group.

    Resolved exactly once by the group's leader.  After
    :meth:`wait` returns True (or a done callback fires), exactly one
    of the terminal states holds:

    - :attr:`result` is set: the commit is applied *and durable*.
    - :attr:`retry` is True: the attempt hit a commit race (or the log
      was detached mid-attempt); nothing committed -- re-submit.
    - :attr:`error` is set: the attempt failed for this member alone,
      or the whole group failed before its fsync.
    """

    __slots__ = (
        "user", "operation", "strict", "deadline", "idem", "leader",
        "group", "result", "error", "retry", "_event", "_callbacks",
        "_lock",
    )

    def __init__(self, user, operation, strict, deadline, idem=None) -> None:
        self.user = user
        self.operation = operation
        self.strict = strict
        self.deadline: Deadline = deadline
        self.idem: Optional[str] = idem
        self.leader = False
        self.group: Optional["_Group"] = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.retry = False
        self._event = threading.Event()
        self._callbacks: List[Callable[["CommitTicket"], None]] = []
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        """True once the leader resolved this ticket."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; False when ``timeout`` expires first."""
        return self._event.wait(timeout)

    def add_done_callback(
        self, callback: Callable[["CommitTicket"], None]
    ) -> None:
        """Run ``callback(ticket)`` on resolution (immediately when the
        ticket is already resolved).  Callbacks run on the leader's
        thread -- keep them tiny (the asyncio front-end just hops back
        onto its loop with ``call_soon_threadsafe``)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(self) -> None:
        with self._lock:
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback(self)


class _Group:
    """One batch of members awaiting a shared fsync."""

    __slots__ = ("members", "sealed", "opened_at")

    def __init__(self, opened_at: float) -> None:
        self.members: List[CommitTicket] = []
        self.sealed = False
        self.opened_at = opened_at


class GroupCommitter:
    """Batches concurrent writes into single-fsync commit groups.

    Args:
        server: the :class:`DatabaseServer` whose
            :meth:`~DatabaseServer.execute_once` applies each member
            (and whose retry policy / rng / sleep pace the re-submits).
        max_batch: seal a group at this many members even if the window
            has time left.
        max_delay_ms: how long a leader waits for followers before
            flushing a non-full group -- the latency the first writer
            donates to throughput.
        clock: monotonic time source (injectable for tests).

    Counters land in the server's ledger: ``group_commits`` (groups
    flushed with at least one durable commit), ``grouped_records``
    (commits that rode a group) and ``group_fsyncs_saved`` (fsyncs a
    one-per-commit policy would have issued minus what the groups
    actually issued).
    """

    def __init__(
        self,
        server: DatabaseServer,
        *,
        max_batch: int = 128,
        max_delay_ms: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self._server = server
        self.max_batch = max_batch
        self.max_delay = max_delay_ms / 1000.0
        self._clock = clock
        self._cond = threading.Condition()
        self._open: Optional[_Group] = None

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------
    def submit(
        self,
        user: str,
        operation,
        strict: bool = False,
        deadline: "Optional[float | Deadline]" = None,
        idempotency_key: Optional[str] = None,
    ) -> CommitTicket:
        """Join the open commit group (opening one when none is).

        Returns immediately.  When the ticket comes back with
        ``leader=True`` the caller *must* run :meth:`drive` (on a
        thread it can afford to block); followers just wait on the
        ticket.  A non-None ``idempotency_key`` makes the member
        exactly-once (see :meth:`DatabaseServer.execute`).
        """
        ticket = CommitTicket(
            user, operation, strict, self._server._deadline(deadline),
            idempotency_key,
        )
        with self._cond:
            group = self._open
            if group is None or group.sealed or (
                len(group.members) >= self.max_batch
            ):
                group = _Group(self._clock())
                self._open = group
                ticket.leader = True
            ticket.group = group
            group.members.append(ticket)
            if len(group.members) >= self.max_batch:
                group.sealed = True
                if self._open is group:
                    self._open = None
                self._cond.notify_all()  # wake the waiting leader
        return ticket

    # ------------------------------------------------------------------
    # leading
    # ------------------------------------------------------------------
    def drive(self, ticket: CommitTicket) -> None:
        """Leader duty: wait out the window, seal, run the batch.

        Blocks for up to ``max_delay_ms`` plus the batch's execution;
        every ticket in the group -- the leader's included -- is
        resolved by the time this returns.  Never raises: failures land
        on the tickets.
        """
        if not ticket.leader:
            raise ValueError("drive() is the leader's job")
        group = ticket.group
        with self._cond:
            seal_at = group.opened_at + self.max_delay
            while not group.sealed:
                remaining = seal_at - self._clock()
                if remaining <= 0:
                    group.sealed = True
                    break
                self._cond.wait(remaining)
            if self._open is group:
                self._open = None
        self._run(group)

    def _run(self, group: _Group) -> None:
        server = self._server
        wal = server.database.wal
        committed: List[CommitTicket] = []
        applied = 0
        fsyncs_before = wal.stats["fsyncs"] if wal is not None else 0
        failure: Optional[BaseException] = None
        try:
            with wal.group() if wal is not None else _null():
                for index, member in enumerate(group.members):
                    self._apply(member, committed)
                    applied = index + 1
                    if index == 0:
                        kill_point(
                            "group-after-leader-append",
                            members=len(group.members),
                        )
                if committed:
                    kill_point("group-before-fsync", records=len(committed))
                    # The deposed-primary window: appends done, fsync
                    # and acks not yet issued.  A promotion elsewhere
                    # fences the server here; the whole group must die
                    # unacknowledged rather than hand out a late ack.
                    kill_point(
                        "old-primary-late-ack", records=len(committed)
                    )
                    if server.fenced:
                        raise StaleEpochError(
                            f"group of {len(committed)} commit(s) refused "
                            f"at the ack point: server fenced at epoch "
                            f"{server.fenced_at}",
                            epoch=server.epoch,
                            current=server.fenced_at or 0,
                        )
                    if wal is not None:
                        wal.sync_group()
        except BaseException as exc:  # noqa: BLE001 -- poison, never leak
            failure = exc
        if failure is not None:
            server._breaker.record_failure()
            if isinstance(failure, WalWriteError):
                server._count("wal_errors")
            # Members that committed before the group died may or may
            # not be durable: unknown outcome, never acknowledged.
            for member in committed:
                member.result = None
                member.error = failure
            # Members the batch never reached committed nothing; they
            # are safe to re-submit into a later group.
            for member in group.members[applied:]:
                member.retry, member.error = True, failure
            committed = []
        if committed:
            fsyncs_issued = (
                wal.stats["fsyncs"] - fsyncs_before if wal is not None else 0
            )
            server._count("group_commits")
            server._count("grouped_records", len(committed))
            server._count(
                "group_fsyncs_saved", max(0, len(committed) - fsyncs_issued)
            )
        for member in group.members:
            member._resolve()

    def _apply(
        self, member: CommitTicket, committed: List[CommitTicket]
    ) -> None:
        """Run one member; member-local failures stay member-local."""
        server = self._server
        try:
            member.result = server.execute_once(
                member.user, member.operation, member.strict,
                member.deadline, idempotency_key=member.idem,
            )
        except ConcurrentUpdateError as exc:
            member.retry, member.error = True, exc
        except WalWriteError as exc:
            if server.database.wal is None:
                # The failing log was detached mid-attempt; nothing
                # committed for this member -- re-run it against the
                # degraded (snapshot-only) server.
                member.retry, member.error = True, exc
            else:
                member.error = exc
        except Exception as exc:  # noqa: BLE001 -- resolves this ticket only
            member.error = exc
        else:
            committed.append(member)

    # ------------------------------------------------------------------
    # blocking wrapper (thread-per-caller use)
    # ------------------------------------------------------------------
    def commit(
        self,
        user: str,
        operation,
        strict: bool = False,
        deadline: "Optional[float | Deadline]" = None,
        idempotency_key: Optional[str] = None,
    ):
        """Apply an update through group commit, absorbing races.

        The blocking equivalent of :meth:`DatabaseServer.execute`: the
        caller's thread leads its group when it is first in, parks as a
        follower otherwise, and re-submits raced attempts on the
        server's retry schedule.  Returns the member's
        :class:`~repro.security.write.SecureUpdateResult`; the result
        is durable (group-fsynced) before this returns.
        """
        server = self._server
        deadline = server._deadline(deadline)
        policy = server.retry
        delay = 0.0
        last: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            ticket = self.submit(
                user, operation, strict, deadline, idempotency_key
            )
            if ticket.leader:
                self.drive(ticket)
            elif not ticket.wait(deadline.timeout()):
                # The group never resolved inside the budget; the
                # outcome is unknown (the leader may still flush it) --
                # the caller must treat this like any crashed-ack.
                raise server._deadline_error(
                    deadline, user, "group-commit", "group flush"
                )
            if not ticket.retry:
                if ticket.error is not None:
                    raise ticket.error
                return ticket.result
            last = ticket.error
            if attempt == policy.max_attempts:
                break
            remaining = deadline.remaining()
            if remaining <= 0.0:
                server._breaker.record_failure()
                raise server._deadline_error(
                    deadline, user, "group-commit", "backoff"
                )
            delay = policy.next_delay(delay, server._rng)
            server._count("retries")
            server._sleep(min(delay, remaining))
        server._breaker.record_failure()
        server._count("retry_exhausted")
        raise RetryExhausted(
            f"group commit by {user!r} lost {policy.max_attempts} "
            f"attempt(s); giving up",
            attempts=policy.max_attempts,
            last_error=last,
        ) from last


class _null:
    """A no-op context manager (database without an attached log)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None
