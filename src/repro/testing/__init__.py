"""Test-support utilities that ship with the library.

:mod:`repro.testing.faults` provides the fault-injection harness the
update executor and the storage layer consult at named kill-points; the
crash-safety test suites arm it to simulate failures at every point.
"""

from .faults import (
    KILL_POINTS,
    FaultInjector,
    InjectedFault,
    faults,
    inject,
    kill_point,
)

__all__ = [
    "KILL_POINTS",
    "FaultInjector",
    "InjectedFault",
    "faults",
    "inject",
    "kill_point",
]
