"""E16 (added, ablation): lazy (filter) vs materialized enforcement.

The paper's conclusion proposes evaluating filtered queries on the
source instead of materializing per-user views, and asks whether the
answers stay compatible (they do -- tests/security/test_lazy.py).
This ablation measures the trade-off the choice actually buys:

- *selective query* (one rooted path): lazy enforcement touches only
  the nodes on the path; materialization pays for the whole document.
- *broad query* (``//*``): both walk everything; materialization's
  pruned copy amortizes if reused, lazy re-checks per query.
- *write*: both must resolve permissions; lazy skips the copy.

Rows: strategy | workload | time.
"""

import pytest

from conftest import synthetic_hospital

from repro.security import SecureWriteExecutor, build_lazy_view
from repro.xupdate import UpdateContent

PATIENTS = 400
SELECTIVE = "/patients/patient00123/diagnosis/text()"
BROAD = "//*"


@pytest.fixture(scope="module")
def db():
    return synthetic_hospital(PATIENTS)


def test_e16_selective_query_materialized(benchmark, db):
    def run():
        session = db.login("beaufort")  # fresh view each time
        return session.query(SELECTIVE)

    result = benchmark(run)
    assert len(result) == 1


def test_e16_selective_query_lazy(benchmark, db):
    def run():
        session = db.login("beaufort", enforcement="lazy")
        return session.query(SELECTIVE)

    result = benchmark(run)
    assert len(result) == 1


def test_e16_broad_query_materialized(benchmark, db):
    def run():
        session = db.login("beaufort")
        return session.query(BROAD)

    result = benchmark(run)
    assert len(result) > PATIENTS


def test_e16_broad_query_lazy(benchmark, db):
    def run():
        session = db.login("beaufort", enforcement="lazy")
        return session.query(BROAD)

    result = benchmark(run)
    assert len(result) > PATIENTS


def test_e16_repeated_queries_materialized(benchmark, db):
    """One view, many queries: materialization's amortization case."""
    session = db.login("beaufort")
    session.view()

    def run():
        total = 0.0
        for i in (1, 2, 3, 4, 5):
            total += session.query(f"count(/patients/*[{i}]/diagnosis)")
        return total

    total = benchmark(run)
    assert total == 5.0


def test_e16_repeated_queries_lazy(benchmark, db):
    session = db.login("beaufort", enforcement="lazy")
    session.view()

    def run():
        total = 0.0
        for i in (1, 2, 3, 4, 5):
            total += session.query(f"count(/patients/*[{i}]/diagnosis)")
        return total

    total = benchmark(run)
    assert total == 5.0


def test_e16_secure_write_materialized(benchmark, db):
    executor = SecureWriteExecutor()
    op = UpdateContent("/patients/patient00099/diagnosis", "revised")

    def run():
        view = db.build_view("laporte")
        return executor.apply(view, op)

    result = benchmark(run)
    assert len(result.affected) == 1


def test_e16_secure_write_lazy(benchmark, db):
    executor = SecureWriteExecutor()
    op = UpdateContent("/patients/patient00099/diagnosis", "revised")

    def run():
        view = db.build_lazy_view("laporte")
        return executor.apply(view, op)

    result = benchmark(run)
    assert len(result.affected) == 1
