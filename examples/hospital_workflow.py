"""A full day at the hospital: multi-user workflow with audit trail.

Exercises every XUpdate operation under access control, in the order a
real admission would happen (the scenario the paper's policy was
written for):

1. the secretary admits a new patient (``xupdate:append``, rule 8);
2. the secretary fixes a misspelled patient name (``xupdate:rename``,
   rule 9);
3. the doctor poses a diagnosis (``xupdate:append`` into the diagnosis
   element, rule 10);
4. the doctor revises it (``xupdate:update``, rule 11);
5. the doctor retracts it (``xupdate:remove``, rule 12);
6. the patient reads their own file; the secretary sees RESTRICTED;
7. every refused attempt lands in the audit log.

Run with::

    python examples/hospital_workflow.py
"""

from repro import (
    Append,
    Remove,
    Rename,
    UpdateContent,
    element,
    serialize,
)
from repro.core import hospital_database


def show(title: str, xml: str) -> None:
    print(f"== {title} ==")
    print(xml)
    print()


def main() -> None:
    db = hospital_database()

    # 1. Admission: the secretary creates a new medical file.  Note the
    #    diagnosis element is created empty -- posing the diagnosis is
    #    the doctor's job.
    secretary = db.login("beaufort")
    admission = Append(
        "/patients",
        element(
            "albert",
            element("service", "cardiology"),
            element("diagnosis"),
        ),
    )
    result = secretary.execute(admission, strict=True)
    show("After admission by the secretary", secretary.read_xml(indent="  "))

    # 2. The name was misspelled; the secretary may rename patient
    #    elements (rule 9 grants update on /patients/*).
    secretary.execute(Rename("/patients/albert", "adalbert"), strict=True)

    # 3. The doctor poses a diagnosis.  Rule 10 grants insert on
    #    //diagnosis, so appending a text tree to the empty element works.
    doctor = db.login("laporte")
    from repro import text

    doctor.execute(Append("/patients/adalbert/diagnosis", text("angina")), strict=True)
    show("After the doctor poses a diagnosis", doctor.read_xml(indent="  "))

    # 4. Second opinion: the doctor revises the diagnosis (rule 11).
    doctor.execute(
        UpdateContent("/patients/adalbert/diagnosis", "pericarditis"),
        strict=True,
    )

    # 5. Retraction: the doctor deletes the diagnosis *content*
    #    (rule 12 grants delete on //diagnosis/*, not on the element).
    doctor.execute(Remove("/patients/adalbert/diagnosis/text()"), strict=True)
    show("After the doctor retracts the diagnosis", doctor.read_xml(indent="  "))

    # 6. What the other principals see now.
    show("The patient adalbert cannot log in (not a declared user), "
         "but robert still sees only his own file",
         db.login("robert").read_xml(indent="  "))
    show("The secretary sees the structure, diagnosis content RESTRICTED",
         db.login("beaufort").read_xml(indent="  "))

    # 7. Denied attempts: the secretary tries to peek by writing.
    sneaky = UpdateContent("/patients/franck/diagnosis", "overwritten")
    refused = secretary.execute(sneaky)
    print("== Secretary's denied update ==")
    for denial in refused.denials:
        print(f"  {denial}")
    print()

    print("== Audit trail (denials only) ==")
    for record in db.audit.denials():
        print(f"  {record}")


if __name__ == "__main__":
    main()
