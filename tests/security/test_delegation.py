"""Administration model: ownership, grant option, cascading revoke."""

import pytest

from repro.security import Policy, Privilege, SubjectHierarchy
from repro.security.delegation import (
    AdministeredPolicy,
    DelegationError,
    Grant,
)
from repro.security import SecureXMLDatabase
from repro.xmltree import parse_xml


@pytest.fixture
def subjects():
    h = SubjectHierarchy()
    h.add_role("staff")
    h.add_user("owner")
    h.add_user("alice", member_of="staff")
    h.add_user("bob", member_of="staff")
    h.add_user("carol", member_of="staff")
    return h


@pytest.fixture
def admin(subjects):
    return AdministeredPolicy(subjects, owner="owner")


class TestOwnership:
    def test_owner_can_grant_anything(self, admin):
        grant = admin.grant("owner", "read", "//*", "alice")
        assert grant.grantor == "owner"
        assert grant.authority is None
        assert len(admin.policy) == 1

    def test_owner_can_deny(self, admin):
        admin.deny("owner", "read", "//secret", "staff")
        assert list(admin.policy)[0].effect == "deny"

    def test_unknown_owner_rejected(self, subjects):
        with pytest.raises(DelegationError):
            AdministeredPolicy(subjects, owner="ghost")

    def test_non_owner_without_option_cannot_grant(self, admin):
        admin.grant("owner", "read", "//*", "alice")  # no grant option
        with pytest.raises(DelegationError):
            admin.grant("alice", "read", "//*", "bob")


class TestGrantOption:
    def test_grantee_with_option_can_regrant(self, admin):
        admin.grant("owner", "read", "//*", "alice", grant_option=True)
        grant = admin.grant("alice", "read", "//*", "bob")
        assert grant.grantor == "alice"
        assert grant.authority is not None

    def test_option_is_pair_exact(self, admin):
        """Holding //a does not authorize //a/b (conservative match)."""
        admin.grant("owner", "read", "//a", "alice", grant_option=True)
        with pytest.raises(DelegationError):
            admin.grant("alice", "read", "//a/b", "bob")
        with pytest.raises(DelegationError):
            admin.grant("alice", "update", "//a", "bob")

    def test_option_held_through_role(self, admin):
        admin.grant("owner", "read", "//*", "staff", grant_option=True)
        grant = admin.grant("bob", "read", "//*", "carol")
        assert grant.grantor == "bob"

    def test_delegation_chain(self, admin):
        admin.grant("owner", "read", "//*", "alice", grant_option=True)
        admin.grant("alice", "read", "//*", "bob", grant_option=True)
        grant = admin.grant("bob", "read", "//*", "carol")
        chain = [g.grantor for g in admin.grants()]
        assert chain == ["owner", "alice", "bob"]
        assert grant.authority == admin.grants()[1].grant_id

    def test_deny_requires_same_authority(self, admin):
        admin.grant("owner", "read", "//*", "alice", grant_option=True)
        admin.deny("alice", "read", "//*", "bob")  # allowed
        with pytest.raises(DelegationError):
            admin.deny("bob", "read", "//*", "carol")


class TestRevocation:
    def test_grantor_can_revoke_own_grant(self, admin):
        grant = admin.grant("owner", "read", "//*", "alice")
        removed = admin.revoke("owner", grant.grant_id)
        assert [g.grant_id for g in removed] == [grant.grant_id]
        assert len(admin.policy) == 0

    def test_stranger_cannot_revoke(self, admin):
        grant = admin.grant("owner", "read", "//*", "alice", grant_option=True)
        regrant = admin.grant("alice", "read", "//*", "bob")
        with pytest.raises(DelegationError):
            admin.revoke("bob", grant.grant_id)
        # But alice can revoke the grant she issued herself.
        admin.revoke("alice", regrant.grant_id)

    def test_owner_can_revoke_anything(self, admin):
        admin.grant("owner", "read", "//*", "alice", grant_option=True)
        regrant = admin.grant("alice", "read", "//*", "bob")
        removed = admin.revoke("owner", regrant.grant_id)
        assert len(removed) == 1

    def test_cascade_removes_dependent_grants(self, admin):
        root = admin.grant("owner", "read", "//*", "alice", grant_option=True)
        admin.grant("alice", "read", "//*", "bob", grant_option=True)
        admin.grant("bob", "read", "//*", "carol")
        removed = admin.revoke("owner", root.grant_id)
        assert len(removed) == 3
        assert len(admin.policy) == 0
        assert admin.grants() == []

    def test_cascade_spares_independent_grants(self, admin):
        root = admin.grant("owner", "read", "//*", "alice", grant_option=True)
        other = admin.grant("owner", "update", "//a", "bob")
        admin.alice_regrant = admin.grant("alice", "read", "//*", "carol")
        admin.revoke("owner", root.grant_id)
        assert [g.grant_id for g in admin.grants()] == [other.grant_id]

    def test_unknown_grant_rejected(self, admin):
        with pytest.raises(DelegationError):
            admin.revoke("owner", 999)


class TestEndToEnd:
    def test_delegated_rules_drive_views(self, subjects):
        """Administered rules flow straight into view derivation."""
        doc = parse_xml("<r><pub>p</pub><priv>s</priv></r>")
        policy = Policy(subjects)
        admin = AdministeredPolicy(subjects, "owner", policy)
        db = SecureXMLDatabase(doc, subjects, policy)
        admin.grant("owner", "read", "//node()", "alice", grant_option=True)
        assert "<priv>s</priv>" in db.login("alice").read_xml()
        # alice shares with bob, then her grant is revoked: bob's access
        # falls with it (the cascade).
        regrant = admin.grant("alice", "read", "//node()", "bob")
        assert "<priv>s</priv>" in db.login("bob").read_xml()
        admin.revoke("owner", admin.grants()[0].grant_id)
        assert db.login("bob").read_xml() == ""
        assert db.login("alice").read_xml() == ""

    def test_grants_by_and_to(self, admin):
        admin.grant("owner", "read", "//*", "alice", grant_option=True)
        admin.grant("alice", "read", "//*", "bob")
        assert len(admin.grants_by("alice")) == 1
        assert len(admin.grants_to("bob")) == 1
        assert admin.grants_to("nobody") == []
