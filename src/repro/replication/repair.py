"""Anti-entropy repair: replace quarantined damage from a healthy peer.

Scrub (:mod:`repro.scrub`) and recovery quarantine non-tail corruption
-- they refuse to replay, stream, or append past it, but they cannot
*fix* it: the damaged bytes are gone from this disk.  The bytes are
not gone from the cluster, though.  WAL-shipping replication keeps
byte-identical copies of every acknowledged commit on the peers, so
repair is a copy, not a reconstruction:

1. **Verify the peer is healthy**: a deep scrub of the peer's
   directory (every record CRC, every checkpoint SHA-256) must come
   back clean -- repairing from a rotten peer would just spread the
   rot.
2. **Stage**: copy the peer's checkpoints and WAL segments into a
   staging directory *inside* the damaged directory (same filesystem,
   so the install step is pure rename).
3. **Verify the staged copy**: recover it and require the recovered
   state digest to equal the peer's own -- a copy damaged in flight
   (or a disk fault during staging) is detected before anything is
   swapped, and the staged recovery's fencing epoch is the epoch the
   repaired node rejoins at.
4. **Swap**: move the damaged directory's segments, checkpoints and
   quarantine markers aside into a ``damaged.<n>`` subdirectory (kept
   for forensics, invisible to the segment/checkpoint listings), move
   the staged files in, and fsync the directory.

A repair that fails before the swap discards staging and leaves the
damaged directory exactly as it was; a disk error *during* the swap
leaves every displaced file intact in the forensic subdirectory, so
nothing is ever lost to a failed repair.  After a
successful repair the directory recovers cleanly and a re-opened
:class:`~repro.wal.WriteAheadLog` resumes appending at the peer's
epoch.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import RepairError
from ..scrub import Scrubber
from ..storage import state_digest
from ..testing.diskfaults import disk
from ..wal.log import (
    QUARANTINE_SUFFIX,
    _segment_files,
    list_checkpoints,
)
from ..wal.recover import recover

__all__ = ["RepairReport", "repair_from_peer"]

_STAGING = ".repair-staging"
_DAMAGED = "damaged"


@dataclass
class RepairReport:
    """What one :func:`repair_from_peer` run copied and replaced.

    Attributes:
        directory: the repaired (formerly damaged) directory.
        peer: the healthy directory the bytes came from.
        segments_copied: WAL segment files installed from the peer.
        checkpoints_copied: checkpoint snapshots installed.
        bytes_copied: total bytes fetched from the peer.
        moved_aside: local files (segments, checkpoints, quarantine
            markers) moved into the forensic ``damaged.<n>`` subdir.
        damaged_dir: that subdirectory's path ('' when the damaged
            directory had nothing to move).
        state_verified: True when the staged copy's recovered state
            digest was checked against the peer's own.
        digest: the recovered state digest after repair.
        epoch: the fencing epoch the repaired node rejoins at (the
            highest epoch in the copied log).
        last_lsn: the last lsn the repaired directory replays to.
    """

    directory: str
    peer: str
    segments_copied: int = 0
    checkpoints_copied: int = 0
    bytes_copied: int = 0
    moved_aside: List[str] = field(default_factory=list)
    damaged_dir: str = ""
    state_verified: bool = False
    digest: str = ""
    epoch: int = 0
    last_lsn: int = 0


def _fsync_dir(directory: str) -> None:
    """Make renames inside ``directory`` durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _copy_file(source: str, target: str) -> int:
    """Copy one file through the disk-fault shim; returns bytes copied."""
    with disk.open(source, "rb") as src:
        data = src.read()
    with disk.open(target, "wb") as dst:
        dst.write(data)
        dst.flush()
        disk.fsync(dst)
    return len(data)


def _local_artifacts(directory: str) -> List[str]:
    """The damaged directory's replaceable files: segments, their
    quarantine markers, and checkpoint snapshots."""
    artifacts: List[str] = []
    for _lsn, path in _segment_files(directory):
        artifacts.append(path)
        marker = path + QUARANTINE_SUFFIX
        if os.path.exists(marker):
            artifacts.append(marker)
    for checkpoint in list_checkpoints(directory):
        artifacts.append(checkpoint.path)
    return artifacts


def repair_from_peer(
    directory: str,
    peer_directory: str,
    *,
    verify_state: bool = True,
    scheme=None,
) -> RepairReport:
    """Replace ``directory``'s log with a verified copy of the peer's.

    Args:
        directory: the damaged log directory (quarantined segments,
            rotten checkpoints -- or empty: repair doubles as a full
            re-seed).
        peer_directory: a healthy peer's log directory.
        verify_state: also recover the *peer* and require the staged
            copy to replay to the identical state digest.  Exact for a
            quiescent peer (the normal case: repair runs while the
            damaged node is out of rotation); pass False when the peer
            is taking writes mid-copy, where the deep scrub of the
            staged bytes is the integrity check.
        scheme: numbering scheme forwarded to recovery.

    Returns:
        A :class:`RepairReport`; after it returns the directory
        recovers cleanly and may be re-opened for appending.

    Raises:
        RepairError: the peer is damaged, the staged copy failed
            verification, or the swap hit a disk error.  Failures
            before the swap leave the directory unchanged; a mid-swap
            disk error leaves displaced files in the forensic subdir.
    """
    directory = os.path.abspath(directory)
    peer_directory = os.path.abspath(peer_directory)
    if directory == peer_directory:
        raise RepairError(
            "a directory cannot repair from itself", reason="self-repair"
        )
    report = RepairReport(directory=directory, peer=peer_directory)

    # 1. The peer must be healthy -- every record CRC, every checkpoint
    #    digest.  (Benign tail damage on a live peer is acceptable: the
    #    torn-tail rule owns it and recovery will cut it.)
    peer_scrub = Scrubber(peer_directory, deep=True).run()
    if not peer_scrub.clean:
        raise RepairError(
            f"peer {peer_directory} is damaged, refusing to copy from it: "
            + "; ".join(str(f) for f in peer_scrub.findings if not f.benign),
            reason="peer-damaged",
        )

    expected_digest: Optional[str] = None
    if verify_state:
        try:
            peer_result = recover(peer_directory, scheme=scheme)
        except Exception as exc:
            raise RepairError(
                f"peer {peer_directory} does not recover: {exc}",
                reason="peer-damaged",
            ) from exc
        peer_db = peer_result.database
        expected_digest = state_digest(
            peer_db.document, peer_db.subjects, peer_db.policy
        )

    # 2. Stage the copy on the damaged node's own filesystem.
    staging = os.path.join(directory, _STAGING)
    if os.path.isdir(staging):
        shutil.rmtree(staging)
    os.makedirs(staging)
    try:
        sources: List[str] = [
            path for _lsn, path in _segment_files(peer_directory)
        ]
        report.segments_copied = len(sources)
        checkpoints = list_checkpoints(peer_directory)
        report.checkpoints_copied = len(checkpoints)
        sources.extend(c.path for c in checkpoints)
        try:
            for source in sources:
                target = os.path.join(staging, os.path.basename(source))
                report.bytes_copied += _copy_file(source, target)
        except OSError as exc:
            raise RepairError(
                f"copying from peer failed: {exc}", reason="copy-failed"
            ) from exc

        # 3. The staged bytes must themselves scrub clean and recover
        #    to the peer's state.
        staged_scrub = Scrubber(staging, deep=True).run()
        if not staged_scrub.clean:
            raise RepairError(
                "staged copy is damaged (disk fault during staging?): "
                + "; ".join(
                    str(f) for f in staged_scrub.findings if not f.benign
                ),
                reason="stage-damaged",
            )
        try:
            staged_result = recover(staging, scheme=scheme)
        except Exception as exc:
            raise RepairError(
                f"staged copy does not recover: {exc}",
                reason="stage-damaged",
            ) from exc
        staged_db = staged_result.database
        report.digest = state_digest(
            staged_db.document, staged_db.subjects, staged_db.policy
        )
        report.epoch = staged_result.epoch
        report.last_lsn = staged_result.last_lsn
        if expected_digest is not None:
            report.state_verified = True
            if report.digest != expected_digest:
                raise RepairError(
                    f"staged copy recovers to digest {report.digest[:12]}..."
                    f" but the peer stands at {expected_digest[:12]}...",
                    reason="stage-mismatch",
                )

        # 4. Swap: damaged files aside, staged files in, fsync the dir.
        aside = _local_artifacts(directory)
        damaged_dir = ""
        if aside:
            suffix = 0
            damaged_dir = os.path.join(directory, _DAMAGED)
            while os.path.exists(damaged_dir):
                suffix += 1
                damaged_dir = os.path.join(directory, f"{_DAMAGED}.{suffix}")
            os.makedirs(damaged_dir)
        try:
            for path in aside:
                os.replace(
                    path, os.path.join(damaged_dir, os.path.basename(path))
                )
                report.moved_aside.append(os.path.basename(path))
            report.damaged_dir = damaged_dir
            for name in sorted(os.listdir(staging)):
                os.replace(
                    os.path.join(staging, name), os.path.join(directory, name)
                )
            _fsync_dir(directory)
        except OSError as exc:
            raise RepairError(
                f"installing the repaired files failed: {exc}",
                reason="install-failed",
            ) from exc
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return report
