"""Shared generators for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E15).  The paper has no measurement tables -- its evaluation
artifacts are worked examples -- so E1-E11 time the exact reproduction
of those examples (asserting the paper's printed output inside the
benched function), and E12-E15 are the added scaling/ablation studies.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.core import PAPER_POLICY_RULES, hospital_database
from repro.security import SecureXMLDatabase
from repro.xmltree import XMLDocument, element

SERVICES = ["cardiology", "pneumology", "oncology", "otolarynology"]
ILLNESSES = ["angina", "pneumonia", "lymphoma", "tonsillitis", "asthma"]


def synthetic_hospital(patients: int, seed: int = 2005) -> SecureXMLDatabase:
    """A hospital database with ``patients`` records under the paper's
    subject hierarchy and equation-13 policy."""
    rng = random.Random(seed)
    doc = XMLDocument()
    root = doc.add_root("patients")
    for index in range(patients):
        record = element(
            f"patient{index:05d}",
            element("service", rng.choice(SERVICES)),
            element("diagnosis", rng.choice(ILLNESSES)),
        )
        record.attach(doc, root)
    db = hospital_database()
    # Reuse the paper's subjects/policy against the synthetic document.
    return SecureXMLDatabase(doc, db.subjects, db.policy)


@pytest.fixture
def paper_db():
    """The exact running example of the paper."""
    return hospital_database()


def print_series(title: str, rows) -> None:
    """Emit a small table into the benchmark output (run with -s).

    When ``REPRO_BENCH_SERIES_JSON`` names a file, the series is also
    accumulated there as ``{"series": {title: rows}}`` -- the
    machine-readable ``BENCH_*.json`` output for experiments that
    measure with their own timers instead of pytest-benchmark
    fixtures (E22's crash-recovery timings, E24's replication rows).
    """
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + " | ".join(str(c) for c in row))
    target = os.environ.get("REPRO_BENCH_SERIES_JSON")
    if target:
        try:
            with open(target, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        data.setdefault("series", {})[title] = [list(row) for row in rows]
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
