"""Evaluation tests for all thirteen axes on a fixed tree."""

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine

XML = (
    '<root a="1">'
    "<x><x1/><x2><deep/></x2></x>"
    "<y>text-y</y>"
    "<z><z1/></z>"
    "</root>"
)


@pytest.fixture
def doc():
    return parse_xml(XML)


@pytest.fixture
def engine():
    return XPathEngine()


def labels(doc, nodes):
    return [doc.label(n) for n in nodes]


class TestForwardAxes:
    def test_child(self, doc, engine):
        assert labels(doc, engine.select(doc, "/root/*")) == ["x", "y", "z"]

    def test_child_from_nested(self, doc, engine):
        assert labels(doc, engine.select(doc, "/root/x/child::*")) == ["x1", "x2"]

    def test_descendant(self, doc, engine):
        got = labels(doc, engine.select(doc, "/root/descendant::*"))
        assert got == ["x", "x1", "x2", "deep", "y", "z", "z1"]

    def test_descendant_or_self(self, doc, engine):
        got = labels(doc, engine.select(doc, "/root/x/descendant-or-self::*"))
        assert got == ["x", "x1", "x2", "deep"]

    def test_self(self, doc, engine):
        assert labels(doc, engine.select(doc, "/root/self::*")) == ["root"]

    def test_self_with_name_filter(self, doc, engine):
        assert engine.select(doc, "/root/self::nope") == []

    def test_following_sibling(self, doc, engine):
        got = labels(doc, engine.select(doc, "/root/x/following-sibling::*"))
        assert got == ["y", "z"]

    def test_following(self, doc, engine):
        got = labels(doc, engine.select(doc, "//x2/following::*"))
        assert got == ["y", "z", "z1"]

    def test_attribute(self, doc, engine):
        got = engine.select(doc, "/root/@a")
        assert len(got) == 1
        assert doc.node(got[0]).value == "1"

    def test_attribute_wildcard(self, doc, engine):
        assert len(engine.select(doc, "/root/@*")) == 1

    def test_namespace_axis_is_empty(self, doc, engine):
        assert engine.select(doc, "/root/namespace::*") == []


class TestReverseAxes:
    def test_parent(self, doc, engine):
        got = labels(doc, engine.select(doc, "//deep/parent::*"))
        assert got == ["x2"]

    def test_parent_of_root_element_is_document(self, doc, engine):
        got = engine.select(doc, "/root/..")
        assert len(got) == 1
        assert got[0].is_document

    def test_ancestor(self, doc, engine):
        got = labels(doc, engine.select(doc, "//deep/ancestor::*"))
        assert got == ["root", "x", "x2"]  # document order

    def test_ancestor_or_self(self, doc, engine):
        got = labels(doc, engine.select(doc, "//deep/ancestor-or-self::*"))
        assert got == ["root", "x", "x2", "deep"]

    def test_preceding_sibling(self, doc, engine):
        got = labels(doc, engine.select(doc, "/root/z/preceding-sibling::*"))
        assert got == ["x", "y"]  # result in document order

    def test_preceding(self, doc, engine):
        got = labels(doc, engine.select(doc, "//z1/preceding::*"))
        assert got == ["x", "x1", "x2", "deep", "y"]

    def test_preceding_excludes_ancestors(self, doc, engine):
        got = labels(doc, engine.select(doc, "//deep/preceding::*"))
        assert got == ["x1"]


class TestAxisAlgebra:
    """Identities between axes, checked pointwise on the fixture."""

    def test_descendant_is_child_closure(self, doc, engine):
        direct = set(engine.select(doc, "/root/descendant::*"))
        via_children = set(engine.select(doc, "/root/*/descendant-or-self::*"))
        assert direct == via_children

    def test_parent_inverts_child(self, doc, engine):
        for label in ("x", "y", "z", "x1", "x2", "deep", "z1"):
            node = engine.select(doc, f"//{label}")[0]
            parents = engine.select(doc, f"//{label}/..")
            children_back = engine.select(doc, f"//{label}/../child::*")
            assert node in children_back
            assert len(parents) == 1

    def test_ancestor_inverts_descendant(self, doc, engine):
        descendants = engine.select(doc, "/root/descendant::*")
        root = engine.select(doc, "/root")[0]
        for d in descendants:
            anc = engine.select(doc, "//*", context_node=d)
            # use explicit axis from the node instead
        for d in descendants:
            chain = engine.select(doc, "ancestor::*", context_node=d)
            assert root in chain
