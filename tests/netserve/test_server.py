"""End-to-end protocol behavior of the asyncio front-end: sessions,
typed results, error relay, deadlines, pipelining and the protocol's
close-on-violation rule."""

import socket
import threading

import pytest

from repro.errors import NetworkError, RemoteError
from repro.netserve import NetClient, encode_frame
from repro.netserve.framing import HEADER

from .conftest import append_script, connect, served

pytestmark = pytest.mark.netserve


class TestSessions:
    def test_open_session_then_read_and_write(self, wal_dir):
        with served(wal_dir) as (handle, server):
            with connect(handle) as client:
                opened = client.open_session("w1")
                assert opened["user"] == "w1"
                assert opened["protocol"] == 1
                assert client.read_xml() == "<log><entry>seed</entry></log>"
                summary = client.execute(append_script("net0"))
                assert summary["fully_applied"] is True
                assert summary["version"] == 1
                assert "<net0>" in client.read_xml()

    def test_request_before_open_session_is_a_protocol_error(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle) as client:
                with pytest.raises(RemoteError) as info:
                    client.read_xml()
                assert info.value.kind == "ProtocolError"

    def test_unknown_user_relays_the_server_error(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle) as client:
                with pytest.raises(RemoteError) as info:
                    client.open_session("nobody")
                assert "nobody" in info.value.remote_message

    def test_two_connections_are_independent_sessions(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as one, connect(handle, "w2") as two:
                one.execute(append_script("fromw1"))
                assert "<fromw1>" in two.read_xml()


class TestTypedResults:
    def test_query_number_string_boolean_nodeset(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                assert client.query("count(/log/*)") == {
                    "type": "number", "value": 1.0,
                }
                assert client.query("string(/log/entry)") == {
                    "type": "string", "value": "seed",
                }
                assert client.query("count(/log) > 0") == {
                    "type": "boolean", "value": True,
                }
                nodes = client.query("/log/entry")
                assert nodes == {
                    "type": "node-set", "nodes": ["<entry>seed</entry>"],
                }

    def test_select_returns_serialized_nodes(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                assert client.select("/log/entry") == ["<entry>seed</entry>"]

    def test_stats_carries_serving_and_net_counters(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                client.read_xml()
                stats = client.stats()
                assert stats["reads"] >= 1
                assert stats["net_connections_opened"] >= 1
                assert stats["net_frames_in"] >= 2
                assert stats["net_group_commit"] is True

    def test_execute_error_kinds_relay_by_class_name(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                with pytest.raises(RemoteError) as info:
                    client.execute("<not-xupdate/>")
                assert info.value.kind == "XUpdateParseError"


class TestProtocolViolations:
    def test_oversized_frame_gets_error_frame_then_close_not_a_hang(
        self, wal_dir
    ):
        """A peer that announces a frame beyond the maximum receives a
        final FrameTooLarge error frame and a closed connection --
        never a silent hang."""
        with served(wal_dir, max_frame=1024) as (handle, _):
            raw = socket.create_connection(
                (handle.host, handle.port), timeout=5
            )
            try:
                raw.sendall(HEADER.pack(1 << 20))  # announce 1MB
                from repro.netserve import FrameDecoder

                decoder = FrameDecoder()
                frames = []
                while not frames:
                    data = raw.recv(4096)
                    assert data, "server closed without an error frame"
                    frames = decoder.feed(data)
                assert frames[0]["ok"] is False
                assert frames[0]["error"]["kind"] == "FrameTooLarge"
                # ...and the connection is closed, not hung:
                assert raw.recv(4096) == b""
            finally:
                raw.close()

    def test_client_refuses_to_send_an_oversized_frame(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with NetClient(
                handle.host, handle.port, timeout=5, max_frame=256
            ) as client:
                client.open_session("w1")
                from repro.errors import FrameTooLarge

                with pytest.raises(FrameTooLarge):
                    client.execute(append_script("x" * 400))

    def test_garbage_json_closes_the_connection_with_an_error(self, wal_dir):
        with served(wal_dir) as (handle, _):
            raw = socket.create_connection(
                (handle.host, handle.port), timeout=5
            )
            try:
                raw.sendall(HEADER.pack(5) + b"{{{{{")
                from repro.netserve import FrameDecoder

                decoder = FrameDecoder()
                frames = []
                while not frames:
                    data = raw.recv(4096)
                    assert data, "server closed without an error frame"
                    frames = decoder.feed(data)
                assert frames[0]["error"]["kind"] == "ProtocolError"
                assert raw.recv(4096) == b""
            finally:
                raw.close()

    def test_unknown_op_and_bad_fields_relay_protocol_errors(self, wal_dir):
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                for frame in (
                    {"op": "drop_tables"},
                    {"op": "query"},  # missing path
                    {"op": "query", "path": ""},
                    {"op": "read_xml", "indent": 4},
                    {"op": "query", "path": "/log", "deadline_ms": -5},
                ):
                    with pytest.raises((RemoteError, NetworkError)) as info:
                        client._call(frame.pop("op"), **frame)
                    if isinstance(info.value, RemoteError):
                        assert info.value.kind == "ProtocolError"
                # ProtocolError closes the connection; later use fails
                # as a network error, never a hang.


class TestDeadlinesAndClose:
    def test_deadline_ms_propagates_into_the_serving_layer(self, wal_dir):
        with served(wal_dir) as (handle, server):
            with connect(handle, "w1") as client:
                # An impossible budget: the deadline machinery (not the
                # socket) must refuse the request.
                with pytest.raises(RemoteError) as info:
                    client.query("count(//*)", deadline_ms=0.0001)
                assert info.value.kind == "DeadlineExceeded"
                assert server.stats()["deadline_exceeded"] >= 1

    def test_close_op_is_acknowledged_then_connection_ends(self, wal_dir):
        with served(wal_dir) as (handle, _):
            client = connect(handle, "w1")
            result = client._call("close")
            assert result == {"closed": True}
            client.close()

    def test_server_shutdown_hangs_up_live_connections(self, wal_dir):
        with served(wal_dir) as (handle, _):
            client = connect(handle, "w1")
        # handle.stop() ran: the socket is dead, and the client reports
        # it as a network error rather than blocking forever.
        with pytest.raises(NetworkError):
            client.read_xml()


class TestConcurrentClients:
    def test_many_threaded_writers_one_connection_each(self, wal_dir):
        with served(wal_dir, max_delay_ms=3.0) as (handle, server):
            errors = []

            def writer(i):
                try:
                    with connect(handle, "w1", timeout=30) as client:
                        client.execute(append_script(f"c{i}"))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not errors
            stats = server.stats()
            assert stats["commits"] == 12
            assert stats["grouped_records"] == 12
            # The whole point: far fewer group fsyncs than commits.
            assert stats["group_fsyncs_saved"] > 0

    def test_pipelined_requests_on_one_connection(self, wal_dir):
        """Several requests written before any response is read; every
        response arrives, matched by id."""
        with served(wal_dir) as (handle, _):
            with connect(handle, "w1") as client:
                sock = client._sock
                first = client._next_id + 1
                for offset in range(4):
                    sock.sendall(
                        encode_frame(
                            {"id": first + offset, "op": "query",
                             "path": "count(/log/*)"}
                        )
                    )
                client._next_id += 4
                seen = {}
                for offset in range(4):
                    frame = client._receive(first + offset)
                    seen[frame["id"]] = frame["result"]
                assert set(seen) == {first + i for i in range(4)}
                assert all(
                    r == {"type": "number", "value": 1.0}
                    for r in seen.values()
                )
