"""Unsecured XUpdate execution: the paper's formulae (2)-(9).

This executor implements the *unprotected* semantics of section 3.4:
PATH is evaluated on the source document and no privileges are checked.
The secure semantics (axioms 18-25) are layered on top by
:mod:`repro.security.write`; both share the tree-mutation primitives in
this module.

Execution is functional, matching the paper's theory-replacement
reading: ``apply`` maps a theory ``db`` to a fresh theory ``dbnew`` and
reports what it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError, UpdateAborted
from ..testing.faults import kill_point
from ..xmltree.document import XMLDocument
from ..xmltree.labels import NodeId
from ..xmltree.node import NodeKind
from ..xpath.engine import XPathEngine
from ..xpath.values import XPathValue
from .changeset import ChangeSet
from .operations import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
    XUpdateOperation,
)

__all__ = ["UpdateResult", "XUpdateExecutor", "XUpdateError"]


class XUpdateError(ReproError):
    """Unknown operation type or malformed target."""


@dataclass
class UpdateResult:
    """Outcome of applying one operation (or script).

    Attributes:
        document: the new document (the theory ``dbnew``).
        selected: nodes addressed by PATH, in document order.
        affected: nodes actually changed/created/removed.  For creation
            operations these are the fresh identifiers of the inserted
            fragment roots (the paper's ``create_number`` outputs).
        denied: nodes selected but skipped -- always empty for the
            unsecured executor; the secure executor fills it.
        changes: the structural delta (added/removed/relabelled node
            ids plus touched labels) the serving layer uses for
            incremental view maintenance.
    """

    document: XMLDocument
    selected: List[NodeId] = field(default_factory=list)
    affected: List[NodeId] = field(default_factory=list)
    denied: List[NodeId] = field(default_factory=list)
    changes: ChangeSet = field(default_factory=ChangeSet)

    def merge(self, other: "UpdateResult") -> "UpdateResult":
        """Fold a later operation's result into a script-level result."""
        return UpdateResult(
            document=other.document,
            selected=self.selected + other.selected,
            affected=self.affected + other.affected,
            denied=self.denied + other.denied,
            changes=self.changes.merge(other.changes),
        )


class XUpdateExecutor:
    """Applies XUpdate operations with the paper's *unsecured* semantics.

    Args:
        engine: XPath engine used to resolve PATH parameters; a default
            engine is created if omitted.
    """

    def __init__(self, engine: Optional[XPathEngine] = None) -> None:
        self._engine = engine if engine is not None else XPathEngine()

    @property
    def engine(self) -> XPathEngine:
        return self._engine

    def select_path(
        self,
        doc: XMLDocument,
        path: str,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> List[NodeId]:
        """Resolve a PATH parameter through a compiled evaluator.

        Operation paths repeat across scripts, retries, and secure
        re-checks; the engine's compiled-evaluator cache makes every
        evaluation after the first skip parsing *and* AST dispatch.
        """
        return self._engine.compile_evaluator(path).select(
            doc, variables=variables
        )

    def apply(
        self,
        doc: XMLDocument,
        operation: XUpdateOperation | UpdateScript,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> UpdateResult:
        """Apply one operation (or a whole script) to a copy of ``doc``.

        The input document is never mutated; the result carries the new
        document (``dbnew``).

        Scripts are transactional: each operation runs against a fresh
        copy, so the document after operation *i* is a savepoint.  When
        any operation fails, the whole script is abandoned and
        :class:`~repro.errors.UpdateAborted` reports the failing index
        with the last savepoint attached -- the input ``doc`` is the
        rollback state, untouched by construction.  The ``before-op``
        and ``after-op`` kill-points of :mod:`repro.testing.faults` are
        consulted around every operation.

        Raises:
            XUpdateError: for an unknown operation type (single
                operations).
            UpdateAborted: when any operation of a script fails.
        """
        if isinstance(operation, UpdateScript):
            result = UpdateResult(document=doc)
            for index, op in enumerate(operation):
                op_name = type(op).__name__
                try:
                    kill_point("before-op", index=index, operation=op_name)
                    step = self.apply(result.document, op, variables)
                    kill_point("after-op", index=index, operation=op_name)
                except UpdateAborted:
                    raise
                except Exception as exc:
                    raise UpdateAborted(
                        f"script aborted at operation {index} ({op_name}): "
                        f"{exc}; {index} completed operation(s) rolled back",
                        operation_index=index,
                        operation=op_name,
                        completed=index,
                        savepoint=result.document,
                    ) from exc
                result = result.merge(step)
            return result
        new_doc = doc.copy()
        targets = self.select_path(new_doc, operation.path, variables)
        return self._dispatch(new_doc, operation, targets)

    def apply_in_place(
        self,
        doc: XMLDocument,
        operation: XUpdateOperation,
        variables: Optional[Mapping[str, XPathValue]] = None,
    ) -> UpdateResult:
        """Like :meth:`apply` but mutates ``doc`` (no copy)."""
        targets = self.select_path(doc, operation.path, variables)
        return self._dispatch(doc, operation, targets)

    # ------------------------------------------------------------------
    # per-operation mutation primitives (shared with the secure layer)
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        doc: XMLDocument,
        operation: XUpdateOperation,
        targets: Sequence[NodeId],
    ) -> UpdateResult:
        if isinstance(operation, Rename):
            return self.do_rename(doc, targets, operation.new_name)
        if isinstance(operation, UpdateContent):
            return self.do_update_content(doc, targets, operation.new_value)
        if isinstance(operation, Append):
            return self.do_append(doc, targets, operation.tree)
        if isinstance(operation, InsertBefore):
            return self.do_insert_before(doc, targets, operation.tree)
        if isinstance(operation, InsertAfter):
            return self.do_insert_after(doc, targets, operation.tree)
        if isinstance(operation, Remove):
            return self.do_remove(doc, targets)
        raise XUpdateError(f"unknown operation {operation!r}")

    def do_rename(
        self, doc: XMLDocument, targets: Sequence[NodeId], new_name: str
    ) -> UpdateResult:
        """Formulae (2)-(3): relabel each addressed node to VNEW."""
        affected = []
        changes = ChangeSet()
        for nid in targets:
            if nid.is_document:
                continue  # the document node has no renameable label
            old = doc.label(nid)
            doc.relabel(nid, new_name)
            changes.note_relabelled(nid, old, new_name)
            affected.append(nid)
        return UpdateResult(doc, list(targets), affected, changes=changes)

    def do_update_content(
        self, doc: XMLDocument, targets: Sequence[NodeId], new_value: str
    ) -> UpdateResult:
        """Formulae (4)-(5): relabel each *child* of an addressed node.

        When an addressed element has no children, XUpdate's operational
        behaviour is to give it the new text content; the paper's
        formulae are silent on that case (an empty set of children means
        nothing is updated), so we follow the formulae strictly and add
        content only through ``strict=False`` callers if ever needed.
        """
        affected = []
        changes = ChangeSet()
        for nid in targets:
            for child in doc.children(nid):
                old = doc.label(child)
                doc.relabel(child, new_value)
                changes.note_relabelled(child, old, new_value)
                affected.append(child)
        return UpdateResult(doc, list(targets), affected, changes=changes)

    def do_append(
        self, doc: XMLDocument, targets: Sequence[NodeId], tree
    ) -> UpdateResult:
        """Formulae (6)-(7), o=append: tree becomes the last subtree."""
        affected = []
        changes = ChangeSet()
        for nid in targets:
            root = tree.attach(doc, nid)
            changes.note_added(doc, root)
            affected.append(root)
        return UpdateResult(doc, list(targets), affected, changes=changes)

    def do_insert_before(
        self, doc: XMLDocument, targets: Sequence[NodeId], tree
    ) -> UpdateResult:
        """Formulae (6)-(7), o=insert-before."""
        affected = []
        changes = ChangeSet()
        for nid in targets:
            self._check_sibling_target(doc, nid)
            root = tree.attach_before(doc, nid)
            changes.note_added(doc, root)
            affected.append(root)
        return UpdateResult(doc, list(targets), affected, changes=changes)

    def do_insert_after(
        self, doc: XMLDocument, targets: Sequence[NodeId], tree
    ) -> UpdateResult:
        """Formulae (6)-(7), o=insert-after."""
        affected = []
        changes = ChangeSet()
        for nid in targets:
            self._check_sibling_target(doc, nid)
            root = tree.attach_after(doc, nid)
            changes.note_added(doc, root)
            affected.append(root)
        return UpdateResult(doc, list(targets), affected, changes=changes)

    @staticmethod
    def _check_sibling_target(doc: XMLDocument, nid: NodeId) -> None:
        if nid.is_document:
            raise XUpdateError("cannot insert a sibling of the document node")
        if doc.kind(nid) is NodeKind.ATTRIBUTE:
            raise XUpdateError("attributes have no sibling order to insert into")

    def do_remove(self, doc: XMLDocument, targets: Sequence[NodeId]) -> UpdateResult:
        """Formulae (8)-(9): delete the subtree of each addressed node.

        Targets are processed outermost-first so nested targets vanish
        with their ancestors, matching the ``undeleted`` fixpoint.
        """
        affected = []
        changes = ChangeSet()
        for nid in sorted(targets, key=lambda n: n.level):
            if nid.is_document:
                raise XUpdateError("cannot remove the document node")
            if nid in doc:
                changes.note_removed(doc, nid)
                doc.remove_subtree(nid)
                affected.append(nid)
        return UpdateResult(doc, list(targets), affected, changes=changes)
