"""A standalone XML parser producing :class:`XMLDocument` trees.

This is a small recursive-descent parser for the XML subset the model
needs: elements, attributes, character data, CDATA sections, comments,
processing instructions, the standard five entity references and
numeric character references.  DTDs, namespaces-as-semantics and other
XML 1.0 arcana are out of scope -- the paper's model (section 3.1)
explicitly ignores typing and treats a document as a labelled tree.

No third-party dependency (lxml etc.) is used anywhere in the package;
this module *is* the parsing substrate.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .document import XMLDocument
from .fragments import Fragment, element, text
from .labels import NumberingScheme
from .node import NodeKind

__all__ = ["XMLSyntaxError", "parse_xml", "parse_fragment"]


class XMLSyntaxError(ValueError):
    """Malformed XML input.

    Attributes:
        position: character offset of the error in the input string.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_RE = re.compile(r"[A-Za-z_:][-A-Za-z0-9._:]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
_WS_ONLY = re.compile(r"^\s*$")


class _Parser:
    """Single-use recursive-descent parser over one input string."""

    def __init__(self, source: str) -> None:
        self.src = source
        self.pos = 0
        self.n = len(source)

    # -- primitives --------------------------------------------------------
    def error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def eof(self) -> bool:
        return self.pos >= self.n

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < self.n else ""

    def startswith(self, token: str) -> bool:
        return self.src.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_ws(self) -> None:
        while self.pos < self.n and self.src[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        match = _NAME_RE.match(self.src, self.pos)
        if match is None:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group()

    def read_until(self, token: str, what: str) -> str:
        end = self.src.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        out = self.src[self.pos : end]
        self.pos = end + len(token)
        return out

    # -- entity / chardata -------------------------------------------------
    def decode_text(self, raw: str, base: int) -> str:
        """Expand entity and character references in character data."""
        if "&" not in raw:
            return raw
        out: List[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i)
            if end < 0:
                raise XMLSyntaxError("unterminated entity reference", base + i)
            ref = raw[i + 1 : end]
            if ref.startswith("#x") or ref.startswith("#X"):
                out.append(chr(int(ref[2:], 16)))
            elif ref.startswith("#"):
                out.append(chr(int(ref[1:])))
            elif ref in _ENTITIES:
                out.append(_ENTITIES[ref])
            else:
                raise XMLSyntaxError(f"unknown entity &{ref};", base + i)
            i = end + 1
        return "".join(out)

    # -- grammar -----------------------------------------------------------
    def parse_document(self) -> Fragment:
        self.skip_prolog()
        root = self.parse_element()
        self.skip_misc()
        if not self.eof():
            raise self.error("content after the root element")
        return root

    def skip_prolog(self) -> None:
        self.skip_ws()
        if self.startswith("<?xml"):
            self.pos += 5
            self.read_until("?>", "XML declaration")
        self.skip_misc()
        if self.startswith("<!DOCTYPE"):
            # Skip a (possibly bracketed) doctype without interpreting it.
            depth = 0
            while not self.eof():
                ch = self.src[self.pos]
                self.pos += 1
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
            self.skip_misc()

    def skip_misc(self) -> None:
        while True:
            self.skip_ws()
            if self.startswith("<!--"):
                self.pos += 4
                self.read_until("-->", "comment")
            elif self.startswith("<?"):
                self.pos += 2
                self.read_until("?>", "processing instruction")
            else:
                return

    def parse_element(self) -> Fragment:
        self.expect("<")
        name = self.read_name()
        attributes: List[Tuple[str, str]] = []
        while True:
            self.skip_ws()
            if self.startswith("/>"):
                self.pos += 2
                return Fragment(NodeKind.ELEMENT, name, tuple(attributes), ())
            if self.startswith(">"):
                self.pos += 1
                break
            attributes.append(self.parse_attribute())
        children = self.parse_content(name)
        return Fragment(NodeKind.ELEMENT, name, tuple(attributes), tuple(children))

    def parse_attribute(self) -> Tuple[str, str]:
        name = self.read_name()
        self.skip_ws()
        self.expect("=")
        self.skip_ws()
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a quoted attribute value")
        self.pos += 1
        base = self.pos
        raw = self.read_until(quote, "attribute value")
        return (name, self.decode_text(raw, base))

    def parse_content(self, open_name: str) -> List[Fragment]:
        children: List[Fragment] = []
        # Buffer holds *decoded* text: regular character data is
        # entity-expanded as it is read, CDATA is appended verbatim
        # (entities inside CDATA are not references).
        buffer: List[str] = []
        buffer_had_cdata = False

        def flush_text() -> None:
            nonlocal buffer_had_cdata
            if buffer:
                value = "".join(buffer)
                buffer.clear()
                if buffer_had_cdata or not _WS_ONLY.match(value):
                    children.append(text(value))
            buffer_had_cdata = False

        while True:
            if self.eof():
                raise self.error(f"unterminated element <{open_name}>")
            if self.startswith("</"):
                flush_text()
                self.pos += 2
                close = self.read_name()
                if close != open_name:
                    raise self.error(
                        f"mismatched closing tag </{close}> for <{open_name}>"
                    )
                self.skip_ws()
                self.expect(">")
                return children
            if self.startswith("<!--"):
                flush_text()
                self.pos += 4
                self.read_until("-->", "comment")
                continue
            if self.startswith("<![CDATA["):
                buffer.append(self.read_cdata())
                buffer_had_cdata = True
                continue
            if self.startswith("<?"):
                flush_text()
                self.pos += 2
                self.read_until("?>", "processing instruction")
                continue
            if self.peek() == "<":
                flush_text()
                children.append(self.parse_element())
                continue
            buffer.append(self.read_chardata_run())

    def read_cdata(self) -> str:
        """Consume one CDATA section, returning its verbatim content."""
        self.pos += 9  # len("<![CDATA[")
        return self.read_until("]]>", "CDATA section")

    def read_chardata_run(self) -> str:
        """Consume character data up to the next markup, decoded."""
        base = self.pos
        end = self.src.find("<", self.pos)
        if end < 0:
            end = self.n
        raw = self.src[self.pos : end]
        self.pos = end
        return self.decode_text(raw, base)


def parse_fragment(source: str) -> Fragment:
    """Parse ``source`` into a detached :class:`Fragment`.

    Whitespace-only text between elements is dropped (the model's trees
    never contain formatting whitespace); mixed content keeps its text.
    """
    return _Parser(source).parse_document()


def parse_xml(
    source: str, scheme: Optional[NumberingScheme] = None
) -> XMLDocument:
    """Parse ``source`` into a fresh :class:`XMLDocument`.

    Args:
        source: the XML text.
        scheme: numbering scheme for the new document (default persistent
            Dewey).

    Raises:
        XMLSyntaxError: on malformed input.
    """
    fragment = parse_fragment(source)
    doc = XMLDocument(scheme)
    fragment.attach(doc, doc.document_node.nid)
    return doc
