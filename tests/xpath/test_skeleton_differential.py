"""Differential property: the skeleton NFA == the real evaluator.

The static-enforcement mode (:mod:`repro.security.static`) answers
``Session.can()`` by :meth:`PathSkeleton.matches` alone, so the NFA
must agree with the evaluator's selection on *every* node of *every*
document for *every* path in the patchable fragment -- including the
paper-compat ``star_matches_text`` reading, kind tests, and ``self::``
steps evaluated at the document node.  Hypothesis generates the
documents and the paths; any divergence is a soundness bug in static
enforcement, not a flaky test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.labels import DOCUMENT_ID
from repro.xpath import XPathEngine
from repro.xpath.skeleton import analyze_path

from ..strategies import documents

#: Node tests of the patchable fragment (names from the shared label
#: alphabet plus one that never occurs, wildcards, kind tests).
_TESTS = ("a", "b", "d", "patients", "nope", "*", "text()", "node()", "comment()")
_AXES = ("", "descendant::", "descendant-or-self::", "self::")


@st.composite
def patchable_paths(draw) -> str:
    """An absolute location path inside the NFA-decidable fragment."""
    n_steps = draw(st.integers(min_value=0, max_value=4))
    if n_steps == 0:
        return "/"
    steps = [
        draw(st.sampled_from(_AXES)) + draw(st.sampled_from(_TESTS))
        for _ in range(n_steps)
    ]
    return "/" + "/".join(steps)


def _engines():
    return {
        False: XPathEngine(),
        True: XPathEngine(lone_variable_name_test=True, star_matches_text=True),
    }


_ENGINES = _engines()


@given(doc=documents(), path=patchable_paths(), star=st.booleans())
@settings(max_examples=300, deadline=None)
def test_nfa_matches_evaluator_selection(doc, path, star):
    skeleton = analyze_path(path)
    assert skeleton is not None and skeleton.patchable, (
        f"generated path {path!r} unexpectedly left the patchable fragment"
    )
    engine = _ENGINES[star]
    selected = set(engine.select(doc, path))
    for nid in [DOCUMENT_ID, *doc.all_nodes()]:
        assert skeleton.matches(doc, nid, star) == (nid in selected), (
            f"NFA disagrees with evaluator on {path!r} at {nid!r} "
            f"(star_matches_text={star})"
        )


@given(doc=documents(), star=st.booleans())
@settings(max_examples=50, deadline=None)
def test_self_axis_at_document_node(doc, star):
    """`self::` evaluated at the document node: only node() matches."""
    for test, matches_doc in (
        ("node()", True),
        ("*", False),
        ("a", False),
        ("text()", False),
    ):
        skeleton = analyze_path(f"/self::{test}")
        engine = _ENGINES[star]
        selected = set(engine.select(doc, f"/self::{test}"))
        assert (DOCUMENT_ID in selected) is matches_doc
        assert skeleton.matches(doc, DOCUMENT_ID, star) is matches_doc


@given(doc=documents())
@settings(max_examples=50, deadline=None)
def test_star_compat_changes_text_membership_consistently(doc):
    """Both engines and both NFA readings stay pairwise consistent on
    the paths whose meaning the lone-* flag actually changes."""
    for path in ("//*", "/a/*", "/descendant-or-self::*"):
        skeleton = analyze_path(path)
        for star in (False, True):
            selected = set(_ENGINES[star].select(doc, path))
            for nid in doc.all_nodes():
                assert skeleton.matches(doc, nid, star) == (nid in selected)
