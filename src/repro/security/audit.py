"""Audit log of access-control decisions.

Not part of the paper's formal model, but any credible implementation
of it needs one: every grant/deny decision taken by the secure write
executor (and optionally by view derivation) is recorded with the rule
machinery's reason, so administrators can answer "why was this write
refused?" without re-deriving axioms by hand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..xmltree.labels import NodeId
from .privileges import Privilege

__all__ = ["AuditRecord", "AuditLog", "REJECTION_EVENTS"]

#: Serving-layer rejection events the log accepts (ISSUE 4): a request
#: shed by admission control, expired against its deadline, or given
#: up after exhausting its commit-race retries.
REJECTION_EVENTS = ("shed", "deadline", "retry-exhausted", "fenced")


@dataclass(frozen=True)
class AuditRecord:
    """One access decision (or transaction event).

    Attributes:
        sequence: monotonically increasing record number.
        user: the session user.
        operation: operation class name (``Rename``, ``Remove``, ...) or
            ``"view"`` for view-derivation events.
        path: the PATH parameter of the operation.
        node: the node the decision was about; None for script-level
            events such as aborts.
        privilege: the privilege that was checked; None for
            script-level events.
        allowed: the outcome.
        reason: denial/abort reason; empty when allowed.
        event: ``"decision"`` for per-node grant/deny records,
            ``"abort"`` for a script rollback, or a serving-layer
            rejection: ``"shed"`` (admission control refused the
            request), ``"deadline"`` (the request's budget expired),
            ``"retry-exhausted"`` (every backoff retry lost a commit
            race).
        rolled_back: for aborts, how many completed operations of the
            script were rolled back.
    """

    sequence: int
    user: str
    operation: str
    path: str
    node: Optional[NodeId] = None
    privilege: Optional[Privilege] = None
    allowed: bool = False
    reason: str = ""
    event: str = "decision"
    rolled_back: int = 0

    def __str__(self) -> str:
        if self.event == "abort":
            return (
                f"#{self.sequence} ABORT {self.user} {self.operation}"
                f"({self.path}) rolled back {self.rolled_back} "
                f"operation(s) -- {self.reason}"
            )
        if self.event in REJECTION_EVENTS:
            return (
                f"#{self.sequence} REJECT[{self.event}] {self.user} "
                f"{self.operation}({self.path}) -- {self.reason}"
            )
        verdict = "ALLOW" if self.allowed else "DENY "
        detail = f" -- {self.reason}" if self.reason else ""
        return (
            f"#{self.sequence} {verdict} {self.user} {self.operation}"
            f"({self.path}) {self.privilege} on {self.node!r}{detail}"
        )


class AuditLog:
    """An in-memory, append-only decision log."""

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self._sequence = itertools.count(1)

    def record(
        self,
        user: str,
        operation: str,
        path: str,
        node: NodeId,
        privilege: Privilege,
        allowed: bool,
        reason: str = "",
    ) -> AuditRecord:
        """Append one decision and return the stored record."""
        entry = AuditRecord(
            sequence=next(self._sequence),
            user=user,
            operation=operation,
            path=path,
            node=node,
            privilege=privilege,
            allowed=allowed,
            reason=reason,
        )
        self._records.append(entry)
        return entry

    def record_abort(
        self,
        user: str,
        operation: str,
        path: str,
        reason: str,
        operation_index: int = 0,
        rolled_back: int = 0,
    ) -> AuditRecord:
        """Append a script-abort event (a failed or rolled-back write).

        Args:
            user: the session user whose script aborted.
            operation: class name of the failing operation.
            path: the failing operation's PATH parameter.
            reason: why the script aborted.
            operation_index: zero-based index of the failing operation.
            rolled_back: completed operations undone by the rollback.
        """
        entry = AuditRecord(
            sequence=next(self._sequence),
            user=user,
            operation=operation,
            path=path,
            allowed=False,
            reason=f"aborted at operation {operation_index}: {reason}",
            event="abort",
            rolled_back=rolled_back,
        )
        self._records.append(entry)
        return entry

    def record_rejected(
        self,
        user: str,
        operation: str,
        path: str,
        reason: str,
        event: str,
    ) -> AuditRecord:
        """Append a serving-layer rejection (shed / timed-out /
        retry-exhausted request), mirroring :meth:`record_abort` for
        requests that never reached -- or never finished -- execution.

        Args:
            user: the requesting user.
            operation: request kind (operation class name, ``"query"``,
                ``"view"``, ...).
            path: the request's PATH parameter when it had one.
            reason: human-readable rejection reason.
            event: one of :data:`REJECTION_EVENTS`.
        """
        if event not in REJECTION_EVENTS:
            raise ValueError(
                f"unknown rejection event {event!r}; "
                f"known: {', '.join(REJECTION_EVENTS)}"
            )
        entry = AuditRecord(
            sequence=next(self._sequence),
            user=user,
            operation=operation,
            path=path,
            allowed=False,
            reason=reason,
            event=event,
        )
        self._records.append(entry)
        return entry

    def aborts(self) -> List[AuditRecord]:
        """Only the script-abort events."""
        return [r for r in self._records if r.event == "abort"]

    def rejections(self, event: Optional[str] = None) -> List[AuditRecord]:
        """Serving-layer rejection records, optionally filtered to one
        of :data:`REJECTION_EVENTS`."""
        return [
            r
            for r in self._records
            if r.event in REJECTION_EVENTS
            and (event is None or r.event == event)
        ]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def denials(self) -> List[AuditRecord]:
        """Only the refused decisions."""
        return [r for r in self._records if not r.allowed]

    def for_user(self, user: str) -> List[AuditRecord]:
        """All decisions concerning one user."""
        return [r for r in self._records if r.user == user]

    def clear(self) -> None:
        """Drop all records (testing convenience)."""
        self._records.clear()
