"""WAL-shipping replication suites: stream, replica, router, chaos."""
