"""A hospital network: one policy over a collection of documents.

The paper restricts its formulae to one document for simplicity while
targeting a collection store (Xindice).  `SecureCollection` lifts the
restriction: here a hospital keeps *patients*, *pharmacy* and *payroll*
documents under a single subject hierarchy and a single policy, and one
login spans them all:

- the nurse reads patient records and the pharmacy, but payroll
  salaries vanish from her view entirely;
- the accountant reads payroll but patient diagnoses are RESTRICTED;
- writes stay confined to the document they target, and every decision
  across all documents lands in one shared audit log.

Run with::

    python examples/hospital_network.py
"""

from repro.security import SecureCollection
from repro.xupdate import UpdateContent

PATIENTS = """
<patients>
  <franck><ward>3B</ward><diagnosis>tonsillitis</diagnosis></franck>
  <robert><ward>2A</ward><diagnosis>pneumonia</diagnosis></robert>
</patients>
"""

PHARMACY = """
<pharmacy>
  <drug><name>amoxicillin</name><stock>120</stock></drug>
  <drug><name>prednisone</name><stock>40</stock></drug>
</pharmacy>
"""

PAYROLL = """
<payroll>
  <employee><name>nina</name><salary>52000</salary></employee>
  <employee><name>arno</name><salary>61000</salary></employee>
</payroll>
"""


def build_network() -> SecureCollection:
    network = SecureCollection()
    subjects = network.subjects
    subjects.add_role("staff")
    subjects.add_role("nurse", member_of="staff")
    subjects.add_role("accountant", member_of="staff")
    subjects.add_user("nina", member_of="nurse")
    subjects.add_user("arno", member_of="accountant")

    policy = network.policy
    # Staff baseline: read everything...
    policy.grant("read", "//node()", "staff")
    # ...nurses lose payroll amounts entirely (structure hiding)...
    policy.deny("read", "//salary", "nurse")
    policy.deny("read", "//salary/text()", "nurse")
    # ...accountants see that diagnoses exist, not what they say.
    policy.deny("read", "//diagnosis/text()", "accountant")
    policy.grant("position", "//diagnosis/text()", "accountant")
    # Nurses keep ward assignments current.
    policy.grant("update", "//ward/text()", "nurse")

    network.add_document("patients", PATIENTS)
    network.add_document("pharmacy", PHARMACY)
    network.add_document("payroll", PAYROLL)
    return network


def main() -> None:
    network = build_network()

    nina = network.login("nina")
    print("== nurse nina across the collection ==")
    for name in network.names():
        print(f"--- {name} ---")
        print(nina.read_xml(name, indent="  "))
        print()

    arno = network.login("arno")
    print("== accountant arno: payroll visible, diagnoses RESTRICTED ==")
    print(arno.read_xml("payroll", indent="  "))
    print(arno.read_xml("patients", indent="  "))
    print()

    # A cross-collection query from one session.
    counts = nina.query_all("count(//*)")
    print("== element counts per document (nina's views) ==")
    for name, count in counts.items():
        print(f"  {name:10} {int(count)}")
    print()

    # Writes are confined to their document.
    result = nina.execute(
        "patients", UpdateContent("/patients/robert/ward", "ICU"), strict=True
    )
    print(f"nina moves robert to ICU: affected={len(result.affected)}")
    denied = nina.execute(
        "payroll", UpdateContent("//salary", "999999")
    )
    print(f"nina tries to edit a salary: selected={len(denied.selected)} "
          f"(invisible in her view -- nothing to select)")
    print()

    print("== shared audit log ==")
    for record in network.audit:
        print(f"  {record}")


if __name__ == "__main__":
    main()
