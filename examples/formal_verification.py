"""Watching the axioms run: the Datalog oracle vs the procedural engine.

The paper's Prolog prototype existed "simply to validate the
correctness of the axioms given in this paper".  This repository keeps
that idea alive: `repro.formal` transcribes axioms 11-25 into Datalog
and derives the same facts the procedural engine computes.  This
example performs the cross-check live on the paper's running example:

1. derive the isa closure (axioms 11-12) both ways;
2. derive perm(s, n, r) (axiom 14) both ways for the secretary;
3. derive her view (axioms 15-17) both ways;
4. derive dbnew after a doctor's update (axioms 20-21) both ways;

printing the fact counts and asserting equality at each step.

Run with::

    python examples/formal_verification.py
"""

from repro.core import (
    hospital_policy,
    hospital_subjects,
    medical_document,
)
from repro.formal import FormalModel
from repro.security import (
    PermissionResolver,
    Privilege,
    SecureWriteExecutor,
    ViewBuilder,
)
from repro.xupdate import UpdateContent


def check(title: str, procedural, formal) -> None:
    status = "MATCH" if procedural == formal else "MISMATCH"
    print(f"  {title:44} procedural={len(procedural):4d} "
          f"datalog={len(formal):4d}  {status}")
    assert procedural == formal, title


def main() -> None:
    doc = medical_document()
    subjects = hospital_subjects()
    policy = hospital_policy(subjects)
    model = FormalModel(doc, subjects, policy)
    resolver = PermissionResolver()
    builder = ViewBuilder(resolver)

    print("== Axioms 11-12: the isa closure ==")
    check(
        "isa(s, s') facts",
        set(subjects.closure_facts()),
        model.derive_isa(),
    )

    print("\n== Axiom 14: perm(s, n, r) for the secretary ==")
    table = resolver.resolve(doc, policy, "beaufort")
    procedural_perm = {
        (nid, privilege.value)
        for privilege in Privilege
        for nid in table.nodes_with(privilege)
    }
    check("perm facts (beaufort)", procedural_perm, model.derive_perm("beaufort"))

    print("\n== Axioms 15-17: the secretary's view ==")
    view = builder.build(doc, policy, "beaufort")
    check("node_view facts", view.facts(), model.derive_view("beaufort"))

    print("\n== Axioms 20-21: dbnew after the doctor's update ==")
    operation = UpdateContent("/patients/franck/diagnosis", "pharyngitis")
    doctor_view = builder.build(doc, policy, "laporte")
    procedural_new = (
        SecureWriteExecutor().apply(doctor_view, operation).document.facts()
    )
    check(
        "node_dbnew facts",
        procedural_new,
        model.derive_dbnew("laporte", operation),
    )

    print("\nEvery derivation agrees: the procedural engine implements "
          "exactly the paper's axioms.")


if __name__ == "__main__":
    main()
