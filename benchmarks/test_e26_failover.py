"""E26 (added): what supervised failover costs, phase by phase.

Two questions the failover supervisor raises:

**Detection -> promotion -> first-serve latency vs candidate lag.**
A promotion drains the chosen replica to the reachable end of the dead
primary's log before it may take over, so the dominant cost is replay
distance at the moment of the crash.  Rows break the cycle into its
phases -- the failure-detector verdict, the drain + promote sequence,
and the first request served by the new primary -- for candidates 0,
40 and 160 records behind.  The invariant behind the numbers: the
promoted primary stands at exactly the deposed primary's last
acknowledged version, whatever the lag was.

**Promotion cost vs dedup-ledger size.**  The exactly-once ledger is
carried over by seeding the new server from the candidate's rebuilt
table, so its (bounded) size is part of the switchover bill.  Rows
time a forced switchover under 0, 256 and 1024 keyed commits and
assert a post-failover retry is answered from the carried ledger, not
re-applied.

The smoke variant (``-k smoke``) runs the same invariants at toy sizes
with no timing bars, so the lane stays meaningful on loaded CI
machines.
"""

import shutil
import time

from conftest import print_series, synthetic_hospital

from repro.errors import StaleEpochError
from repro.replication import FailoverSupervisor, Replica, ReplicationRouter
from repro.serving import DatabaseServer
from repro.testing.faults import faults
from repro.wal import WriteAheadLog
from repro.xupdate import UpdateContent

PATIENTS = 60
LAG_SIZES = (0, 40, 160)
LEDGER_SIZES = (0, 256, 1024)


def committed_stream(db, commits, offset=0):
    """Apply ``commits`` deterministic diagnosis updates (each is one
    WAL record)."""
    for index in range(offset, offset + commits):
        db.admin_update(
            UpdateContent(
                f"//patient{index % PATIENTS:05d}/diagnosis",
                f"angina-{index}",
            )
        )


def build_cluster(tmp_path, label, patients=PATIENTS, replicas=1):
    db = synthetic_hospital(patients)
    wal_dir = str(tmp_path / f"{label}.wal")
    wal = WriteAheadLog(wal_dir, fsync="os")
    db.attach_wal(wal)
    wal.checkpoint(db)
    server = DatabaseServer(db)
    pool = [Replica(wal_dir) for _ in range(replicas)]
    # max_wait=0: a routed read never waits out replica lag, so the
    # first-serve phase times the new primary, not a routing budget.
    router = ReplicationRouter(server, pool, max_wait=0.0)
    supervisor = FailoverSupervisor(
        router,
        promote_dir=str(tmp_path / f"{label}.promoted"),
        heartbeat_timeout_ms=0.0,
        fsync="os",
    )
    return db, wal, wal_dir, server, router, supervisor


def kill_primary(db):
    """Tear one commit mid-record: the WAL writer is poisoned and the
    interrupted write was never acknowledged."""
    faults.arm("wal-mid-record", after=0)
    try:
        db.admin_update(UpdateContent("//patient00000/diagnosis", "torn"))
    except Exception:
        pass
    finally:
        faults.disarm()


def test_e26_failover_latency_vs_candidate_lag(tmp_path):
    rows = [("candidate lag", "detect ms", "promote ms",
             "first-serve ms", "total ms")]
    for lag in LAG_SIZES:
        db, wal, wal_dir, server, router, supervisor = build_cluster(
            tmp_path, f"lag{lag}"
        )
        committed_stream(db, 10)
        (replica,) = router.replicas
        replica.sync()
        committed_stream(db, lag, offset=10)  # the candidate's deficit
        assert replica.lag() == lag
        acked_version = db.version
        kill_primary(db)

        started = time.perf_counter()
        supervisor.heartbeat()
        assert supervisor.primary_failed
        detected = time.perf_counter()
        promoted = supervisor.promote()
        promoted_at = time.perf_counter()
        assert router.query("laporte", "count(//diagnosis)") is not None
        served = time.perf_counter()

        # No acknowledged write was lost, and the torn (unacked) one
        # did not sneak in: the new primary stands at exactly the last
        # acknowledged version.
        assert promoted.database.version == acked_version
        assert router.epoch == 1
        rows.append((
            f"{lag} records",
            f"{(detected - started) * 1000:.2f}",
            f"{(promoted_at - detected) * 1000:.2f}",
            f"{(served - promoted_at) * 1000:.2f}",
            f"{(served - started) * 1000:.2f}",
        ))
        shutil.rmtree(wal_dir)
    print_series("E26 failover latency vs candidate lag", rows)


def test_e26_promotion_cost_vs_dedup_ledger(tmp_path):
    rows = [("keyed commits", "carried entries", "switchover ms")]
    for keyed in LEDGER_SIZES:
        db, wal, wal_dir, server, router, supervisor = build_cluster(
            tmp_path, f"led{keyed}", patients=20
        )
        for index in range(keyed):
            with wal.annotate(idem=f"req-{index}"):
                db.admin_update(
                    UpdateContent(
                        f"//patient{index % 20:05d}/diagnosis",
                        f"keyed-{index}",
                    )
                )
        started = time.perf_counter()
        promoted = supervisor.promote(force=True)  # planned switchover
        elapsed = time.perf_counter() - started
        assert len(promoted.dedup) == min(keyed, 1024)
        if keyed:
            # A retried key is answered from the carried ledger: no
            # reapplication, the version is the original commit's.
            before = promoted.database.version
            replay = promoted.execute(
                "laporte",
                UpdateContent("//patient00000/diagnosis", "ignored"),
                idempotency_key=f"req-{keyed - 1}",
            )
            assert replay.deduped
            assert promoted.database.version == before
        rows.append((keyed, len(promoted.dedup), f"{elapsed * 1000:.2f}"))
        shutil.rmtree(wal_dir)
    print_series("E26 promotion cost vs dedup ledger", rows)


def test_e26_smoke_failover_invariants(tmp_path):
    """Counter-only smoke: detect, promote, fence, dedup -- no bars."""
    db, wal, wal_dir, server, router, supervisor = build_cluster(
        tmp_path, "smoke", patients=8, replicas=2
    )
    committed_stream(db, 4, offset=0)
    with wal.annotate(idem="smoke-key"):
        db.admin_update(UpdateContent("//patient00001/diagnosis", "keyed"))
    acked_version = db.version
    kill_primary(db)
    supervisor.heartbeat()
    assert supervisor.primary_failed
    promoted = supervisor.promote()
    # acked writes survived; the deposed primary can never ack again
    assert promoted.database.version == acked_version
    try:
        server.execute(
            "laporte", UpdateContent("//patient00000/diagnosis", "zombie")
        )
        raise AssertionError("a fenced primary acknowledged a write")
    except StaleEpochError:
        pass
    # the retried key is deduplicated on the new primary
    replay = promoted.execute(
        "laporte",
        UpdateContent("//patient00001/diagnosis", "ignored"),
        idempotency_key="smoke-key",
    )
    assert replay.deduped
    assert promoted.database.version == acked_version
    # the surviving replica follows the new log
    (survivor,) = router.replicas
    survivor.sync()
    assert survivor.version == promoted.database.version
