"""The XSLT security processor reproduces authorized views exactly."""

import pytest
from hypothesis import given, settings

from repro.security import Policy, SubjectHierarchy, ViewBuilder
from repro.xmltree import parse_xml, serialize
from repro.xslt import apply_stylesheet, match_path, view_stylesheet

from tests.strategies import build_policy, build_subjects, documents, policy_rules

BUILDER = ViewBuilder()


class TestMatchPath:
    def test_unique_positional_paths(self):
        doc = parse_xml('<r a="1"><x/><x/><y>t</y></r>')
        paths = {match_path(doc, nid) for nid in doc.all_nodes() if not nid.is_document}
        # One unique pattern per node.
        assert len(paths) == len(doc.all_nodes()) - 1

    def test_pattern_matches_only_its_node(self):
        from repro.xpath import XPathEngine

        doc = parse_xml("<r><x/><x><x/></x></r>")
        engine = XPathEngine()
        for nid in doc.all_nodes():
            if nid.is_document:
                continue
            selected = engine.select(doc, match_path(doc, nid))
            assert selected == [nid]


class TestPaperViews:
    @pytest.mark.parametrize(
        "user", ["beaufort", "robert", "richard", "laporte"]
    )
    def test_stylesheet_equals_materialized_view(self, db, user):
        view = db.build_view(user)
        stylesheet = view_stylesheet(view)
        output = apply_stylesheet(stylesheet, db.document)
        assert serialize(output) == serialize(view.doc)

    def test_stylesheet_sizes_are_small(self, db):
        """The processor emits one template per pruned/RESTRICTED
        boundary node, not per document node."""
        secretary = view_stylesheet(db.build_view("beaufort"))
        doctor = view_stylesheet(db.build_view("laporte"))
        assert len(secretary) == 3  # copy-through + 2 restricted texts
        assert len(doctor) == 1  # copy-through only


class TestFromPermissionTable:
    def test_permission_table_entry_point(self, db):
        table = db.permissions_for("richard")
        stylesheet = view_stylesheet(table, db.document)
        output = apply_stylesheet(stylesheet, db.document)
        assert serialize(output) == serialize(db.build_view("richard").doc)

    def test_table_without_document_rejected(self, db):
        table = db.permissions_for("richard")
        with pytest.raises(ValueError):
            view_stylesheet(table)


class TestAttributes:
    def test_invisible_attribute_pruned(self):
        doc = parse_xml('<r secret="s"><a/></r>')
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)
        policy.grant("read", "//node()", "u")
        view = BUILDER.build(doc, policy, "u")
        output = apply_stylesheet(view_stylesheet(view), doc)
        assert serialize(output) == "<r><a/></r>"

    def test_restricted_attribute_rewritten(self):
        doc = parse_xml('<r secret="s"><a/></r>')
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)
        policy.grant("read", "//node()", "u")
        policy.grant("position", "//@*", "u")
        view = BUILDER.build(doc, policy, "u")
        output = apply_stylesheet(view_stylesheet(view), doc)
        assert serialize(output) == serialize(view.doc)
        assert "s" not in serialize(output).replace("RESTRICTED", "")


@given(documents(), policy_rules())
@settings(max_examples=80, deadline=None)
def test_differential_stylesheet_equals_view(doc, rules):
    """On random documents and policies, applying the generated
    stylesheet to the source equals the materialized view."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    view = BUILDER.build(doc, policy, "u2")
    output = apply_stylesheet(view_stylesheet(view), doc)
    assert serialize(output) == serialize(view.doc)


class TestFromLazyView:
    def test_lazy_view_entry_point(self, db):
        """view_stylesheet accepts a LazyView and matches it exactly."""
        lazy = db.build_lazy_view("beaufort")
        output = apply_stylesheet(view_stylesheet(lazy), db.document)
        assert serialize(output) == serialize(db.build_view("beaufort").doc)
