"""Integration tests across the beyond-the-paper layers: lazy sessions,
XSLT processor after updates, storage + delegation + sessions."""

import pytest

from repro.core import hospital_database
from repro.security import SecureCollection
from repro.storage import dump_database, load_database
from repro.xmltree import element, serialize, text
from repro.xslt import apply_stylesheet, view_stylesheet
from repro.xupdate import Append, Remove, Rename, UpdateContent


class TestLazyWorkflow:
    """The full hospital workflow through lazily-enforced sessions."""

    def test_end_to_end_lazy(self):
        db = hospital_database()
        secretary = db.login("beaufort", enforcement="lazy")
        doctor = db.login("laporte", enforcement="lazy")

        secretary.execute(
            Append("/patients", element("albert", element("diagnosis"))),
            strict=True,
        )
        doctor.execute(
            Append("/patients/albert/diagnosis", text("angina")), strict=True
        )
        doctor.execute(
            UpdateContent("/patients/albert/diagnosis", "pericarditis"),
            strict=True,
        )
        tree = secretary.read_tree()
        assert "/albert" in tree
        assert "pericarditis" not in tree
        assert "RESTRICTED" in tree

    def test_lazy_and_materialized_sessions_interleave(self):
        db = hospital_database()
        lazy = db.login("laporte", enforcement="lazy")
        materialized = db.login("beaufort")
        lazy.execute(UpdateContent("/patients/franck/diagnosis", "flu"))
        # The materialized session picks up the lazy session's commit.
        assert "RESTRICTED" in materialized.read_tree()
        materialized.execute(Rename("/patients/franck", "francois"))
        assert "francois" in lazy.read_tree()

    def test_lazy_script_execution(self):
        db = hospital_database()
        doctor = db.login("laporte", enforcement="lazy")
        result = doctor.execute(
            '<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">'
            '<xupdate:update select="/patients/franck/diagnosis">a</xupdate:update>'
            '<xupdate:update select="/patients/robert/diagnosis">b</xupdate:update>'
            "</xupdate:modifications>"
        )
        assert len(result.affected) == 2


class TestXsltAfterUpdates:
    def test_stylesheet_recompiles_against_new_state(self):
        db = hospital_database()
        db.login("beaufort").execute(
            Append("/patients", element("albert", element("diagnosis"))),
            strict=True,
        )
        view = db.build_view("beaufort")
        output = apply_stylesheet(view_stylesheet(view), db.document)
        assert serialize(output) == serialize(view.doc)

    def test_stale_stylesheet_is_not_silently_wrong(self):
        """A stylesheet compiled before an update may mis-render the new
        state -- recompile per state; this guards the documentation."""
        db = hospital_database()
        old_view = db.build_view("beaufort")
        old_sheet = view_stylesheet(old_view)
        db.login("laporte").execute(
            Remove("/patients/franck/diagnosis/text()"), strict=True
        )
        fresh_view = db.build_view("beaufort")
        fresh_sheet = view_stylesheet(fresh_view)
        fresh_out = apply_stylesheet(fresh_sheet, db.document)
        assert serialize(fresh_out) == serialize(fresh_view.doc)
        # The stale sheet still runs without crashing, but only the
        # freshly compiled one is guaranteed to match the current view.
        apply_stylesheet(old_sheet, db.document)


class TestStoragePlusSessions:
    def test_full_cycle_save_reload_work(self):
        db = hospital_database()
        db.login("laporte").execute(
            UpdateContent("/patients/franck/diagnosis", "pharyngitis"),
            strict=True,
        )
        reloaded = load_database(dump_database(db))
        # Reloaded database keeps the updated content and the policy.
        assert "pharyngitis" in reloaded.login("laporte").read_xml()
        assert "RESTRICTED" in reloaded.login("beaufort").read_tree()
        # And writes keep working.
        result = reloaded.login("laporte").execute(
            UpdateContent("/patients/franck/diagnosis", "cured"), strict=True
        )
        assert result.fully_applied


class TestCollectionIntegration:
    def test_paper_policy_in_a_collection(self):
        from repro.core import MEDICAL_XML, PAPER_POLICY_RULES

        collection = SecureCollection()
        subjects = collection.subjects
        subjects.add_role("staff")
        subjects.add_role("secretary", member_of="staff")
        subjects.add_role("doctor", member_of="staff")
        subjects.add_role("epidemiologist", member_of="staff")
        subjects.add_role("patient")
        subjects.add_user("beaufort", member_of="secretary")
        subjects.add_user("laporte", member_of="doctor")
        for effect, privilege, path, subject in PAPER_POLICY_RULES:
            if effect == "accept":
                collection.policy.grant(privilege, path, subject)
            else:
                collection.policy.deny(privilege, path, subject)
        collection.add_document("site-a", MEDICAL_XML)
        collection.add_document("site-b", MEDICAL_XML)

        session = collection.login("beaufort")
        for name in ("site-a", "site-b"):
            assert "RESTRICTED" in session.read_xml(name)
        # A write at site-a leaves site-b untouched.
        session.execute(
            "site-a", Rename("/patients/franck", "francois"), strict=True
        )
        assert "francois" in session.read_xml("site-a")
        assert "francois" not in session.read_xml("site-b")
