"""E23 (added, ablation): compiled evaluators and static enforcement.

Three comparisons against the interpreted / materialized baselines:

- **compiled vs interpreted XPath** on the E15 construct families --
  the closure pipeline amortizes axis/test/predicate dispatch, so
  repeated evaluations (the policy workload) should win clearly;
- **compiled vs interpreted rule evaluation** through the resolver on
  the E18 multi-user workload, across policy size x document size;
- **static vs resolver-backed ``Session.can()``** -- NFA membership
  against cached-table lookup, asserting through ``db.stats()`` that
  the static run evaluated zero rule paths and materialized nothing.

Emitted to ``BENCH_E23.json`` by ``make bench-json``.
"""

import pytest

from conftest import synthetic_hospital

from repro.security import PermissionResolver
from repro.security.privileges import Privilege
from repro.xpath import XPathEngine

ENGINE = XPathEngine(lone_variable_name_test=True, star_matches_text=True)

USERS = ["beaufort", "laporte", "richard", "robert", "franck"]

#: The E15 construct families the policy layer actually evaluates.
CASES = [
    ("child-chain", "/patients/patient00042/diagnosis"),
    ("descendant-name", "//diagnosis"),
    ("descendant-wildcard", "//*"),
    ("text-nodes", "//text()"),
    ("positional-predicate", "/patients/*[1]"),
    ("name-function", "//*[name()='patient00099']"),
    ("union", "//service | //diagnosis"),
    ("count-aggregate", "count(//diagnosis)"),
]


@pytest.fixture(scope="module")
def doc():
    return synthetic_hospital(800).document


@pytest.fixture(scope="module")
def db():
    return synthetic_hospital(300)


# ----------------------------------------------------------------------
# compiled vs interpreted evaluation (E15 shapes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case,path", CASES, ids=[c[0] for c in CASES])
def test_e23_interpreted_xpath(benchmark, doc, case, path):
    def run():
        return ENGINE.evaluate(doc, path)

    benchmark(run)


@pytest.mark.parametrize("case,path", CASES, ids=[c[0] for c in CASES])
def test_e23_compiled_xpath(benchmark, doc, case, path):
    compiled = ENGINE.compile_evaluator(path)
    interpreted = ENGINE.evaluate(doc, path)

    def run():
        return compiled.evaluate(doc)

    result = benchmark(run)
    assert result == interpreted  # same answer, different engine


# ----------------------------------------------------------------------
# rule evaluation through the resolver (E18 workload)
# ----------------------------------------------------------------------
def _resolve_all(db, resolver):
    return [resolver.resolve(db.document, db.policy, user) for user in USERS]


def test_e23_resolver_interpreted_rules(benchmark, db):
    resolver = PermissionResolver(cache_paths=False, compile_rules=False)

    def run():
        return _resolve_all(db, resolver)

    tables = benchmark(run)
    assert len(tables) == len(USERS)


def test_e23_resolver_compiled_rules(benchmark, db):
    resolver = PermissionResolver(cache_paths=False, compile_rules=True)

    def run():
        return _resolve_all(db, resolver)

    tables = benchmark(run)
    assert len(tables) == len(USERS)
    assert resolver.stats["rules_compiled"] > 0


@pytest.mark.parametrize("patients", [50, 300, 1000], ids=lambda p: f"doc{p}")
def test_e23_compiled_rules_across_doc_sizes(benchmark, patients):
    scaled = synthetic_hospital(patients)
    resolver = PermissionResolver(cache_paths=False, compile_rules=True)

    def run():
        return _resolve_all(scaled, resolver)

    benchmark(run)


@pytest.mark.parametrize("extra_rules", [0, 20, 80], ids=lambda n: f"rules+{n}")
def test_e23_compiled_rules_across_policy_sizes(benchmark, extra_rules):
    scaled = synthetic_hospital(100)
    for i in range(extra_rules):
        # Alternating grants/denies over eligible paths: a bigger
        # axiom-14 replay with the same document.
        verb = scaled.policy.grant if i % 2 == 0 else scaled.policy.deny
        verb("read", f"/patients/patient{i:05d}/descendant-or-self::*", "staff")
    resolver = PermissionResolver(cache_paths=False, compile_rules=True)

    def run():
        return _resolve_all(scaled, resolver)

    benchmark(run)


# ----------------------------------------------------------------------
# static vs resolver-backed Session.can()
# ----------------------------------------------------------------------
def _probe_nodes(db, count=200):
    return list(db.document.all_nodes())[:count]


def test_e23_can_via_resolver_table(benchmark, db):
    # Bypass the static lane: ask the cached table directly, the
    # pre-compilation enforcement path.
    session_user = "laporte"
    nodes = _probe_nodes(db)

    def run():
        table = db.permissions_for(session_user)
        return [table.holds(nid, Privilege.READ) for nid in nodes]

    benchmark(run)


def test_e23_cold_probe_via_table(benchmark, db):
    """One privilege probe with no warm table: the resolver must replay
    axiom 14 over the whole document first -- O(rules x |doc|)."""
    nid = db.engine.select(db.document, "/patients/*[1]")[0]

    def run():
        resolver = PermissionResolver(cache_paths=False)
        table = resolver.resolve(db.document, db.policy, "laporte")
        return table.holds(nid, Privilege.READ)

    assert benchmark(run) is True


def test_e23_cold_probe_static(benchmark, db):
    """The same cold probe by NFA membership: O(depth x rules), no
    table, no document scan."""
    from repro.security.static import StaticDecider

    nid = db.engine.select(db.document, "/patients/*[1]")[0]
    rules = db.policy.applicable_rules("laporte")

    def run():
        decider = StaticDecider(rules, star_matches_text=True)
        return decider.decide(db.document, nid, Privilege.READ)[0]

    assert benchmark(run) is True


def test_e23_can_static(benchmark):
    # A fresh database so the stats ledger starts at zero.
    fresh = synthetic_hospital(300)
    session = fresh.login("laporte")
    nodes = _probe_nodes(fresh)

    def run():
        return [session.can("read", nid) for nid in nodes]

    answers = benchmark(run)
    stats = fresh.stats()
    # The acceptance criterion: eligible static probes evaluate no rule
    # path and materialize no view or table.
    assert stats["static_decisions"] > 0
    assert stats["path_evals"] == 0
    assert stats["full_resolves"] == 0
    assert stats["delta_resolves"] == 0
    assert stats["view_full_builds"] == 0
    table = fresh.resolver.resolve(fresh.document, fresh.policy, "laporte")
    assert answers == [table.holds(nid, Privilege.READ) for nid in nodes]
