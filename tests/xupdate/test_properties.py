"""Property tests of the XUpdate formulae (2)-(9) on random documents."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.xmltree import NodeKind, element
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    XUpdateExecutor,
)

from tests.strategies import documents

EXECUTOR = XUpdateExecutor()

PATHS = st.sampled_from(["//a", "//b", "//a/*", "/*", "//text()", "//zzz"])


@given(documents(), PATHS)
@settings(max_examples=80, deadline=None)
def test_rename_preserves_identifiers_and_count(doc, path):
    """Formulae 2-3: rename changes labels only."""
    result = EXECUTOR.apply(doc, Rename(path, "renamed"))
    new = result.document
    assert {n for (n, _v) in new.facts()} == {n for (n, _v) in doc.facts()}
    changed = {n for (n, v) in new.facts() if (n, v) not in doc.facts()}
    assert changed == {
        n for n in result.affected
    } - {n for n in result.affected if doc.label(n) == "renamed"}


@given(documents(), PATHS)
@settings(max_examples=80, deadline=None)
def test_update_changes_only_children_of_targets(doc, path):
    """Formulae 4-5: only children of addressed nodes are relabelled."""
    result = EXECUTOR.apply(doc, UpdateContent(path, "VNEW"))
    new = result.document
    affected = set(result.affected)
    child_of_target = set()
    for target in result.selected:
        child_of_target |= set(doc.children(target))
    assert affected <= child_of_target
    for n, v in new.facts():
        if n in affected:
            assert v == "VNEW"
        else:
            assert (n, v) in doc.facts()


@given(documents(), PATHS)
@settings(max_examples=80, deadline=None)
def test_append_adds_tree_size_per_target(doc, path):
    """Formulae 6-7: per selected node, one fragment copy appears."""
    # Text nodes cannot take children (structural XML constraint, the
    # executor raises); the property covers the structurally valid case.
    targets = EXECUTOR.engine.select(doc, path)
    assume(all(doc.kind(n) is not NodeKind.TEXT for n in targets))
    tree = element("fresh", element("leaf", "t"))
    result = EXECUTOR.apply(doc, Append(path, tree))
    new = result.document
    assert len(new) == len(doc) + tree.size() * len(result.selected)
    # Formula 6: the original theory embeds unchanged.
    assert doc.facts() <= new.facts()


@given(documents(), PATHS)
@settings(max_examples=80, deadline=None)
def test_remove_removes_exactly_selected_subtrees(doc, path):
    """Formulae 8-9: survivors are exactly the undeleted nodes."""
    result = EXECUTOR.apply(doc, Remove(path))
    new = result.document
    deleted_roots = set(result.selected)
    for n, v in doc.facts():
        in_deleted_subtree = n in deleted_roots or any(
            a in deleted_roots for a in n.ancestors()
        )
        if in_deleted_subtree:
            assert n not in new
        else:
            assert (n, v) in new.facts()


@given(documents(), PATHS)
@settings(max_examples=60, deadline=None)
def test_insert_before_after_are_mirror_images(doc, path):
    """insert-before then reading forward == insert-after reading back."""
    # A sibling of the root element would be a second document root --
    # structurally impossible; skip those targets.
    targets = EXECUTOR.engine.select(doc, path)
    assume(all(not n.parent().is_document for n in targets))
    tree = element("marker")
    before = EXECUTOR.apply(doc, InsertBefore(path, tree))
    after = EXECUTOR.apply(doc, InsertAfter(path, tree))
    assert len(before.affected) == len(after.affected) == len(before.selected)
    for target, marker in zip(before.selected, before.affected):
        assert marker in before.document.preceding_siblings(target)
    for target, marker in zip(after.selected, after.affected):
        assert marker in after.document.following_siblings(target)


@given(documents(), PATHS)
@settings(max_examples=60, deadline=None)
def test_persistence_across_every_operation(doc, path):
    """Section 3.1's requirement: surviving nodes keep their numbers,
    and all geometry derived from those numbers is unchanged."""
    for op in (
        Rename(path, "x"),
        UpdateContent(path, "x"),
        Remove(path),
    ):
        new = EXECUTOR.apply(doc, op).document
        survivors = {n for (n, _v) in new.facts()}
        originals = {n for (n, _v) in doc.facts()}
        assert survivors <= originals
        for n in survivors:
            if n.is_document:
                continue
            assert new.parent(n) == doc.parent(n)
            assert new.kind(n) is doc.kind(n)
