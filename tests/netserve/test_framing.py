"""The framing codec: round-trips under arbitrary TCP chunking, and
clean rejection of oversized or malformed frames (satellite of
ISSUE 8: the property the whole wire protocol stands on)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameTooLarge, ProtocolError
from repro.netserve import FrameDecoder, encode_frame
from repro.netserve.framing import HEADER

pytestmark = pytest.mark.netserve

#: Arbitrary JSON-able payload objects (always a dict at the top, as
#: the protocol requires), with unicode well outside ASCII.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)
payloads = st.dictionaries(st.text(max_size=10), json_values, max_size=6)


def chunked(data: bytes, cuts) -> list:
    """Split ``data`` at the given positions (simulating arbitrary
    ``recv`` boundaries)."""
    positions = sorted({min(c, len(data)) for c in cuts})
    chunks, last = [], 0
    for position in positions:
        chunks.append(data[last:position])
        last = position
    chunks.append(data[last:])
    return chunks


class TestRoundTripProperties:
    @given(
        frames=st.lists(payloads, min_size=1, max_size=6),
        cuts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_split_or_coalesce_roundtrips_exactly(
        self, frames, cuts, data
    ):
        """Encode N frames, deliver the byte stream split at arbitrary
        positions (including empty chunks and everything-coalesced),
        and the decoder must yield exactly the original frames in
        order."""
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        for chunk in chunked(stream, cuts):
            decoded.extend(decoder.feed(chunk))
        assert decoded == frames
        assert decoder.buffered == 0
        assert decoder.frames_decoded == len(frames)

    @given(payload=payloads)
    @settings(max_examples=40, deadline=None)
    def test_byte_at_a_time_delivery(self, payload):
        stream = encode_frame(payload)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i:i + 1]))
        assert decoded == [payload]


class TestLimits:
    def test_encode_refuses_oversized_frames(self):
        with pytest.raises(FrameTooLarge) as info:
            encode_frame({"blob": "x" * 100}, max_frame=50)
        assert info.value.limit == 50
        assert info.value.announced > 50

    def test_decoder_rejects_announced_oversize_before_buffering(self):
        """A hostile length prefix is refused from the prefix alone --
        the announced bytes are never awaited, so a 4GB claim cannot
        balloon memory or hang the connection."""
        decoder = FrameDecoder(max_frame=64)
        prefix = HEADER.pack(2**31)
        with pytest.raises(FrameTooLarge) as info:
            decoder.feed(prefix)
        assert info.value.announced == 2**31
        assert info.value.limit == 64

    def test_oversize_detected_even_mid_prefix(self):
        decoder = FrameDecoder(max_frame=64)
        prefix = HEADER.pack(1 << 20)
        assert decoder.feed(prefix[:2]) == []  # prefix incomplete: wait
        with pytest.raises(FrameTooLarge):
            decoder.feed(prefix[2:])

    def test_exactly_max_frame_is_accepted(self):
        payload = {"k": "v"}
        body = json.dumps(payload, separators=(",", ":")).encode()
        decoder = FrameDecoder(max_frame=len(body))
        assert decoder.feed(encode_frame(payload, len(body))) == [payload]


class TestMalformedBodies:
    def test_non_json_body_raises_protocol_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack(3) + b"{{{")

    def test_non_utf8_body_raises_protocol_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack(2) + b"\xff\xfe")

    def test_non_object_body_raises_protocol_error(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack(2) + b"[]")

    def test_failed_decoder_stays_poisoned(self):
        """After a violation the stream offset cannot be trusted; the
        decoder refuses to resynchronize on later garbage."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack(3) + b"{{{")
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame({"fine": 1}))

    def test_unencodable_payload_refused_at_encode_time(self):
        with pytest.raises(ProtocolError):
            encode_frame({"bad": object()})
