"""Command-line interface to a secure XML database file.

A thin operational shell over the library, working against the
single-file format of :mod:`repro.storage`::

    python -m repro.cli init db.xml --document patients.xml
    python -m repro.cli add-role db.xml staff
    python -m repro.cli add-role db.xml secretary --member-of staff
    python -m repro.cli add-user db.xml beaufort --member-of secretary
    python -m repro.cli grant db.xml read '//*' staff
    python -m repro.cli deny  db.xml read '//diagnosis/*' secretary
    python -m repro.cli show  db.xml
    python -m repro.cli view  db.xml beaufort
    python -m repro.cli query db.xml beaufort 'count(//diagnosis)'
    python -m repro.cli update db.xml laporte updates.xupdate.xml
    python -m repro.cli lint db.xml
    python -m repro.cli recover damaged.xml --write
    python -m repro.cli scrub db.xml.wal --deep
    python -m repro.cli scrub db.xml.wal --repair-from peer.xml.wal
    python -m repro.cli replica db.xml.wal --query beaufort 'count(//*)'
    python -m repro.cli stress db.xml laporte updates.xupdate.xml --writers 4
    python -m repro.cli serve db.xml --port 7915
    python -m repro.cli stress db.xml laporte updates.xupdate.xml --net

Every mutating command rewrites the database file crash-safely (temp
file + fsync + atomic rename, keeping the previous content in a
rolling ``.bak`` sibling); ``recover`` salvages what it can from a
partially corrupt file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .security.database import SecureXMLDatabase
from .storage import LoadReport, load_from_file, save_to_file
from .xmltree.parser import parse_xml
from .xmltree.serializer import render_tree, serialize
from .xpath.values import is_node_set

__all__ = ["main", "build_parser"]


class CliError(Exception):
    """User-facing command error (bad arguments, refused operation)."""


def _save(db: SecureXMLDatabase, path: str) -> None:
    # Crash-safe: temp file + fsync + atomic rename, rolling .bak.
    save_to_file(db, path)


def _load(path: str) -> SecureXMLDatabase:
    if not os.path.exists(path):
        raise CliError(f"no database file at {path!r} (run 'init' first)")
    return load_from_file(path)


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------
def cmd_init(args: argparse.Namespace) -> int:
    if os.path.exists(args.database) and not args.force:
        raise CliError(f"{args.database!r} already exists (use --force)")
    if args.document:
        with open(args.document, "r", encoding="utf-8") as handle:
            db = SecureXMLDatabase(parse_xml(handle.read()))
    else:
        db = SecureXMLDatabase.from_xml(args.xml)
    _save(db, args.database)
    print(f"initialized {args.database} ({len(db.document)} nodes)")
    return 0


def cmd_add_role(args: argparse.Namespace) -> int:
    db = _load(args.database)
    db.subjects.add_role(args.name, member_of=args.member_of)
    _save(db, args.database)
    print(f"added role {args.name}")
    return 0


def cmd_add_user(args: argparse.Namespace) -> int:
    db = _load(args.database)
    db.subjects.add_user(args.name, member_of=args.member_of)
    _save(db, args.database)
    print(f"added user {args.name}")
    return 0


def cmd_grant(args: argparse.Namespace) -> int:
    db = _load(args.database)
    rule = db.policy.grant(args.privilege, args.path, args.subject)
    _save(db, args.database)
    print(f"added {rule}")
    return 0


def cmd_deny(args: argparse.Namespace) -> int:
    db = _load(args.database)
    rule = db.policy.deny(args.privilege, args.path, args.subject)
    _save(db, args.database)
    print(f"added {rule}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    db = _load(args.database)
    print(f"document: {len(db.document)} nodes")
    print(f"subjects: {len(db.subjects.roles)} roles, "
          f"{len(db.subjects.users)} users")
    for name in sorted(db.subjects.roles):
        parents = ", ".join(sorted(db.subjects.direct_parents(name))) or "-"
        print(f"  role {name} (isa: {parents})")
    for name in sorted(db.subjects.users):
        parents = ", ".join(sorted(db.subjects.direct_parents(name))) or "-"
        print(f"  user {name} (isa: {parents})")
    print(f"policy: {len(db.policy)} rules")
    for rule in db.policy:
        print(f"  {rule}")
    return 0


def cmd_view(args: argparse.Namespace) -> int:
    db = _load(args.database)
    session = db.login(args.user)
    if args.tree:
        print(session.read_tree())
    else:
        print(session.read_xml(indent="  "))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    db = _load(args.database)
    session = db.login(args.user)
    value = session.query(args.xpath)
    if is_node_set(value):
        view_doc = session.view().doc
        for nid in value:
            print(serialize(view_doc, nid=nid))
    elif isinstance(value, bool):
        print("true" if value else "false")
    elif isinstance(value, float):
        from .xpath.values import number_to_string

        print(number_to_string(value))
    else:
        print(value)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    db = _load(args.database)
    session = db.login(args.user)
    if os.path.exists(args.xupdate):
        with open(args.xupdate, "r", encoding="utf-8") as handle:
            script = handle.read()
    else:
        script = args.xupdate
    from .security.write import AccessDenied

    try:
        result = session.execute(script, strict=args.strict)
    except AccessDenied as exc:
        # Strict mode: nothing was committed; report and exit 3.
        for denial in exc.denials:
            print(f"  DENIED: {denial}")
        return 3
    _save(db, args.database)
    print(f"selected={len(result.selected)} affected={len(result.affected)} "
          f"denied={len(result.denials)}")
    for denial in result.denials:
        print(f"  DENIED: {denial}")
    return 0 if result.fully_applied else 3


def cmd_lint(args: argparse.Namespace) -> int:
    """Report dead, empty-path and audience-less policy rules."""
    db = _load(args.database)
    warnings = db.lint_policy()
    for warning in warnings:
        print(warning)
    if not warnings:
        print("policy is clean")
        return 0
    print(f"{len(warnings)} warning(s)")
    return 4


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover the database: WAL replay when a log directory exists,
    lenient snapshot load otherwise."""
    wal_dir = args.wal if args.wal else args.database + ".wal"
    if not args.no_wal and os.path.isdir(wal_dir) and os.listdir(wal_dir):
        return _recover_from_wal(args, wal_dir)
    if not os.path.exists(args.database):
        raise CliError(f"no database file at {args.database!r}")
    report = LoadReport()
    db = load_from_file(args.database, mode="lenient", report=report)
    print(report)
    print(
        f"recovered: {len(db.document)} document nodes, "
        f"{len(db.subjects.roles)} roles, {len(db.subjects.users)} users, "
        f"{len(db.policy)} rules"
    )
    if args.write:
        _save(db, args.database)
        print(f"rewrote {args.database} with the recovered state")
    return 0 if report.clean else 4


def _recover_from_wal(args: argparse.Namespace, wal_dir: str) -> int:
    """Crash recovery: checkpoint + committed log prefix -> database.

    With ``--write``, the torn tail is physically truncated (so the
    log re-opens for appending) and the recovered state is saved to
    the database file.
    """
    from .wal import recover as wal_recover

    result = wal_recover(wal_dir, repair=args.write)
    db = result.database
    print(result.report)
    if result.checkpoint is not None:
        print(
            f"checkpoint: {os.path.basename(result.checkpoint.path)} "
            f"(lsn {result.checkpoint.lsn}, "
            f"version {result.checkpoint.version})"
        )
    print(
        f"replayed {result.replayed} commit record(s) up to "
        f"lsn {result.last_lsn}; recovered version {result.version}"
    )
    print(
        f"recovered: {len(db.document)} document nodes, "
        f"{len(db.subjects.roles)} roles, {len(db.subjects.users)} users, "
        f"{len(db.policy)} rules"
    )
    if args.write:
        _save(db, args.database)
        print(f"rewrote {args.database} with the recovered state")
    return 0 if result.report.clean else 4


def cmd_wal_inspect(args: argparse.Namespace) -> int:
    """Scan a write-ahead-log directory and print what it holds."""
    from .wal import list_checkpoints, quarantine_reason, scan_directory

    if not os.path.isdir(args.directory):
        raise CliError(f"no log directory at {args.directory!r}")
    scan = scan_directory(args.directory)
    for path in scan.segments:
        in_segment = [r for r in scan.records if r.segment == path]
        first = in_segment[0].lsn if in_segment else "-"
        last = in_segment[-1].lsn if in_segment else "-"
        quarantined = quarantine_reason(path)
        if quarantined is not None:
            status = "QUARANTINED"
        elif scan.torn is not None and scan.torn.segment == path:
            status = "DAMAGED"
        else:
            status = "checksums ok"
        print(
            f"segment {os.path.basename(path)}: {len(in_segment)} "
            f"record(s) (lsn {first}..{last}), "
            f"{os.path.getsize(path)} bytes [{status}]"
        )
        if quarantined is not None:
            print(f"  quarantine reason: {quarantined}")
    for checkpoint in list_checkpoints(args.directory):
        print(
            f"checkpoint {os.path.basename(checkpoint.path)}: "
            f"lsn {checkpoint.lsn}, version {checkpoint.version}"
        )
    kinds: dict = {}
    for record in scan.records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "none"
    print(f"{len(scan.records)} usable record(s) "
          f"(last lsn {scan.last_lsn}): {summary}")
    if args.records:
        for record in scan.records:
            extra = ""
            if "version" in record.payload:
                extra = f" version={record.payload['version']}"
            if "user" in record.payload:
                extra += f" user={record.payload['user']}"
            if "op" in record.payload:
                extra += f" op={record.payload['op']}"
            print(f"  lsn {record.lsn}: {record.kind}{extra} "
                  f"({record.length} bytes, crc ok)")
    if scan.torn is not None:
        print(f"TORN: {scan.torn}")
        return 4
    print("log is clean")
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Verify a log directory's integrity; optionally repair from a peer.

    Walks every WAL segment (record CRCs, structure) and checkpoint
    (integrity headers; full SHA-256 recompute under ``--deep``),
    quarantining non-tail corruption exactly like the background
    scrubber.  With ``--repair-from`` a damaged directory is rebuilt
    from the named healthy peer directory and re-verified.  Exit 4
    when corruption was found (and not repaired).
    """
    from .scrub import scrub_directory

    wal_dir = args.wal_dir if args.wal_dir else args.directory
    if not os.path.isdir(wal_dir):
        raise CliError(f"no log directory at {wal_dir!r}")
    report = scrub_directory(wal_dir, deep=args.deep)
    print(
        f"scrubbed {wal_dir}: {report.records_verified} record(s), "
        f"{report.segments_verified} clean segment(s), "
        f"{report.checkpoints_verified} checkpoint(s), "
        f"{report.bytes_verified} byte(s)"
    )
    for finding in report.findings:
        print(f"  {finding}")
    if report.clean:
        print("integrity ok")
        return 0
    if args.repair_from:
        from .errors import RepairError
        from .replication import repair_from_peer

        try:
            repaired = repair_from_peer(wal_dir, args.repair_from)
        except RepairError as exc:
            print(f"repair failed ({exc.reason}): {exc}")
            return 4
        print(
            f"repaired from {args.repair_from}: "
            f"{repaired.segments_copied} segment(s) and "
            f"{repaired.checkpoints_copied} checkpoint(s) installed, "
            f"{len(repaired.moved_aside)} damaged file(s) moved to "
            f"{repaired.damaged_dir or '(nothing)'}; rejoins at epoch "
            f"{repaired.epoch}, lsn {repaired.last_lsn}"
        )
        after = scrub_directory(wal_dir, deep=args.deep)
        if after.clean:
            print("post-repair integrity ok")
            return 0
        for finding in after.findings:
            print(f"  {finding}")
        print("post-repair scrub still found damage")
        return 4
    print("corruption found; repair from a healthy peer "
          "(--repair-from PEERDIR)")
    return 4


def cmd_replica(args: argparse.Namespace) -> int:
    """Stand up a read replica over a primary's log directory.

    Seeds from the newest checkpoint plus the committed log suffix
    (never writing to the primary's files), reports applied position
    and lag against the log tail, and optionally serves a read-only
    query from the replica's authorized view.  With ``--follow``, keeps
    polling the stream and reporting progress until interrupted.
    """
    import time as time_module

    from .replication import Replica

    if not os.path.isdir(args.directory):
        raise CliError(f"no log directory at {args.directory!r}")
    replica = Replica(args.directory)

    def report() -> None:
        print(
            f"replica {replica.replica_id}: version {replica.version}, "
            f"applied lsn {replica.applied_lsn}, lag {replica.lag()} "
            f"record(s), state {replica.state}"
        )

    report()
    if args.follow:
        try:
            while True:
                applied = replica.poll()
                if applied:
                    report()
                time_module.sleep(args.interval)
        except KeyboardInterrupt:
            print("stopped")
    if args.query:
        user, xpath = args.query
        value, version = replica.serve(user, lambda s: s.query(xpath))
        print(f"[version {version}] {value}")
    if args.stats:
        for key, val in sorted(replica.stats().items()):
            print(f"  {key}: {val}")
    if args.promote:
        if replica.quarantined:
            print(
                f"cannot promote a quarantined replica "
                f"({replica.stats()['quarantine_reason']})",
                file=sys.stderr,
            )
            return 4
        from .errors import ReplicaDiverged
        from .serving import DatabaseServer
        from .wal import WriteAheadLog

        try:
            replica.sync()  # drain to the reachable end of the old log
        except ReplicaDiverged as exc:
            print(
                f"cannot promote: replica diverged while draining "
                f"({exc})",
                file=sys.stderr,
            )
            return 4
        new_epoch = replica.epoch + 1
        os.makedirs(args.promote, exist_ok=True)
        database = replica.database
        database.set_read_only(False)
        wal = WriteAheadLog(args.promote, epoch=new_epoch)
        server = DatabaseServer(database, wal=wal)
        server.checkpoint()
        server.dedup.seed(replica.dedup_entries())
        server.mark_promoted()
        print(
            f"promoted to primary: epoch {new_epoch}, version "
            f"{server.database.version}, log {args.promote} "
            f"({len(server.dedup)} idempotency entr(ies) carried over)"
        )
        return 0
    return 4 if replica.quarantined else 0


def cmd_failover_status(args: argparse.Namespace) -> int:
    """Report a log directory's failover state.

    Prints the fencing-epoch line of the log (checkpoints and records),
    the applied position, and the idempotency ledger the log would
    rebuild.  Exit 4 when the log holds *stale-epoch* records -- a
    deposed primary kept writing after a promotion elsewhere; those
    records are fenced (never applied by replicas, never acknowledged).
    """
    from .wal import list_checkpoints, scan_directory

    if not os.path.isdir(args.directory):
        raise CliError(f"no log directory at {args.directory!r}")
    scan = scan_directory(args.directory)
    checkpoints = list_checkpoints(args.directory)
    checkpoint_epoch = max((c.epoch for c in checkpoints), default=0)
    observed = checkpoint_epoch
    stale = []
    idem_keys = set()
    for record in scan.records:
        if record.epoch < observed:
            stale.append(record)
        else:
            observed = record.epoch
        if record.payload.get("idem") is not None:
            idem_keys.add(str(record.payload["idem"]))
    print(f"epoch: {observed}")
    print(
        f"last lsn: {scan.last_lsn}, {len(scan.records)} usable record(s)"
    )
    for checkpoint in checkpoints:
        print(
            f"checkpoint lsn {checkpoint.lsn}: "
            f"version {checkpoint.version}, epoch {checkpoint.epoch}"
        )
    print(f"idempotency keys on record: {len(idem_keys)}")
    if scan.torn is not None:
        print(f"TORN: {scan.torn}")
    if stale:
        print(
            f"FENCED: {len(stale)} stale-epoch record(s), first at "
            f"lsn {stale[0].lsn} (epoch {stale[0].epoch} after "
            f"{observed} was reached)"
        )
        return 4
    print("single unbroken epoch line")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the database over the framed network protocol.

    Opens the file through :meth:`DatabaseServer.open` (crash recovery
    + write-ahead log with the requested durability), then listens
    with the asyncio front-end: per-connection sessions, pipelining,
    deadline propagation, and -- unless ``--no-group-commit`` --
    concurrent write scripts batched into single-fsync commit groups.
    Prints ``listening on HOST:PORT`` once accepting (port 0 picks a
    free one), then runs until interrupted.
    """
    import asyncio

    from .netserve import NetServer
    from .serving import DatabaseServer

    server = DatabaseServer.open(
        args.database,
        durability=args.durability,
        max_in_flight=args.max_in_flight,
        overload=args.overload,
        default_deadline=args.deadline,
        checkpoint_every=args.checkpoint_every,
    )
    net = NetServer(
        server,
        host=args.host,
        port=args.port,
        group_commit=not args.no_group_commit,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_pipeline=args.max_pipeline,
        executor_workers=args.workers,
    )

    async def run() -> None:
        await net.start()
        print(f"listening on {net.host}:{net.port}", flush=True)
        try:
            await net.serve_forever()
        finally:
            await net.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
    return 0


#: Serving-layer refusals: governed outcomes of an overloaded server,
#: not harness failures (the same set ``cmd_stress`` absorbs locally).
_GOVERNED_KINDS = frozenset(
    ["OverloadError", "DeadlineExceeded", "RetryExhausted",
     "CircuitOpenError"]
)


def _stress_over_network(args, script: str, reader_user: str) -> int:
    """The ``stress --net`` body: same load shape, but every request
    crosses a socket to a spawned ``repro serve`` subprocess.

    The subprocess serves a *temp copy* of the database file (serving
    attaches a write-ahead log and checkpoints, and stress must keep
    its never-modifies-the-file promise).
    """
    import re
    import shutil
    import subprocess
    import tempfile
    import time as time_module

    from .errors import NetworkError, RemoteError
    from .netserve import NetClient
    from .testing.faults import run_threads

    workdir = tempfile.mkdtemp(prefix="repro-stress-")
    copy = os.path.join(workdir, os.path.basename(args.database))
    shutil.copy(args.database, copy)
    command = [
        sys.executable, "-m", "repro.cli", "serve", copy,
        "--port", "0",
        "--durability", args.durability,
        "--max-delay-ms", str(args.max_delay_ms),
    ]
    if args.max_in_flight is not None:
        command += ["--max-in-flight", str(args.max_in_flight)]
    if args.overload != "block":
        command += ["--overload", args.overload]
    if args.deadline is not None:
        command += ["--deadline", str(args.deadline)]
    if args.no_group_commit:
        command += ["--no-group-commit"]
    proc = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    try:
        line = proc.stdout.readline()
        match = re.match(r"listening on (\S+):(\d+)", line)
        if not match:
            proc.terminate()
            _, stderr = proc.communicate(timeout=10)
            raise CliError(
                f"serve subprocess failed to start: {line!r} {stderr!r}"
            )
        host, port = match.group(1), int(match.group(2))

        def worker(index: int) -> None:
            with NetClient(host, port, timeout=60) as client:
                if index < args.writers:
                    client.open_session(args.user)
                    for _ in range(args.rounds):
                        try:
                            client.execute(script)
                        except RemoteError as exc:
                            if exc.kind not in _GOVERNED_KINDS:
                                raise
                else:
                    client.open_session(reader_user)
                    for _ in range(args.rounds):
                        try:
                            client.read_xml()
                        except RemoteError as exc:
                            if exc.kind not in _GOVERNED_KINDS:
                                raise

        total = args.writers + args.readers
        started = time_module.perf_counter()
        errors = [e for e in run_threads(worker, total, timeout=300.0)
                  if e is not None]
        elapsed = time_module.perf_counter() - started
        with NetClient(host, port, timeout=30) as client:
            client.open_session(args.user)
            stats = client.stats()
        requests = stats["reads"] + stats["writes"] + stats["shed"] + stats[
            "deadline_exceeded"] + stats["retry_exhausted"]
        print(f"{total} connections, {requests} requests in {elapsed:.3f}s "
              f"({requests / elapsed:.0f} req/s) over {host}:{port}")
        for key in ("reads", "writes", "commits", "retries", "commit_races",
                    "shed", "deadline_exceeded", "retry_exhausted",
                    "group_commits", "grouped_records", "group_fsyncs_saved",
                    "net_frames_in", "net_frames_out",
                    "net_connections_opened", "breaker_state", "version"):
            print(f"  {key}: {stats[key]}")
        for error in errors:
            print(f"  UNGOVERNED: {type(error).__name__}: {error}",
                  file=sys.stderr)
        return 5 if errors else 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)


def cmd_stress(args: argparse.Namespace) -> int:
    """Hammer the database through the concurrent serving layer.

    Spawns writer threads (each applying the XUpdate script ``--rounds``
    times through :class:`~repro.serving.DatabaseServer`, so commit
    races are absorbed by retry/backoff) alongside reader threads, then
    prints the serving ledger.  Purely in-memory: the database file is
    never modified.  With ``--net``, the same load instead crosses
    sockets to a spawned ``repro serve`` subprocess (serving a temp
    copy), one connection per thread.
    """
    import time as time_module

    from .errors import (
        CircuitOpenError,
        DeadlineExceeded,
        OverloadError,
        RetryExhausted,
    )
    from .serving import DatabaseServer, RetryPolicy
    from .testing.faults import run_threads

    if os.path.exists(args.xupdate):
        with open(args.xupdate, "r", encoding="utf-8") as handle:
            net_script = handle.read()
    else:
        net_script = args.xupdate
    if args.net:
        return _stress_over_network(
            args, net_script, args.reader or args.user
        )

    db = _load(args.database)
    server = DatabaseServer(
        db,
        retry=RetryPolicy(max_attempts=args.attempts),
        max_in_flight=args.max_in_flight,
        overload=args.overload,
        default_deadline=args.deadline,
    )
    script = net_script
    reader_user = args.reader or args.user
    governed = (OverloadError, DeadlineExceeded, RetryExhausted, CircuitOpenError)

    def worker(index: int) -> None:
        if index < args.writers:
            for _ in range(args.rounds):
                try:
                    server.execute(args.user, script)
                except governed:
                    pass  # shed/expired: governed outcomes, counted below
        else:
            for _ in range(args.rounds):
                try:
                    server.read_xml(reader_user)
                except governed:
                    pass

    total = args.writers + args.readers
    started = time_module.perf_counter()
    errors = [e for e in run_threads(worker, total) if e is not None]
    elapsed = time_module.perf_counter() - started
    stats = server.stats()
    requests = stats["reads"] + stats["writes"] + stats["shed"] + stats[
        "deadline_exceeded"] + stats["retry_exhausted"]
    print(f"{total} threads, {requests} requests in {elapsed:.3f}s "
          f"({requests / elapsed:.0f} req/s)")
    for key in ("reads", "writes", "commits", "retries", "commit_races",
                "shed", "deadline_exceeded", "retry_exhausted",
                "breaker_state", "version"):
        print(f"  {key}: {stats[key]}")
    for error in errors:
        print(f"  UNGOVERNED: {type(error).__name__}: {error}",
              file=sys.stderr)
    return 5 if errors else 0


def cmd_audit_demo(args: argparse.Namespace) -> int:
    """Load, replay one operation, and show the audit decisions.

    The audit log is in-memory (the file format stores only the theory),
    so this command exists to inspect decisions interactively.
    """
    db = _load(args.database)
    session = db.login(args.user)
    session.execute(args.xupdate)
    for record in db.audit:
        print(record)
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-xmlsec",
        description="Secure XML database (Gabillon 2005) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a database file")
    p.add_argument("database")
    p.add_argument("--document", help="XML file to load as the document")
    p.add_argument("--xml", default="<root/>", help="inline document XML")
    p.add_argument("--force", action="store_true")
    p.set_defaults(handler=cmd_init)

    p = sub.add_parser("add-role", help="declare a role")
    p.add_argument("database")
    p.add_argument("name")
    p.add_argument("--member-of")
    p.set_defaults(handler=cmd_add_role)

    p = sub.add_parser("add-user", help="declare a user")
    p.add_argument("database")
    p.add_argument("name")
    p.add_argument("--member-of")
    p.set_defaults(handler=cmd_add_user)

    for verb, handler in (("grant", cmd_grant), ("deny", cmd_deny)):
        p = sub.add_parser(verb, help=f"{verb} a privilege on a path")
        p.add_argument("database")
        p.add_argument("privilege",
                       choices=["position", "read", "insert", "update", "delete"])
        p.add_argument("path")
        p.add_argument("subject")
        p.set_defaults(handler=handler)

    p = sub.add_parser("show", help="print subjects and policy")
    p.add_argument("database")
    p.set_defaults(handler=cmd_show)

    p = sub.add_parser("view", help="print a user's authorized view")
    p.add_argument("database")
    p.add_argument("user")
    p.add_argument("--tree", action="store_true",
                   help="paper's figure notation instead of XML")
    p.set_defaults(handler=cmd_view)

    p = sub.add_parser("query", help="evaluate XPath on a user's view")
    p.add_argument("database")
    p.add_argument("user")
    p.add_argument("xpath")
    p.set_defaults(handler=cmd_query)

    p = sub.add_parser("update", help="apply an XUpdate script as a user")
    p.add_argument("database")
    p.add_argument("user")
    p.add_argument("xupdate", help="file path or inline XUpdate XML")
    p.add_argument("--strict", action="store_true",
                   help="fail (exit 3) on any denial without committing")
    p.set_defaults(handler=cmd_update)

    p = sub.add_parser("lint",
                       help="report dead/unreachable policy rules (exit 4 "
                            "when any are found)")
    p.add_argument("database")
    p.set_defaults(handler=cmd_lint)

    p = sub.add_parser("recover",
                       help="recover the database -- WAL replay when a log "
                            "directory exists, lenient snapshot load "
                            "otherwise (exit 4 when anything was dropped)")
    p.add_argument("database")
    p.add_argument("--wal", metavar="DIR",
                   help="write-ahead-log directory "
                        "(default: DATABASE + '.wal')")
    p.add_argument("--no-wal", action="store_true",
                   help="ignore any log directory; lenient snapshot "
                        "load only")
    p.add_argument("--write", action="store_true",
                   help="rewrite the file with the recovered state (and "
                        "truncate the log's torn tail)")
    p.set_defaults(handler=cmd_recover)

    p = sub.add_parser("wal", help="write-ahead log maintenance")
    wal_sub = p.add_subparsers(dest="wal_command", required=True)
    p = wal_sub.add_parser("inspect",
                           help="scan segments and checkpoints (exit 4 "
                                "when the log has a torn tail)")
    p.add_argument("directory")
    p.add_argument("--records", action="store_true",
                   help="list every usable record")
    p.set_defaults(handler=cmd_wal_inspect)

    p = sub.add_parser("scrub",
                       help="verify a log directory's record checksums "
                            "and checkpoint digests (exit 4 when "
                            "corruption was found and not repaired)")
    p.add_argument("directory", nargs="?", default="",
                   help="the log directory to scrub")
    p.add_argument("--wal-dir", default="",
                   help="alternative way to name the log directory")
    p.add_argument("--deep", action="store_true",
                   help="recompute every checkpoint's SHA-256, not just "
                        "check its integrity header")
    p.add_argument("--repair-from", metavar="PEERDIR", default="",
                   help="when corruption is found, rebuild this "
                        "directory from the named healthy peer log "
                        "directory (anti-entropy repair)")
    p.set_defaults(handler=cmd_scrub)

    p = sub.add_parser("replica",
                       help="stand up a read replica over a primary's "
                            "write-ahead-log directory (exit 4 when the "
                            "replica is quarantined as diverged)")
    p.add_argument("directory", help="the primary's log directory")
    p.add_argument("--query", nargs=2, metavar=("USER", "XPATH"),
                   help="evaluate XPath on USER's view of the replica")
    p.add_argument("--follow", action="store_true",
                   help="keep tailing the log until interrupted")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll interval while following, seconds")
    p.add_argument("--stats", action="store_true",
                   help="print the replica's health counters")
    p.add_argument("--promote", metavar="NEWDIR",
                   help="promote this replica to a full primary: drain "
                        "the old log, then open a fresh write-ahead log "
                        "at NEWDIR under the next fencing epoch (exit 4 "
                        "when the replica is quarantined)")
    p.set_defaults(handler=cmd_replica)

    p = sub.add_parser("failover-status",
                       help="report a log directory's fencing epoch and "
                            "idempotency ledger (exit 4 when fenced "
                            "stale-epoch records are present)")
    p.add_argument("directory", help="a primary's log directory")
    p.set_defaults(handler=cmd_failover_status)

    p = sub.add_parser("serve",
                       help="serve the database over the framed network "
                            "protocol (write-ahead durable, group commit)")
    p.add_argument("database", help="snapshot file; its '.wal' sibling "
                                    "directory is recovered/attached")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed on startup)")
    p.add_argument("--durability", default="always",
                   help="WAL fsync policy: always | batch(N,ms) | os")
    p.add_argument("--no-group-commit", action="store_true",
                   help="one fsync per commit instead of batched groups")
    p.add_argument("--max-batch", type=int, default=128,
                   help="commit group size ceiling")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="how long a commit group waits for followers")
    p.add_argument("--max-pipeline", type=int, default=32,
                   help="in-flight requests allowed per connection")
    p.add_argument("--workers", type=int, default=8,
                   help="threads for blocking database work")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="admission budget (default: unlimited)")
    p.add_argument("--overload", choices=["block", "shed"], default="block")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-request deadline, seconds")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   help="auto-checkpoint after this many commits")
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser("stress",
                       help="hammer the database through the concurrent "
                            "serving layer (in-memory; the file is never "
                            "modified)")
    p.add_argument("database")
    p.add_argument("user", help="user issuing the write load")
    p.add_argument("xupdate", help="file path or inline XUpdate XML")
    p.add_argument("--reader", help="user issuing the read load "
                                    "(default: USER)")
    p.add_argument("--writers", type=int, default=2)
    p.add_argument("--readers", type=int, default=2)
    p.add_argument("--rounds", type=int, default=5,
                   help="requests per thread")
    p.add_argument("--attempts", type=int, default=8,
                   help="retry budget per write")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="admission budget (default: unlimited)")
    p.add_argument("--overload", choices=["block", "shed"], default="block")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline, seconds")
    p.add_argument("--net", action="store_true",
                   help="drive the load over sockets against a spawned "
                        "'repro serve' subprocess (temp copy of the file)")
    p.add_argument("--durability", default="always",
                   help="[--net] the spawned server's WAL fsync policy")
    p.add_argument("--no-group-commit", action="store_true",
                   help="[--net] disable group commit in the spawned server")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="[--net] the spawned server's group window")
    p.set_defaults(handler=cmd_stress)

    p = sub.add_parser("audit-demo",
                       help="replay one operation and print the decisions")
    p.add_argument("database")
    p.add_argument("user")
    p.add_argument("xupdate")
    p.set_defaults(handler=cmd_audit_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # surface library errors compactly
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
