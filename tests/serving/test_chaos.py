"""The concurrency chaos harness, and the soaks built on it.

Three layers:

1. The harness itself: same seed => identical schedule, identical
   random fault arming; task exceptions are captured, never propagated.
2. Deterministic soaks: 200+ seeded schedules of contending committers
   over one database, asserting serial equivalence (the final document
   equals a serial replay of the committed history, in commit order),
   that every served view matches a from-scratch build, and that no
   unhandled exception escapes.
3. Real-thread soaks through :class:`DatabaseServer`: no lost updates,
   no client-visible ``ConcurrentUpdateError``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import hospital_database
from repro.errors import ConcurrentUpdateError, UpdateAborted
from repro.security import Policy, SecureXMLDatabase, SubjectHierarchy
from repro.security.view import ViewBuilder
from repro.serving import DatabaseServer, RetryPolicy
from repro.testing.faults import ChaosRunner, FaultInjector, InjectedFault, run_threads
from repro.xmltree import XMLDocument, element, serialize, text
from repro.xupdate import Append, UpdateContent, UpdateScript

# ---------------------------------------------------------------------------
# fixtures for the soaks
# ---------------------------------------------------------------------------
USERS = ("w1", "w2", "w3")


def editors_database(users=USERS) -> SecureXMLDatabase:
    """A tiny database where every user may read and write everything
    (the soaks stress concurrency, not the policy)."""
    doc = XMLDocument()
    root = doc.add_root("log")
    element("entry", text("seed")).attach(doc, root)
    subjects = SubjectHierarchy()
    subjects.add_role("editor")
    for user in users:
        subjects.add_user(user, member_of="editor")
    policy = Policy(subjects)
    for privilege in ("read", "update", "insert", "delete"):
        policy.grant(privilege, "//*", "editor")
    return SecureXMLDatabase(doc, subjects, policy)


def committer(db, user, script, committed, tries=10):
    """A cooperative task: begin, apply, commit -- yielding between the
    steps so the scheduler can interleave other commits."""

    def task():
        executor = db.write_executor
        for _ in range(tries):
            txn = db.transaction()
            try:
                view = db.build_view(user)
                yield  # <- another task may commit here...
                result = executor.apply(view, script, strict=False)
                yield  # <- ...or here: this commit may now race
                txn.commit(result.document, result.changes)
            except ConcurrentUpdateError:
                txn.rollback()
                yield
                continue  # governed: re-run against the new generation
            except (UpdateAborted, InjectedFault):
                txn.rollback()  # governed: an injected crash, retry
                yield
                continue
            committed.append((user, script))
            return "committed"
        return "gave up"

    return task


def make_script(index):
    """Task ``index``'s write: one content update plus one append, so
    both commit order and structural growth are observable."""
    return UpdateScript(
        (
            UpdateContent("/log/entry", f"v-{index}"),
            Append("/log", element(f"t{index}")),
        )
    )


def replay(committed) -> SecureXMLDatabase:
    """Apply the committed history serially, in commit order."""
    db = editors_database()
    for user, script in committed:
        db.login(user).execute(script)
    return db


# ---------------------------------------------------------------------------
# the harness itself
# ---------------------------------------------------------------------------
class TestChaosRunnerDeterminism:
    @staticmethod
    def _tasks(trace):
        def make(name, steps):
            def gen():
                for step in range(steps):
                    trace.append((name, step))
                    yield
                return name

            return gen

        return [make("a", 3), make("b", 5), make("c", 2)]

    def test_same_seed_reproduces_the_schedule(self):
        trace1, trace2 = [], []
        report1 = ChaosRunner(seed=123).run(self._tasks(trace1))
        report2 = ChaosRunner(seed=123).run(self._tasks(trace2))
        assert report1.schedule == report2.schedule
        assert trace1 == trace2
        assert report1.results == report2.results == ["a", "b", "c"]
        assert report1.clean

    def test_different_seeds_differ(self):
        baseline = ChaosRunner(seed=0).run(self._tasks([])).schedule
        others = [
            ChaosRunner(seed=seed).run(self._tasks([])).schedule
            for seed in range(1, 6)
        ]
        assert any(schedule != baseline for schedule in others)

    def test_fault_arming_is_part_of_the_seed(self):
        injector = FaultInjector()
        runner = lambda: ChaosRunner(  # noqa: E731
            seed=99,
            kill_points=("before-op", "after-op"),
            kill_rate=0.5,
            injector=injector,
        )
        armed1 = runner().run(self._tasks([])).faults_armed
        armed2 = runner().run(self._tasks([])).faults_armed
        assert armed1 == armed2
        assert armed1  # at rate 0.5 over ~13 steps, some arming happened
        # nothing leaks out of the run
        assert not injector.is_armed("before-op")
        assert not injector.is_armed("after-op")

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosRunner(kill_points=("no-such-point",))
        with pytest.raises(ValueError):
            ChaosRunner(kill_rate=0.5)  # rate without points
        with pytest.raises(ValueError):
            ChaosRunner(kill_points=("before-op",), kill_rate=1.5)


class TestChaosRunnerCapture:
    def test_task_exceptions_are_captured_not_raised(self):
        def fine():
            yield
            return "ok"

        def broken():
            yield
            raise ValueError("task bug")

        report = ChaosRunner(seed=5).run([fine, broken])
        assert report.results[0] == "ok"
        assert isinstance(report.errors[1], ValueError)
        assert not report.clean

    def test_armed_kill_point_fires_into_the_task(self):
        injector = FaultInjector()

        def task():
            yield
            injector.reach("before-op", index=0)
            yield
            return "unreachable"

        report = ChaosRunner(
            seed=1,
            kill_points=("before-op",),
            kill_rate=1.0,
            injector=injector,
        ).run([task])
        assert isinstance(report.errors[0], InjectedFault)
        assert report.results[0] is None
        assert report.faults_armed
        assert not injector.is_armed("before-op")


# ---------------------------------------------------------------------------
# deterministic soaks
# ---------------------------------------------------------------------------
def run_soak(seed, kill_rate=0.0):
    """One seeded schedule of three contending committers; returns
    (db, committed history, report)."""
    db = editors_database()
    committed = []
    tasks = [
        committer(db, user, make_script(i), committed)
        for i, user in enumerate(USERS)
    ]
    runner = ChaosRunner(
        seed=seed,
        kill_points=("before-op", "after-op") if kill_rate else (),
        kill_rate=kill_rate,
    )
    report = runner.run(tasks)
    return db, committed, report


def assert_soak_invariants(db, committed, report):
    # zero unhandled exceptions escaped any task
    assert report.clean, [str(e) for e in report.errors if e]
    # the version counter is exactly the number of successful commits
    assert db.version == len(committed)
    # serial equivalence: the final document is the serial replay of
    # the committed history, in commit order
    assert serialize(db.document) == serialize(replay(committed).document)
    # every served view equals its from-scratch derivation
    for user in USERS:
        served = db.build_view(user)
        fresh = ViewBuilder().build(db.document, db.policy, user)
        assert served.facts() == fresh.facts()
        assert serialize(served.doc) == serialize(fresh.doc)


@pytest.mark.chaos
def test_soak_200_randomized_schedules():
    for seed in range(200):
        db, committed, report = run_soak(seed)
        assert_soak_invariants(db, committed, report)
        assert report.results == ["committed"] * len(USERS)


@pytest.mark.chaos
def test_soak_with_injected_crashes():
    # Crashes mid-schedule: aborted scripts roll back and retry; the
    # invariants hold on every seed.
    for seed in range(40):
        db, committed, report = run_soak(seed, kill_rate=0.2)
        assert_soak_invariants(db, committed, report)


def test_single_seed_soak_is_reproducible():
    db1, committed1, report1 = run_soak(7)
    db2, committed2, report2 = run_soak(7)
    assert report1.schedule == report2.schedule
    assert [u for u, _ in committed1] == [u for u, _ in committed2]
    assert serialize(db1.document) == serialize(db2.document)


@given(seed=st.integers(min_value=0, max_value=100_000), n=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_version_counter_equals_successful_commits(seed, n):
    """N concurrent committers always leave version == commit count."""
    users = tuple(f"w{i + 1}" for i in range(n))
    db = editors_database(users)
    committed = []
    tasks = [
        committer(db, user, make_script(i), committed)
        for i, user in enumerate(users)
    ]
    report = ChaosRunner(seed=seed).run(tasks)
    assert report.clean
    successes = sum(1 for r in report.results if r == "committed")
    assert db.version == successes == len(committed)


# ---------------------------------------------------------------------------
# real-thread soaks through the server
# ---------------------------------------------------------------------------
FAST_RETRY = RetryPolicy(max_attempts=64, base=0.0005, cap=0.01)


@pytest.mark.chaos
def test_thread_soak_no_lost_updates():
    db = hospital_database()
    server = DatabaseServer(db, retry=FAST_RETRY)
    threads, writes = 6, 4

    def worker(i):
        for j in range(writes):
            server.execute(
                "beaufort",
                Append("/patients", element(f"w{i}x{j}", element("diagnosis"))),
            )

    errors = run_threads(worker, threads)
    assert errors == [None] * threads
    # every write landed exactly once: no lost updates
    assert db.version == threads * writes
    xml = server.read_xml("laporte")
    for i in range(threads):
        for j in range(writes):
            assert f"w{i}x{j}" in xml
    stats = server.stats()
    assert stats["commits"] == threads * writes
    assert stats["retry_exhausted"] == 0


@pytest.mark.chaos
def test_two_servers_contend_retry_absorbs_races():
    # Two serving front-ends over one database: their write locks do
    # not know about each other, so commits genuinely race and the
    # backoff schedule must absorb every one of them.
    db = hospital_database()
    servers = [
        DatabaseServer(db, retry=FAST_RETRY),
        DatabaseServer(db, retry=FAST_RETRY),
    ]
    threads, writes = 4, 4

    def worker(i):
        server = servers[i % 2]
        for j in range(writes):
            server.execute(
                "beaufort",
                Append("/patients", element(f"c{i}x{j}", element("diagnosis"))),
            )

    errors = run_threads(worker, threads)
    # zero client-visible ConcurrentUpdateError (or anything else)
    assert errors == [None] * threads
    assert db.version == threads * writes
    total = lambda key: sum(s.stats()[key] for s in servers)  # noqa: E731
    assert total("commits") == threads * writes
    assert total("retry_exhausted") == 0


@pytest.mark.chaos
def test_thread_soak_readers_never_fail_alongside_writers():
    db = hospital_database()
    server = DatabaseServer(db, retry=FAST_RETRY)
    threads = 6

    def worker(i):
        if i % 2 == 0:
            for j in range(3):
                server.execute(
                    "beaufort",
                    Append("/patients", element(f"r{i}x{j}", element("diagnosis"))),
                )
        else:
            for _ in range(10):
                assert "<patients>" in server.read_xml("laporte")
                assert server.query("richard", "count(//diagnosis)")

    errors = run_threads(worker, threads)
    assert errors == [None] * threads
    assert db.version == 3 * 3  # three writer threads, three writes each
