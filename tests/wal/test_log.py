"""The write-ahead log core: format, torn tails, rotation, retention."""

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WalCorruptionError, WalWriteError
from repro.testing.faults import InjectedFault, inject
from repro.wal import (
    FsyncPolicy,
    WriteAheadLog,
    list_checkpoints,
    recover,
    scan_directory,
    scan_segment,
)
from repro.wal.log import MAGIC

from .conftest import append_script, editors_database


def segment_files(directory):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("segment-")
    )


class TestFsyncPolicy:
    def test_always_and_os(self):
        assert FsyncPolicy.parse("always").kind == "always"
        assert FsyncPolicy.parse("os").kind == "os"

    def test_batch(self):
        policy = FsyncPolicy.parse("batch(8, 250)")
        assert policy.kind == "batch"
        assert policy.batch_records == 8
        assert policy.batch_ms == 250.0

    def test_str_round_trips(self):
        for spec in ("always", "os", "batch(8,250)"):
            assert FsyncPolicy.parse(str(FsyncPolicy.parse(spec))) == \
                FsyncPolicy.parse(spec)

    def test_instance_passthrough(self):
        policy = FsyncPolicy.parse("os")
        assert FsyncPolicy.parse(policy) is policy

    @pytest.mark.parametrize("bad", ["", "sometimes", "batch(0,5)", "batch(1)"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            FsyncPolicy.parse(bad)

    @given(
        policy=st.one_of(
            st.just(FsyncPolicy("always")),
            st.just(FsyncPolicy("os")),
            st.builds(
                FsyncPolicy,
                st.just("batch"),
                st.integers(min_value=1, max_value=10**9),
                st.one_of(
                    st.integers(min_value=0, max_value=99_999).map(float),
                    st.integers(min_value=0, max_value=99_999).map(
                        lambda n: n + 0.5
                    ),
                ),
            ),
        )
    )
    def test_parse_str_round_trips_every_shape(self, policy):
        """``parse(str(policy)) == policy`` over all three shapes --
        the property that makes the policy safe to persist and echo
        through configuration."""
        assert FsyncPolicy.parse(str(policy)) == policy


class TestAppendScan:
    def test_round_trip(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            for i in range(5):
                assert wal.append({"kind": "update", "n": i}) == i + 1
        scan = scan_directory(wal_dir)
        assert scan.torn is None
        assert [r.lsn for r in scan.records] == [1, 2, 3, 4, 5]
        assert [r.payload["n"] for r in scan.records] == list(range(5))
        assert scan.last_lsn == 5

    def test_lsn_is_assigned_by_the_log(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.append({"kind": "update", "lsn": 999})
        (record,) = scan_directory(wal_dir).records
        assert record.lsn == 1

    def test_reopen_resumes_after_the_tail(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.append({"kind": "update"})
            wal.append({"kind": "update"})
        with WriteAheadLog(wal_dir) as wal:
            assert wal.lsn == 2
            assert wal.append({"kind": "update"}) == 3
        assert scan_directory(wal_dir).last_lsn == 3

    def test_empty_directory_scans_clean(self, tmp_path):
        scan = scan_directory(str(tmp_path))
        assert scan.records == [] and scan.torn is None


class TestTornTails:
    def make_log(self, wal_dir, records=4):
        with WriteAheadLog(wal_dir) as wal:
            for i in range(records):
                wal.append({"kind": "update", "pad": "x" * 40, "n": i})
        (path,) = segment_files(wal_dir)
        return path

    def test_every_truncation_yields_a_committed_prefix(self, wal_dir):
        """Cut the segment at *every* byte length: the scan must return
        a prefix of the original records -- never garbage, never an
        exception."""
        path = self.make_log(wal_dir)
        original = [r.payload for r in scan_segment(path)[0]]
        data = open(path, "rb").read()
        boundaries = 0
        for cut in range(len(data)):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            records, torn = scan_segment(path)
            payloads = [r.payload for r in records]
            assert payloads == original[: len(payloads)]
            if torn is None:
                boundaries += 1  # cut landed exactly on a record boundary
            else:
                assert torn.offset + torn.dropped_bytes == cut
        # magic boundary + one per record except we never reach full length
        assert boundaries == len(original)

    def test_crc_mismatch_ends_the_log(self, wal_dir):
        path = self.make_log(wal_dir)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a byte inside the last payload
        open(path, "wb").write(bytes(data))
        records, torn = scan_segment(path)
        assert len(records) == 3
        assert torn is not None and "CRC mismatch" in torn.reason

    def test_bad_magic(self, wal_dir):
        path = self.make_log(wal_dir)
        data = open(path, "rb").read()
        open(path, "wb").write(b"NOTAWAL!!\n" + data[len(MAGIC):])
        records, torn = scan_segment(path)
        assert records == []
        assert torn is not None and torn.offset == 0

    def test_damage_cuts_everything_after_it(self, wal_dir):
        """Records *after* a torn record are dropped even if their own
        bytes are intact -- the lsn chain is broken."""
        path = self.make_log(wal_dir)
        clean = scan_segment(path)[0]
        data = bytearray(open(path, "rb").read())
        data[clean[1].offset + 9] ^= 0xFF  # corrupt record 2 of 4
        open(path, "wb").write(bytes(data))
        records, torn = scan_segment(path)
        assert [r.lsn for r in records] == [1]
        assert torn is not None and torn.offset == clean[1].offset

    def test_reopen_truncates_a_torn_tail(self, wal_dir):
        path = self.make_log(wal_dir)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)
        with WriteAheadLog(wal_dir) as wal:
            assert wal.stats["torn_tail_repaired"] == 1
            assert wal.lsn == 3
            wal.append({"kind": "update", "n": "after-crash"})
        scan = scan_directory(wal_dir)
        assert scan.torn is None
        assert scan.last_lsn == 4

    def test_dropped_segment_refuses_blind_reopen(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=64) as wal:
            for i in range(6):
                wal.append({"kind": "update", "pad": "x" * 40, "n": i})
        files = segment_files(wal_dir)
        assert len(files) > 2
        os.unlink(files[1])  # mid-log hole: not a torn tail
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(wal_dir)


class TestKillPoints:
    def test_before_append_leaves_the_log_clean(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.append({"kind": "update"})
        with inject("wal-before-append"):
            with pytest.raises(InjectedFault):
                wal.append({"kind": "update"})
        assert wal.failed is None  # nothing written, nothing torn
        assert wal.append({"kind": "update"}) == 2

    def test_mid_record_poisons_the_writer(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.append({"kind": "update", "pad": "x" * 64})
        with inject("wal-mid-record"):
            with pytest.raises(InjectedFault):
                wal.append({"kind": "update", "pad": "x" * 64})
        assert wal.failed is not None
        with pytest.raises(WalWriteError):
            wal.append({"kind": "update"})
        wal.close()
        # The torn bytes are really on disk; a reopen cuts them off.
        reopened = WriteAheadLog(wal_dir)
        assert reopened.stats["torn_tail_repaired"] == 1
        assert reopened.lsn == 1
        reopened.close()

    def test_closed_log_refuses_appends(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.close()
        with pytest.raises(WalWriteError):
            wal.append({"kind": "update"})


class TestFsyncAccounting:
    def test_always_fsyncs_every_append(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            for _ in range(3):
                wal.append({"kind": "update"})
            assert wal.stats["fsyncs"] == 3
            assert wal.stats["deferred_fsyncs"] == 0

    def test_os_never_fsyncs(self, wal_dir):
        with WriteAheadLog(wal_dir, fsync="os") as wal:
            for _ in range(3):
                wal.append({"kind": "update"})
            assert wal.stats["fsyncs"] == 0

    def test_batch_count_trigger(self, wal_dir):
        clock = [0.0]
        wal = WriteAheadLog(
            wal_dir, fsync="batch(3,100000)", clock=lambda: clock[0]
        )
        wal.append({"kind": "update"})
        wal.append({"kind": "update"})
        assert wal.stats["fsyncs"] == 0
        assert wal.stats["deferred_fsyncs"] == 2
        wal.append({"kind": "update"})  # third pending: due
        assert wal.stats["fsyncs"] == 1
        wal.close()

    def test_batch_time_trigger(self, wal_dir):
        clock = [0.0]
        wal = WriteAheadLog(
            wal_dir, fsync="batch(100,50)", clock=lambda: clock[0]
        )
        wal.append({"kind": "update"})
        assert wal.stats["fsyncs"] == 0
        clock[0] += 0.06  # 60ms > 50ms window
        wal.append({"kind": "update"})
        assert wal.stats["fsyncs"] == 1
        wal.close()

    def test_sync_flushes_pending(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="os")
        wal.append({"kind": "update"})
        wal.sync()
        assert wal.stats["fsyncs"] == 1
        wal.close()


class TestRotationAndRetention:
    def test_rotation_produces_contiguous_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=96) as wal:
            for i in range(10):
                wal.append({"kind": "update", "pad": "x" * 48, "n": i})
            assert wal.stats["rotations"] >= 2
        scan = scan_directory(wal_dir)
        assert scan.torn is None
        assert [r.lsn for r in scan.records] == list(range(1, 11))
        assert len(scan.segments) == wal.stats["rotations"] + 1

    def test_checkpoint_retention(self, wal_dir):
        db = editors_database()
        wal = WriteAheadLog(wal_dir, retain_checkpoints=2)
        db.attach_wal(wal)
        paths = []
        for round_no in range(4):
            db.login("w1").execute(append_script(f"r{round_no}"))
            paths.append(wal.checkpoint(db))
        kept = list_checkpoints(wal_dir)
        assert [c.path for c in kept] == paths[-2:]
        assert wal.stats["checkpoints"] == 4
        # The pruned directory must still recover to the live state.
        wal.close()
        result = recover(wal_dir)
        assert result.report.clean
        assert result.version == db.version

    def test_retain_must_be_positive(self, wal_dir):
        with pytest.raises(ValueError):
            WriteAheadLog(wal_dir, retain_checkpoints=0)

    def test_checkpoint_mid_snapshot_leaves_no_temp(self, wal_dir):
        db = editors_database()
        wal = WriteAheadLog(wal_dir)
        db.attach_wal(wal)
        wal.checkpoint(db)
        db.login("w1").execute(append_script("a"))
        with inject("checkpoint-mid-snapshot"):
            with pytest.raises(InjectedFault):
                wal.checkpoint(db)
        assert not [n for n in os.listdir(wal_dir) if n.endswith(".tmp")]
        assert len(list_checkpoints(wal_dir)) == 1
        wal.close()
        result = recover(wal_dir)
        assert result.report.clean
        assert result.version == db.version
