"""Length-prefixed JSON framing for the wire protocol.

One frame is a 4-byte big-endian unsigned length prefix followed by
exactly that many bytes of UTF-8 JSON encoding one object.  TCP gives
a byte stream, not messages: the prefix is what turns arbitrary
``recv`` splits and coalesces back into whole requests, and
:class:`FrameDecoder` is the incremental state machine that does it --
feed it whatever chunks arrive, get back whole decoded frames.

The length prefix is also the protection against hostile or broken
peers: a prefix announcing more than ``max_frame`` bytes is rejected
*before* any of those bytes are buffered
(:class:`~repro.errors.FrameTooLarge`), so a bad peer cannot balloon
the server's memory, and a frame whose bytes are not valid UTF-8 JSON
of one object raises :class:`~repro.errors.ProtocolError` instead of
wedging the decoder.  Both are unrecoverable for the connection -- the
stream offset can no longer be trusted -- which is why the server
answers with one final error frame and closes.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List

from ..errors import FrameTooLarge, ProtocolError

__all__ = ["DEFAULT_MAX_FRAME", "HEADER", "FrameDecoder", "encode_frame"]

#: Default ceiling on one frame's JSON body, in bytes.  Big enough for
#: any realistic document serialization; small enough that a corrupt
#: or hostile length prefix cannot make the peer buffer gigabytes.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: The 4-byte big-endian unsigned length prefix.
HEADER = struct.Struct(">I")


def encode_frame(
    payload: Dict[str, Any], max_frame: int = DEFAULT_MAX_FRAME
) -> bytes:
    """One JSON object as a length-prefixed wire frame.

    Raises:
        FrameTooLarge: the encoded body exceeds ``max_frame`` -- the
            frame the peer would refuse is never sent.
        ProtocolError: the payload is not JSON-encodable.
    """
    try:
        body = json.dumps(
            payload, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame payload is not JSON-encodable: {exc}")
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte "
            f"maximum",
            announced=len(body),
            limit=max_frame,
        )
    return HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunk stream.

    Feed raw bytes exactly as the transport delivers them -- split
    mid-prefix, mid-body, or with several frames coalesced into one
    chunk -- and collect whole decoded objects:

        decoder = FrameDecoder()
        for chunk in stream:
            for frame in decoder.feed(chunk):
                handle(frame)

    A decoder that raised is poisoned: the stream offset is
    untrustworthy after a violation, so every later :meth:`feed`
    re-raises the same error rather than resynchronizing on garbage.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < 1:
            raise ValueError("max_frame must be >= 1")
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._error: "ProtocolError | None" = None
        #: Whole frames decoded over this decoder's lifetime.
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Buffer ``data`` and return every frame it completes.

        Raises:
            FrameTooLarge: a length prefix announced a body beyond
                ``max_frame`` (raised before buffering the body).
            ProtocolError: a complete body was not one UTF-8 JSON
                object, or the decoder already failed earlier.
        """
        if self._error is not None:
            raise self._error
        self._buffer += data
        frames: List[Dict[str, Any]] = []
        try:
            while True:
                if len(self._buffer) < HEADER.size:
                    break
                (length,) = HEADER.unpack_from(self._buffer)
                if length > self.max_frame:
                    raise FrameTooLarge(
                        f"peer announced a {length}-byte frame; this "
                        f"side accepts at most {self.max_frame}",
                        announced=length,
                        limit=self.max_frame,
                    )
                if len(self._buffer) < HEADER.size + length:
                    break
                body = bytes(self._buffer[HEADER.size:HEADER.size + length])
                del self._buffer[:HEADER.size + length]
                frames.append(self._decode(body))
        except ProtocolError as exc:
            self._error = exc
            raise
        return frames

    def _decode(self, body: bytes) -> Dict[str, Any]:
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                f"frame body is not UTF-8 JSON: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise ProtocolError(
                f"frame must encode a JSON object, got {type(obj).__name__}"
            )
        self.frames_decoded += 1
        return obj
