"""Unit tests for detached tree fragments (the paper's TREE parameter)."""

import pytest

from repro.xmltree import (
    Fragment,
    NodeKind,
    XMLDocument,
    element,
    fragment_from_subtree,
    parse_xml,
    serialize,
    text,
)


class TestBuilders:
    def test_element_with_string_children_become_text(self):
        frag = element("a", "hello", element("b"))
        assert frag.children[0].kind is NodeKind.TEXT
        assert frag.children[1].kind is NodeKind.ELEMENT

    def test_text_fragment(self):
        frag = text("v")
        assert frag.kind is NodeKind.TEXT
        assert frag.label == "v"

    def test_text_cannot_have_children(self):
        with pytest.raises(ValueError):
            Fragment(NodeKind.TEXT, "v", (), (text("x"),))

    def test_document_kind_rejected(self):
        with pytest.raises(ValueError):
            Fragment(NodeKind.DOCUMENT, "/")

    def test_attributes_sorted_deterministically(self):
        frag = element("a", attributes={"z": "1", "b": "2"})
        assert frag.attributes == (("b", "2"), ("z", "1"))

    def test_size_counts_attributes(self):
        frag = element("a", element("b", "t"), attributes={"id": "1"})
        assert frag.size() == 4

    def test_labels_are_preorder(self):
        frag = element("a", element("b", "t"), element("c"))
        assert list(frag.labels()) == ["a", "b", "t", "c"]


class TestAttach:
    def test_attach_appends_as_last_child(self):
        doc = parse_xml("<r><x/></r>")
        element("y", "v").attach(doc, doc.root)
        assert serialize(doc) == "<r><x/><y>v</y></r>"

    def test_attach_before(self):
        doc = parse_xml("<r><x/></r>")
        x = doc.children(doc.root)[0]
        element("y").attach_before(doc, x)
        assert serialize(doc) == "<r><y/><x/></r>"

    def test_attach_after(self):
        doc = parse_xml("<r><x/><z/></r>")
        x = doc.children(doc.root)[0]
        element("y").attach_after(doc, x)
        assert serialize(doc) == "<r><x/><y/><z/></r>"

    def test_attach_returns_new_root_id(self):
        doc = parse_xml("<r/>")
        nid = element("y", element("z")).attach(doc, doc.root)
        assert doc.label(nid) == "y"
        assert [doc.label(c) for c in doc.children(nid)] == ["z"]

    def test_attach_installs_attributes(self):
        doc = parse_xml("<r/>")
        nid = element("y", attributes={"id": "7"}).attach(doc, doc.root)
        assert doc.attribute_value(nid, "id") == "7"

    def test_fragment_reusable_across_documents(self):
        frag = element("y", "v")
        doc1 = parse_xml("<r/>")
        doc2 = parse_xml("<s/>")
        frag.attach(doc1, doc1.root)
        frag.attach(doc2, doc2.root)
        assert serialize(doc1) == "<r><y>v</y></r>"
        assert serialize(doc2) == "<s><y>v</y></s>"


class TestFromSubtree:
    def test_detach_copies_subtree(self):
        doc = parse_xml('<r><a id="1"><b>t</b></a></r>')
        a = doc.children(doc.root)[0]
        frag = fragment_from_subtree(doc, a)
        assert frag.label == "a"
        assert frag.attributes == (("id", "1"),)
        assert frag.children[0].label == "b"

    def test_detached_fragment_is_independent(self):
        doc = parse_xml("<r><a><b>t</b></a></r>")
        a = doc.children(doc.root)[0]
        frag = fragment_from_subtree(doc, a)
        doc.remove_subtree(a)
        other = parse_xml("<s/>")
        frag.attach(other, other.root)
        assert serialize(other) == "<s><a><b>t</b></a></s>"

    def test_document_node_rejected(self):
        doc = parse_xml("<r/>")
        with pytest.raises(ValueError):
            fragment_from_subtree(doc, doc.document_node.nid)
