"""The serving layer's durability integration (ISSUE 5): open-with-
recovery, checkpointing both durable units, and the WAL degrade rung."""

import os

import pytest

from repro.errors import WalWriteError
from repro.serving import DatabaseServer
from repro.storage import backup_path, load_from_file, save_to_file
from repro.testing.faults import InjectedFault, inject
from repro.wal import WriteAheadLog, list_checkpoints, recover, scan_directory

from tests.wal.conftest import append_script, editors_database, state_of


@pytest.fixture
def db_path(tmp_path):
    path = str(tmp_path / "db.xml")
    save_to_file(editors_database(), path)
    return path


class TestOpen:
    def test_open_fresh_snapshot_cuts_an_initial_checkpoint(self, db_path):
        server = DatabaseServer.open(db_path)
        wal_dir = db_path + ".wal"
        assert server.database.wal is not None
        assert len(list_checkpoints(wal_dir)) == 1
        stats = server.stats()
        assert stats["wal_attached"] is True
        assert stats["wal_fsync_policy"] == "always"

    def test_commits_survive_reopen(self, db_path):
        server = DatabaseServer.open(db_path)
        server.execute("w1", append_script("a"))
        expected = state_of(server.database)
        server.database.detach_wal().close()
        # Note: db_path itself was never re-saved -- the log is
        # authoritative over the stale snapshot.
        reopened = DatabaseServer.open(db_path)
        assert state_of(reopened.database) == expected

    def test_open_recovers_a_torn_log(self, db_path):
        server = DatabaseServer.open(db_path)
        server.execute("w1", append_script("a"))
        expected = state_of(server.database)
        with inject("wal-mid-record"):
            with pytest.raises(InjectedFault):
                server.execute("w2", append_script("lost"))
        server.database.wal.close()  # simulate the process dying here
        reopened = DatabaseServer.open(db_path)
        assert state_of(reopened.database) == expected
        assert scan_directory(db_path + ".wal").torn is None  # repaired
        # and the reopened server keeps committing durably
        reopened.execute("w2", append_script("b"))
        assert reopened.database.version == expected["version"] + 1

    def test_open_honors_durability_spec(self, db_path):
        server = DatabaseServer.open(db_path, durability="batch(4,1000)")
        assert str(server.database.wal.fsync_policy) == "batch(4,1000)"

    def test_open_missing_everything_fails(self, tmp_path):
        from repro.errors import StorageError

        with pytest.raises((StorageError, OSError)):
            DatabaseServer.open(str(tmp_path / "nope.xml"))


class TestCheckpoint:
    def test_checkpoint_advances_both_durable_units(self, db_path):
        server = DatabaseServer.open(db_path, backup_count=2)
        server.execute("w1", append_script("a"))
        before = open(db_path, encoding="utf-8").read()
        server.checkpoint()
        # the initial cut at open() plus this manual one
        assert server.stats()["checkpoints"] == 2
        assert len(list_checkpoints(db_path + ".wal")) == 2
        assert open(db_path, encoding="utf-8").read() != before
        assert open(backup_path(db_path), encoding="utf-8").read() == before
        assert "<a>" in open(db_path, encoding="utf-8").read()

    def test_auto_checkpoint_every_n_commits(self, db_path):
        server = DatabaseServer.open(db_path, checkpoint_every=3)
        for i in range(7):
            server.execute("w1", append_script(f"e{i}"))
        # commits 3 and 6 crossed the threshold, plus the initial cut
        assert server.stats()["checkpoints"] == 3
        assert "<e2>" in open(db_path, encoding="utf-8").read()

    def test_auto_checkpoint_failure_never_fails_the_write(self, db_path):
        server = DatabaseServer.open(db_path, checkpoint_every=1)
        with inject("checkpoint-mid-snapshot"):
            result = server.execute("w1", append_script("a"))
        assert result is not None
        stats = server.stats()
        assert stats["commits"] == 1
        assert stats["checkpoint_failures"] == 1
        assert server.database.version == 1

    def test_checkpoint_every_validated(self, db_path):
        with pytest.raises(ValueError):
            DatabaseServer.open(db_path, checkpoint_every=0)


class TestDegradeLadder:
    def make_failing_server(self, tmp_path, threshold):
        db = editors_database()
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        server = DatabaseServer(
            db, wal=wal, wal_failure_threshold=threshold
        )
        wal.checkpoint(db)
        wal._handle.close()  # every further append now fails
        return server

    def test_wal_errors_below_threshold_propagate(self, tmp_path):
        server = self.make_failing_server(tmp_path, threshold=3)
        for _ in range(2):
            with pytest.raises(WalWriteError):
                server.execute("w1", append_script("x"))
        stats = server.stats()
        assert stats["wal_errors"] == 2
        assert stats["wal_degraded"] == 0
        assert stats["wal_attached"] is True
        assert server.database.version == 0  # nothing installed

    def test_threshold_detaches_the_log_and_the_write_succeeds(
        self, tmp_path
    ):
        server = self.make_failing_server(tmp_path, threshold=3)
        failures = 0
        for _ in range(3):
            try:
                server.execute("w1", append_script("x"))
            except WalWriteError:
                failures += 1
        assert failures == 2  # the third attempt degraded and committed
        stats = server.stats()
        assert stats["wal_degraded"] == 1
        assert stats["wal_attached"] is False
        assert server.database.version == 1
        # snapshot-only from here on: further writes just work
        server.execute("w2", append_script("y"))
        assert server.database.version == 2

    def test_wal_failures_feed_the_breaker(self, tmp_path):
        from repro.serving import CircuitBreaker

        db = editors_database()
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        breaker = CircuitBreaker(failure_threshold=1)
        server = DatabaseServer(
            db, wal=wal, wal_failure_threshold=10, breaker=breaker
        )
        wal.checkpoint(db)
        wal._handle.close()
        with pytest.raises(WalWriteError):
            server.execute("w1", append_script("x"))
        assert breaker.state == "open"
        assert breaker.stats["trips"] == 1

    def test_a_successful_commit_resets_the_consecutive_count(self, tmp_path):
        db = editors_database()
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        server = DatabaseServer(db, wal=wal, wal_failure_threshold=2)
        wal.checkpoint(db)
        with inject("wal-mid-record"):
            with pytest.raises((WalWriteError, InjectedFault)):
                server.execute("w1", append_script("x"))
        # The poisoned log heals by reopening: simulate by clearing the
        # failure mark after truncating the torn tail.
        wal.close()
        db.detach_wal()
        db.attach_wal(WriteAheadLog(str(tmp_path / "db.wal")))
        server.execute("w1", append_script("y"))
        assert server._wal_consecutive_failures == 0
        assert server.stats()["wal_degraded"] == 0

    def test_stats_surface_wal_counters(self, tmp_path):
        db = editors_database()
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        server = DatabaseServer(db, wal=wal)
        wal.checkpoint(db)
        server.execute("w1", append_script("a"))
        stats = server.stats()
        assert stats["wal_appends"] >= 2  # checkpoint record + commit
        assert stats["wal_lsn"] == wal.lsn
        assert stats["wal_checkpoints"] == 1


class TestEndToEndDurability:
    def test_kill_mid_commit_then_reopen_loses_nothing_acked(self, db_path):
        """The headline property, through the serving layer: every
        acknowledged commit survives a crash + reopen."""
        server = DatabaseServer.open(db_path)
        acked = []
        for i in range(6):
            if i == 3:
                with inject("wal-mid-record"):
                    with pytest.raises(InjectedFault):
                        server.execute("w1", append_script("doomed"))
                server.database.wal.close()
                server = DatabaseServer.open(db_path)
            server.execute("w1", append_script(f"ok{i}"))
            acked.append(f"ok{i}")
        server.database.detach_wal().close()
        result = recover(db_path + ".wal")
        assert result.report.clean
        from repro.xmltree.serializer import serialize

        final = serialize(result.database.document)
        for label in acked:
            assert f"<{label}>" in final
        assert "<doomed>" not in final
