"""Replica: seeding, following, catch-up, divergence, read-only serving."""

import pytest

from repro.errors import ReadOnlyReplica, ReplicaDiverged
from repro.replication import Replica
from repro.testing.faults import InjectedFault, faults
from repro.wal import WriteAheadLog

from .conftest import USERS, append_script, editors_database, state_bytes


@pytest.fixture(autouse=True)
def clean_injector():
    faults.reset()
    yield
    faults.reset()


def assert_converged(replica, primary):
    """The convergence contract: exact version, byte-identical state,
    and every user's authorized view equal to the primary's."""
    assert replica.version == primary.version
    assert state_bytes(replica.database) == state_bytes(primary)
    for user in USERS:
        assert (
            replica.read_xml(user) == primary.login(user).read_xml()
        )


class TestSeedingAndFollowing:
    def test_seed_from_checkpoint_matches_primary(self, primary):
        replica = Replica(primary.wal.directory)
        assert replica.state == "following"
        assert_converged(replica, primary)

    def test_seed_covers_commits_after_the_checkpoint(self, primary):
        primary.login("w1").execute(append_script("a"))
        primary.login("w2").execute(append_script("b"))
        replica = Replica(primary.wal.directory)
        assert_converged(replica, primary)

    def test_poll_applies_new_commits(self, primary):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        assert replica.lag() == 1
        advanced = replica.poll()
        assert advanced == 1
        assert replica.lag() == 0
        assert_converged(replica, primary)

    def test_admin_changes_replicate_enforcement(self, primary):
        replica = Replica(primary.wal.directory)
        # A policy change on the primary: w2 loses sight of <entry>.
        primary.policy.deny("read", "/log/entry", "w2")
        primary.login("w1").execute(append_script("a"))
        replica.sync()
        assert_converged(replica, primary)
        assert "entry" not in replica.read_xml("w2")
        assert "entry" in replica.read_xml("w1")

    def test_restart_resumes_from_durable_position(self, primary):
        first = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        first.sync()
        # The replica process dies; a fresh one re-seeds from the log
        # alone and stands exactly where the history says.
        second = Replica(primary.wal.directory)
        assert_converged(second, primary)
        assert second.applied_lsn == first.applied_lsn

    def test_sync_drains_a_long_backlog(self, primary):
        replica = Replica(primary.wal.directory)
        for i in range(10):
            primary.login("w1").execute(append_script(f"b{i}"))
        assert replica.sync() == 10
        assert_converged(replica, primary)


class TestReadOnlyServing:
    def test_writes_on_the_replica_are_refused(self, primary):
        replica = Replica(primary.wal.directory)
        with pytest.raises(ReadOnlyReplica):
            replica.database.login("w1").execute(append_script("x"))
        assert replica.database.read_only
        # The refusal forked nothing: the replica still follows.
        primary.login("w1").execute(append_script("a"))
        replica.sync()
        assert_converged(replica, primary)

    def test_serve_returns_the_exact_version(self, primary):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        replica.sync()
        xml, version = replica.serve("w1", lambda s: s.read_xml())
        assert version == primary.version
        assert "entry" in xml

    def test_view_cache_is_shared_across_reads(self, primary):
        replica = Replica(primary.wal.directory)
        replica.read_xml("w1")
        replica.query("w1", "count(/log/*)")
        stats = replica.stats()
        assert stats["reads"] == 2

    def test_stats_expose_replica_health(self, primary):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        replica.sync()
        stats = replica.stats()
        assert stats["state"] == "following"
        assert stats["records_applied"] == 1
        assert stats["catchups"] == 1
        assert stats["divergences"] == 0
        assert stats["applied_lsn"] == replica.applied_lsn
        assert stats["read_only"] is True


class TestCatchUp:
    def test_pruned_stream_position_falls_back_to_checkpoint(
        self, tmp_path
    ):
        wal_dir = str(tmp_path / "prune.wal")
        db = editors_database()
        wal = WriteAheadLog(wal_dir, retain_checkpoints=1, segment_bytes=128)
        db.attach_wal(wal)
        wal.checkpoint(db)
        replica = Replica(wal_dir)
        # The replica sleeps through several checkpoint generations:
        # its stream position is pruned off the disk.
        for i in range(6):
            db.login("w1").execute(append_script(f"p{i}"))
        wal.checkpoint(db)
        for i in range(3):
            db.login("w1").execute(append_script(f"q{i}"))
        wal.checkpoint(db)
        replica.sync()
        assert replica.stats()["stream_gaps"] >= 1
        assert replica.stats()["catchups"] >= 2
        assert_converged(replica, db)

    def test_catch_up_is_read_only_on_the_primarys_files(self, primary):
        import os

        wal_dir = primary.wal.directory
        before = {
            name: os.path.getsize(os.path.join(wal_dir, name))
            for name in os.listdir(wal_dir)
        }
        replica = Replica(wal_dir)
        replica.catch_up()
        after = {
            name: os.path.getsize(os.path.join(wal_dir, name))
            for name in os.listdir(wal_dir)
        }
        assert before == after


class TestKillPoints:
    def test_kill_before_apply_loses_nothing_acknowledged(self, primary):
        replica = Replica(primary.wal.directory)
        for label in ("a", "b", "c"):
            primary.login("w1").execute(append_script(label))
        faults.arm("replica-before-apply", after=1)
        with pytest.raises(InjectedFault):
            replica.poll()
        # The first record landed before the kill; the killed one and
        # its successors did not -- and nothing was half-applied.
        assert replica.version == 1
        assert replica.state == "following"
        replica.sync()  # the retry drains the rest
        assert_converged(replica, primary)

    def test_kill_mid_replay_keeps_the_applied_record(self, primary):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        faults.arm("replica-mid-replay")
        with pytest.raises(InjectedFault):
            replica.poll()
        # mid-replay fires *after* the apply: the record is kept and
        # acknowledged, so the retry must not re-apply it.
        assert replica.version == 1
        replica.sync()
        assert_converged(replica, primary)

    def test_kill_in_the_stream_leaves_the_cursor_consistent(
        self, primary
    ):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        faults.arm("stream-truncated")
        with pytest.raises(InjectedFault):
            replica.poll()
        replica.sync()
        assert_converged(replica, primary)

    def test_restart_after_kill_converges(self, primary):
        replica = Replica(primary.wal.directory)
        for label in ("a", "b"):
            primary.login("w1").execute(append_script(label))
        faults.arm("replica-before-apply")
        with pytest.raises(InjectedFault):
            replica.poll()
        # The process dies instead of retrying in place: a fresh
        # replica over the same directory converges all the same.
        reborn = Replica(primary.wal.directory)
        assert_converged(reborn, primary)


class TestDivergence:
    def rot(self, replica):
        """Simulate local bit-rot: grow the replica's document behind
        the secured path's back (no version bump, no log record)."""
        from repro.xmltree import NodeKind

        doc = replica.database.document
        doc.append_child(doc.root, NodeKind.ELEMENT, "rot")

    def test_checkpoint_digest_catches_silent_divergence(self, primary):
        replica = Replica(primary.wal.directory)
        self.rot(replica)
        primary.login("w1").execute(append_script("a"))
        primary.wal.checkpoint(primary)
        with pytest.raises(ReplicaDiverged) as excinfo:
            replica.sync()
        assert excinfo.value.expected != excinfo.value.actual
        assert replica.quarantined
        assert replica.stats()["divergences"] == 1

    def test_quarantined_replica_never_serves(self, primary):
        replica = Replica(primary.wal.directory)
        self.rot(replica)
        primary.wal.checkpoint(primary)
        with pytest.raises(ReplicaDiverged):
            replica.sync()
        with pytest.raises(ReplicaDiverged):
            replica.read_xml("w1")
        with pytest.raises(ReplicaDiverged):
            replica.serve("w1", lambda s: s.view())
        with pytest.raises(ReplicaDiverged):
            replica.poll()

    def test_catch_up_reseeds_a_quarantined_replica(self, primary):
        replica = Replica(primary.wal.directory)
        self.rot(replica)
        primary.login("w1").execute(append_script("a"))
        primary.wal.checkpoint(primary)
        with pytest.raises(ReplicaDiverged):
            replica.sync()
        replica.catch_up()  # the only way back into service
        assert replica.state == "following"
        assert_converged(replica, primary)
        assert "rot" not in replica.read_xml("w1")

    def test_forged_version_stamp_quarantines(self, primary):
        replica = Replica(primary.wal.directory)
        # A record stamped with an impossible version: the recovery
        # invariant (stamped == successor) fails before any apply.
        primary.wal.append(
            {"kind": "admin", "version": 50, "op": "add_user",
             "name": "evil", "member_of": None}
        )
        with pytest.raises(ReplicaDiverged):
            replica.sync()
        assert replica.quarantined

    def test_clean_checkpoints_count_as_verified(self, primary):
        replica = Replica(primary.wal.directory)
        primary.login("w1").execute(append_script("a"))
        primary.wal.checkpoint(primary)
        replica.sync()
        assert replica.stats()["divergence_checks"] >= 1
        assert replica.stats()["divergences"] == 0
        assert not replica.quarantined
