"""Quickstart: build a secure XML database and look at it as three users.

Reproduces the paper's running example end to end:

1. parse the medical-records document of figure 2;
2. declare the subject hierarchy of figure 3;
3. install the 12-rule policy of equation 13;
4. log in as a secretary, a patient and an epidemiologist, and print
   the views of section 4.4.1 -- note the RESTRICTED labels;
5. perform one access-controlled update as a doctor.

Run with::

    python examples/quickstart.py
"""

from repro import SecureXMLDatabase, UpdateContent
from repro.core import MEDICAL_XML, PAPER_POLICY_RULES


def build_database() -> SecureXMLDatabase:
    """Assemble the paper's database using only the public API."""
    db = SecureXMLDatabase.from_xml(MEDICAL_XML)

    # Figure 3: the staff tree and the patient tree.
    db.subjects.add_role("staff")
    db.subjects.add_role("secretary", member_of="staff")
    db.subjects.add_role("doctor", member_of="staff")
    db.subjects.add_role("epidemiologist", member_of="staff")
    db.subjects.add_role("patient")
    db.subjects.add_user("beaufort", member_of="secretary")
    db.subjects.add_user("laporte", member_of="doctor")
    db.subjects.add_user("richard", member_of="epidemiologist")
    db.subjects.add_user("robert", member_of="patient")
    db.subjects.add_user("franck", member_of="patient")

    # Equation 13: priorities are assigned in insertion order, so the
    # later diagnosis rules override the blanket staff-read rule.
    for effect, privilege, path, subject in PAPER_POLICY_RULES:
        if effect == "accept":
            db.policy.grant(privilege, path, subject)
        else:
            db.policy.deny(privilege, path, subject)
    return db


def main() -> None:
    db = build_database()

    print("== Source document (administrator's unrestricted view) ==")
    from repro import serialize

    print(serialize(db.document, indent="  "))
    print()

    for user, description in [
        ("beaufort", "secretary: sees structure, diagnosis content RESTRICTED"),
        ("robert", "patient: sees only their own medical file"),
        ("richard", "epidemiologist: sees illnesses, patient names RESTRICTED"),
    ]:
        session = db.login(user)
        print(f"== View for {user} ({description}) ==")
        print(session.read_xml(indent="  "))
        print()

    # A doctor updates franck's diagnosis; selection runs on the
    # doctor's view, the write needs update+read on the text node.
    doctor = db.login("laporte")
    result = doctor.execute(
        UpdateContent("/patients/franck/diagnosis", "pharyngitis")
    )
    print("== Doctor updates franck's diagnosis ==")
    print(f"selected={len(result.selected)} affected={len(result.affected)} "
          f"denied={len(result.denials)}")
    print(db.login("laporte").read_xml(indent="  "))

    # The same operation from the secretary is refused: she holds
    # neither update nor read on diagnosis content.
    secretary = db.login("beaufort")
    refused = secretary.execute(
        UpdateContent("/patients/franck/diagnosis", "influenza")
    )
    print("== Secretary attempts the same update ==")
    for denial in refused.denials:
        print(f"  DENIED: {denial}")


if __name__ == "__main__":
    main()
