"""The disk-fault injection shim and the disk-error taxonomy (ISSUE 10).

Covers the injector's arming semantics (one-shot, ``after=N``,
``match=`` path filtering), the physical faults it produces (EIO,
ENOSPC, short writes that leave real torn bytes, :func:`flip_bit`),
how the storage and WAL layers classify the resulting ``OSError``s
into :class:`DiskFullError` / :class:`DiskIOError`, and the
:class:`~repro.testing.faults.ChaosRunner` integration that drives the
seeded disk-fault soak.
"""

import errno
import os

import pytest

from repro.errors import (
    DiskError,
    DiskFullError,
    DiskIOError,
    ReproError,
    WalWriteError,
    classify_disk_error,
)
from repro.storage import load_from_file, save_to_file
from repro.testing.diskfaults import (
    DISK_ERRORS,
    DISK_OPS,
    DiskFaultInjector,
    disk,
    flip_bit,
)
from repro.testing.faults import ChaosRunner
from repro.wal import WriteAheadLog

from tests.wal.conftest import editors_database

pytestmark = pytest.mark.scrub


@pytest.fixture(autouse=True)
def clean_disk():
    disk.reset()
    yield
    disk.reset()


class TestInjectorArming:
    def test_unarmed_open_is_a_passthrough(self, tmp_path):
        path = tmp_path / "f.txt"
        with disk.open(str(path), "w", encoding="utf-8") as handle:
            handle.write("hello")
        with disk.open(str(path), "r", encoding="utf-8") as handle:
            assert handle.read() == "hello"

    def test_armed_open_raises_with_real_errno(self, tmp_path):
        disk.arm("open", "eio")
        with pytest.raises(OSError) as excinfo:
            disk.open(str(tmp_path / "f.txt"), "w")
        assert excinfo.value.errno == errno.EIO

    def test_faults_are_one_shot(self, tmp_path):
        path = str(tmp_path / "f.txt")
        disk.arm("open", "eio")
        with pytest.raises(OSError):
            disk.open(path, "w")
        with disk.open(path, "w", encoding="utf-8") as handle:
            handle.write("fine now")
        assert disk.injected == [("open", "eio", path)]

    def test_after_lets_n_calls_through(self, tmp_path):
        path = str(tmp_path / "f.txt")
        disk.arm("open", "enospc", after=2)
        disk.open(path, "w").close()
        disk.open(path, "a").close()
        with pytest.raises(OSError) as excinfo:
            disk.open(path, "a")
        assert excinfo.value.errno == errno.ENOSPC

    def test_match_filters_by_path_substring(self, tmp_path):
        disk.arm("open", "eio", match=".wal")
        other = str(tmp_path / "plain.txt")
        disk.open(other, "w").close()  # not eligible: still armed
        assert disk.is_armed("open")
        with pytest.raises(OSError):
            disk.open(str(tmp_path / "seg.wal"), "w")
        assert not disk.is_armed("open")

    def test_armed_context_manager_disarms(self, tmp_path):
        injector = DiskFaultInjector()
        with injector.armed("read", "eio"):
            assert injector.is_armed("read")
        assert not injector.is_armed("read")

    def test_validation(self):
        with pytest.raises(ValueError):
            disk.arm("chmod", "eio")
        with pytest.raises(ValueError):
            disk.arm("write", "exyz")
        with pytest.raises(ValueError):
            disk.arm("read", "short")  # short is write-only
        with pytest.raises(ValueError):
            disk.arm("write", "eio", after=-1)

    def test_ops_and_errors_are_published(self):
        assert set(DISK_OPS) == {"open", "read", "write", "fsync"}
        assert set(DISK_ERRORS) == {"eio", "enospc", "short"}


class TestPhysicalFaults:
    def test_short_write_leaves_partial_bytes(self, tmp_path):
        path = str(tmp_path / "torn.bin")
        disk.arm("write", "short")
        handle = disk.open(path, "wb")
        with pytest.raises(OSError) as excinfo:
            handle.write(b"0123456789")
        handle.close()
        assert excinfo.value.errno == errno.ENOSPC
        data = open(path, "rb").read()
        assert data == b"01234"  # half the buffer really landed

    def test_fsync_fault(self, tmp_path):
        path = str(tmp_path / "f.bin")
        handle = disk.open(path, "wb")
        handle.write(b"x")
        disk.arm("fsync", "eio")
        with pytest.raises(OSError) as excinfo:
            disk.fsync(handle)
        assert excinfo.value.errno == errno.EIO
        handle.close()

    def test_read_fault_on_long_lived_handle(self, tmp_path):
        # The proxy consults faults per call, so a fault armed *after*
        # the handle was opened still fires -- the WAL keeps its
        # segment handle open across appends.
        path = str(tmp_path / "f.bin")
        open(path, "wb").write(b"payload")
        handle = disk.open(path, "rb")
        disk.arm("read", "eio")
        with pytest.raises(OSError):
            handle.read()
        handle.close()

    def test_flip_bit_flips_exactly_one_bit(self, tmp_path):
        path = str(tmp_path / "f.bin")
        open(path, "wb").write(bytes(range(16)))
        flipped = flip_bit(path, 3, bit=2)
        assert flipped == 3
        data = open(path, "rb").read()
        assert data[3] == 3 ^ 0b100
        assert [b for i, b in enumerate(data) if i != 3] == [
            b for i, b in enumerate(bytes(range(16))) if i != 3
        ]

    def test_flip_bit_negative_offset_counts_from_end(self, tmp_path):
        path = str(tmp_path / "f.bin")
        open(path, "wb").write(b"abcd")
        assert flip_bit(path, -1) == 3
        with pytest.raises(ValueError):
            flip_bit(path, 99)


class TestDiskErrorTaxonomy:
    def test_enospc_classifies_as_disk_full(self):
        err = classify_disk_error(
            OSError(errno.ENOSPC, "no space"), path="/x", op="append"
        )
        assert isinstance(err, DiskFullError)
        assert err.path == "/x" and err.op == "append"

    def test_eio_classifies_as_disk_io(self):
        err = classify_disk_error(OSError(errno.EIO, "bad device"))
        assert isinstance(err, DiskIOError)
        assert not isinstance(err, DiskFullError)

    def test_lineage_preserves_oserror_and_reproerror(self):
        err = classify_disk_error(OSError(errno.EIO, "x"))
        assert isinstance(err, DiskError)
        assert isinstance(err, ReproError)
        assert isinstance(err, OSError)  # legacy handlers keep working


class TestStorageClassification:
    def test_save_to_file_maps_enospc(self, tmp_path):
        db = editors_database()
        path = str(tmp_path / "db.xml")
        disk.arm("write", "enospc")
        with pytest.raises(DiskFullError):
            save_to_file(db, path)
        # the temp file was cleaned up and no target appeared
        assert os.listdir(tmp_path) == []

    def test_save_to_file_maps_fsync_eio(self, tmp_path):
        db = editors_database()
        disk.arm("fsync", "eio")
        with pytest.raises(DiskIOError):
            save_to_file(db, str(tmp_path / "db.xml"))

    def test_load_from_file_maps_read_eio(self, tmp_path):
        db = editors_database()
        path = str(tmp_path / "db.xml")
        save_to_file(db, path)
        disk.arm("read", "eio")
        with pytest.raises(DiskIOError):
            load_from_file(path)

    def test_missing_file_stays_a_plain_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            load_from_file(str(tmp_path / "absent.xml"))
        assert not isinstance(excinfo.value, DiskError)


class TestWalClassification:
    def test_append_enospc_carries_disk_full(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        wal.append({"kind": "noop"})
        disk.arm("write", "enospc", match=".wal")
        with pytest.raises(WalWriteError) as excinfo:
            wal.append({"kind": "noop"})
        assert isinstance(excinfo.value.disk, DiskFullError)

    def test_poisoned_log_refusals_keep_the_classification(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        wal.append({"kind": "noop"})
        disk.arm("fsync", "eio", match=".wal")
        with pytest.raises(WalWriteError) as excinfo:
            wal.append({"kind": "noop"})
        assert isinstance(excinfo.value.disk, DiskIOError)
        # the next refusal is the poisoned-state guard, not a new
        # OSError -- it must still say "disk" so the serving layer's
        # sick-disk accounting keeps ticking
        with pytest.raises(WalWriteError) as excinfo:
            wal.append({"kind": "noop"})
        assert isinstance(excinfo.value.disk, DiskIOError)

    def test_reopen_resumes_after_enospc(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        first = wal.append({"kind": "noop"})
        disk.arm("write", "enospc", match=".wal")
        with pytest.raises(WalWriteError):
            wal.append({"kind": "noop"})
        assert wal.failed is not None
        wal.reopen()
        assert wal.failed is None
        assert wal.append({"kind": "noop"}) == first + 1

    def test_fenced_log_refuses_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "db.wal"))
        wal.append({"kind": "noop"})
        wal.fence(wal.epoch + 1)
        with pytest.raises(WalWriteError, match="fenced"):
            wal.reopen()


class TestChaosRunnerIntegration:
    def test_disk_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosRunner(disk_rate=1.5)
        with pytest.raises(ValueError):
            ChaosRunner(disk_rate=0.5)  # no specs
        with pytest.raises(ValueError):
            ChaosRunner(disk_rate=0.5, disk_faults=[("chmod", "eio")])

    def test_armed_faults_are_recorded_and_disarmed(self):
        observed = []

        def task():
            for _ in range(20):
                observed.append(disk.is_armed("write") or disk.is_armed("fsync"))
                yield

        runner = ChaosRunner(
            seed=7,
            disk_faults=[("write", "eio"), ("fsync", "enospc")],
            disk_rate=1.0,
        )
        report = runner.run([task, task])
        assert report.clean
        assert len(report.disk_faults_armed) == len(report.schedule)
        assert any(observed)  # the steps saw faults armed
        assert not disk.is_armed("write")  # disarmed in the finally
        assert not disk.is_armed("fsync")

    def test_same_seed_same_fault_schedule(self):
        def task():
            for _ in range(15):
                yield

        kwargs = dict(
            seed=11,
            disk_faults=[("write", "eio"), ("write", "enospc")],
            disk_rate=0.5,
        )
        first = ChaosRunner(**kwargs).run([task, task])
        second = ChaosRunner(**kwargs).run([task, task])
        assert first.disk_faults_armed == second.disk_faults_armed
        assert first.disk_faults_armed  # the schedule actually armed some
