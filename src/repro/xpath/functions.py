"""The XPath 1.0 core function library (spec section 4).

Each function receives the evaluation :class:`~repro.xpath.evaluator.Context`
and already-evaluated argument values, and returns an XPath value.  The
registry is a plain dict so an engine instance can be extended with
extra functions without monkey-patching.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, TYPE_CHECKING

from .values import (
    NodeSet,
    XPathValue,
    is_node_set,
    number_to_string,
    to_boolean,
    to_number,
    to_string,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .evaluator import Context

__all__ = ["XPathFunction", "XPathFunctionError", "CORE_FUNCTIONS"]

XPathFunction = Callable[["Context", List[XPathValue]], XPathValue]


class XPathFunctionError(ValueError):
    """Wrong function name, arity or argument type."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise XPathFunctionError(message)


def _arity(args: List[XPathValue], low: int, high: int, name: str) -> None:
    _require(
        low <= len(args) <= high,
        f"{name}() takes {low}..{high} arguments, got {len(args)}",
    )


# -- node-set functions -----------------------------------------------------
def _fn_last(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 0, "last")
    return float(ctx.size)


def _fn_position(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 0, "position")
    return float(ctx.position)


def _fn_count(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "count")
    _require(is_node_set(args[0]), "count() requires a node-set")
    return float(len(args[0]))


def _name_of(ctx: "Context", args: List[XPathValue], name: str) -> str:
    if args:
        _require(is_node_set(args[0]), f"{name}() requires a node-set")
        nodes: NodeSet = args[0]
        if not nodes:
            return ""
        target = nodes[0]
    else:
        target = ctx.node
    node = ctx.doc.node(target)
    if node.is_document or node.is_text:
        return ""
    return node.label


def _fn_name(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "name")
    return _name_of(ctx, args, "name")


def _fn_local_name(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "local-name")
    qname = _name_of(ctx, args, "local-name")
    return qname.rsplit(":", 1)[-1]


# -- string functions --------------------------------------------------------
def _fn_string(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "string")
    if not args:
        return ctx.doc.string_value(ctx.node)
    return to_string(args[0], ctx.doc)


def _fn_concat(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _require(len(args) >= 2, "concat() takes at least 2 arguments")
    return "".join(to_string(a, ctx.doc) for a in args)


def _fn_starts_with(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 2, 2, "starts-with")
    return to_string(args[0], ctx.doc).startswith(to_string(args[1], ctx.doc))


def _fn_contains(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 2, 2, "contains")
    return to_string(args[1], ctx.doc) in to_string(args[0], ctx.doc)


def _fn_substring_before(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 2, 2, "substring-before")
    haystack = to_string(args[0], ctx.doc)
    needle = to_string(args[1], ctx.doc)
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def _fn_substring_after(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 2, 2, "substring-after")
    haystack = to_string(args[0], ctx.doc)
    needle = to_string(args[1], ctx.doc)
    index = haystack.find(needle)
    return haystack[index + len(needle) :] if index >= 0 else ""


def _fn_substring(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 2, 3, "substring")
    value = to_string(args[0], ctx.doc)
    start = to_number(args[1], ctx.doc)
    if math.isnan(start):
        return ""
    start = round(start)
    if len(args) == 3:
        length = to_number(args[2], ctx.doc)
        if math.isnan(length):
            return ""
        end = start + round(length)
    else:
        end = math.inf
    # XPath positions are 1-based; round() already applied.
    chars = [
        ch
        for pos, ch in enumerate(value, start=1)
        if pos >= start and pos < end
    ]
    return "".join(chars)


def _fn_string_length(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "string-length")
    value = (
        to_string(args[0], ctx.doc) if args else ctx.doc.string_value(ctx.node)
    )
    return float(len(value))


def _fn_normalize_space(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "normalize-space")
    value = (
        to_string(args[0], ctx.doc) if args else ctx.doc.string_value(ctx.node)
    )
    return " ".join(value.split())


def _fn_translate(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 3, 3, "translate")
    value = to_string(args[0], ctx.doc)
    src = to_string(args[1], ctx.doc)
    dst = to_string(args[2], ctx.doc)
    table: Dict[int, int | None] = {}
    for i, ch in enumerate(src):
        if ord(ch) in table:
            continue
        table[ord(ch)] = ord(dst[i]) if i < len(dst) else None
    return value.translate(table)


# -- boolean functions --------------------------------------------------------
def _fn_boolean(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "boolean")
    return to_boolean(args[0])


def _fn_not(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "not")
    return not to_boolean(args[0])


def _fn_true(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 0, "true")
    return True


def _fn_false(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 0, "false")
    return False


# -- number functions ---------------------------------------------------------
def _fn_number(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 0, 1, "number")
    if not args:
        return to_number(ctx.doc.string_value(ctx.node), ctx.doc)
    return to_number(args[0], ctx.doc)


def _fn_sum(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "sum")
    _require(is_node_set(args[0]), "sum() requires a node-set")
    return float(
        sum(to_number(ctx.doc.string_value(n), ctx.doc) for n in args[0])
    )


def _fn_floor(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "floor")
    value = to_number(args[0], ctx.doc)
    return value if math.isnan(value) or math.isinf(value) else float(math.floor(value))


def _fn_ceiling(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "ceiling")
    value = to_number(args[0], ctx.doc)
    return value if math.isnan(value) or math.isinf(value) else float(math.ceil(value))


def _fn_round(ctx: "Context", args: List[XPathValue]) -> XPathValue:
    _arity(args, 1, 1, "round")
    value = to_number(args[0], ctx.doc)
    if math.isnan(value) or math.isinf(value):
        return value
    # XPath rounds .5 towards +infinity, unlike Python's banker's rounding.
    return float(math.floor(value + 0.5))


#: The registry of core functions, keyed by XPath function name.
CORE_FUNCTIONS: Dict[str, XPathFunction] = {
    "last": _fn_last,
    "position": _fn_position,
    "count": _fn_count,
    "name": _fn_name,
    "local-name": _fn_local_name,
    "string": _fn_string,
    "concat": _fn_concat,
    "starts-with": _fn_starts_with,
    "contains": _fn_contains,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "substring": _fn_substring,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "translate": _fn_translate,
    "boolean": _fn_boolean,
    "not": _fn_not,
    "true": _fn_true,
    "false": _fn_false,
    "number": _fn_number,
    "sum": _fn_sum,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}
