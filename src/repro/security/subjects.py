"""Subjects: users and roles with an ``isa`` hierarchy (paper section 4.2).

The paper's set ``S`` records ``subject(s)`` facts and ``isa(s, s')``
facts ("subject s is a subject s'"); axioms 11-12 close ``isa`` under
reflexivity and transitivity.  Internal nodes of the hierarchy are roles
in the RBAC sense [17], leaves are users, and a security rule granted to
a role applies to every subject below it.

:class:`SubjectHierarchy` stores the explicit facts and serves the
closure; cycles are allowed by the logic (they just merge subjects) but
rejected here because they are invariably configuration mistakes.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import ReproError

__all__ = ["SubjectError", "SubjectHierarchy"]


class SubjectError(ReproError, ValueError):
    """Unknown subject, duplicate declaration, or a cycle in ``isa``."""


class SubjectHierarchy:
    """Users and roles with the reflexive-transitive ``isa`` closure.

    Example (the paper's figure 3)::

        subjects = SubjectHierarchy()
        for role in ("staff", "doctor", "secretary", "epidemiologist",
                     "patient"):
            subjects.add_role(role)
        subjects.add_user("laporte", member_of="doctor")
        subjects.add_isa("doctor", "staff")
        ...
        subjects.isa("laporte", "staff")   # True
    """

    def __init__(self) -> None:
        self._subjects: Set[str] = set()
        self._roles: Set[str] = set()
        self._users: Set[str] = set()
        self._parents: Dict[str, Set[str]] = {}
        self._closure: Optional[Dict[str, FrozenSet[str]]] = None
        self._listeners: List[Callable[..., None]] = []

    # ------------------------------------------------------------------
    # mutation listeners (the write-ahead log's capture hook)
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[..., None]) -> None:
        """Call ``listener(op, *args)`` after every successful mutation.

        Events are emitted in replay order -- ``("add_role", name)`` /
        ``("add_user", name)`` before the ``("add_isa", subject,
        parent)`` a ``member_of=`` shortcut implies -- so re-dispatching
        them against a fresh hierarchy reproduces this one exactly.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[..., None]) -> None:
        """Remove a listener added with :meth:`subscribe` (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, op: str, *args: str) -> None:
        for listener in list(self._listeners):
            listener(op, *args)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_role(self, name: str, member_of: Optional[str] = None) -> None:
        """Declare a role, optionally directly under another subject."""
        self._add_subject(name, role=True)
        self._notify("add_role", name)
        if member_of is not None:
            self.add_isa(name, member_of)

    def add_user(self, name: str, member_of: Optional[str] = None) -> None:
        """Declare a user, optionally directly under a role."""
        self._add_subject(name, role=False)
        self._notify("add_user", name)
        if member_of is not None:
            self.add_isa(name, member_of)

    def _add_subject(self, name: str, role: bool) -> None:
        if not name:
            raise SubjectError("subject names cannot be empty")
        if name in self._subjects:
            raise SubjectError(f"subject {name!r} already declared")
        self._subjects.add(name)
        (self._roles if role else self._users).add(name)
        self._parents[name] = set()
        self._closure = None

    def add_isa(self, subject: str, parent: str) -> None:
        """Record the fact ``isa(subject, parent)``.

        Raises:
            SubjectError: if either side is undeclared or the edge would
                create a cycle.
        """
        for name in (subject, parent):
            if name not in self._subjects:
                raise SubjectError(f"unknown subject {name!r}")
        if subject == parent or parent in self.ancestors(subject):
            pass  # redundant but harmless
        elif subject in self.ancestors(parent):
            raise SubjectError(
                f"isa({subject!r}, {parent!r}) would create a cycle"
            )
        self._parents[subject].add(parent)
        self._closure = None
        self._notify("add_isa", subject, parent)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._subjects

    @property
    def subjects(self) -> FrozenSet[str]:
        """All declared subjects (the ``subject/1`` facts)."""
        return frozenset(self._subjects)

    @property
    def roles(self) -> FrozenSet[str]:
        return frozenset(self._roles)

    @property
    def users(self) -> FrozenSet[str]:
        return frozenset(self._users)

    def is_user(self, name: str) -> bool:
        """True when the subject is a user (leaf), not a role."""
        return name in self._users

    def direct_parents(self, name: str) -> FrozenSet[str]:
        """The explicitly recorded ``isa`` facts for one subject."""
        if name not in self._subjects:
            raise SubjectError(f"unknown subject {name!r}")
        return frozenset(self._parents[name])

    def ancestors(self, name: str) -> FrozenSet[str]:
        """Subjects ``s'`` with ``isa(name, s')``, *including* ``name``.

        This is the reflexive-transitive closure of axioms 11-12: the
        set of subjects whose rules apply to ``name``.
        """
        if name not in self._subjects:
            raise SubjectError(f"unknown subject {name!r}")
        return self._closure_map()[name]

    def isa(self, subject: str, ancestor: str) -> bool:
        """The closed ``isa(subject, ancestor)`` relation."""
        return ancestor in self.ancestors(subject)

    def members(self, role: str) -> FrozenSet[str]:
        """All subjects s with ``isa(s, role)`` (role itself included)."""
        if role not in self._subjects:
            raise SubjectError(f"unknown subject {role!r}")
        return frozenset(
            s for s in self._subjects if role in self.ancestors(s)
        )

    def isa_facts(self) -> Iterator[Tuple[str, str]]:
        """The *explicit* isa facts, as in the paper's set S (eq. 10)."""
        for subject, parents in sorted(self._parents.items()):
            for parent in sorted(parents):
                yield (subject, parent)

    def closure_facts(self) -> Iterator[Tuple[str, str]]:
        """The closed isa relation (output of axioms 11-12)."""
        for subject in sorted(self._subjects):
            for ancestor in sorted(self.ancestors(subject)):
                yield (subject, ancestor)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _closure_map(self) -> Dict[str, FrozenSet[str]]:
        if self._closure is None:
            closure: Dict[str, FrozenSet[str]] = {}

            def visit(name: str, seen: Set[str]) -> FrozenSet[str]:
                if name in closure:
                    return closure[name]
                if name in seen:  # pragma: no cover - cycles rejected earlier
                    raise SubjectError(f"cycle through {name!r}")
                seen.add(name)
                out: Set[str] = {name}
                for parent in self._parents[name]:
                    out |= visit(parent, seen)
                seen.discard(name)
                result = frozenset(out)
                closure[name] = result
                return result

            for subject in self._subjects:
                visit(subject, set())
            self._closure = closure
        return self._closure
