"""Abstract syntax for the XPath 1.0 subset.

The paper treats ``xpath(p, n, v)`` as a black-box predicate whose axioms
live in its Prolog prototype (section 3.4).  Here the language gets a
real front end: this module defines the AST the
:mod:`repro.xpath.parser` produces and the
:mod:`repro.xpath.evaluator` consumes.

Covered grammar (XPath 1.0, REC-xpath-19991116): location paths over all
thirteen axes, name and kind node tests, predicates, the full expression
grammar (or/and/equality/relational/additive/multiplicative/unary),
unions, filter expressions, variable references, literals, numbers and
function calls.  Omitted: namespace axis semantics (namespaces are
treated as plain name prefixes, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Expr",
    "LocationPath",
    "Step",
    "NodeTest",
    "NameTest",
    "KindTest",
    "BinaryOp",
    "Negate",
    "UnionExpr",
    "Literal",
    "NumberLiteral",
    "VariableRef",
    "FunctionCall",
    "FilterExpr",
    "PathExpr",
    "AXES",
    "FORWARD_AXES",
    "REVERSE_AXES",
]

#: All thirteen XPath 1.0 axes.
AXES = frozenset(
    {
        "child",
        "descendant",
        "parent",
        "ancestor",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
        "attribute",
        "namespace",
        "self",
        "descendant-or-self",
        "ancestor-or-self",
    }
)

#: Axes whose proximity position counts in document order.
FORWARD_AXES = frozenset(
    {
        "child",
        "descendant",
        "descendant-or-self",
        "following",
        "following-sibling",
        "attribute",
        "namespace",
        "self",
    }
)

#: Axes whose proximity position counts in reverse document order.
REVERSE_AXES = frozenset(
    {"parent", "ancestor", "ancestor-or-self", "preceding", "preceding-sibling"}
)


class Expr:
    """Base class for every XPath expression node."""

    __slots__ = ()


class NodeTest:
    """Base class for step node tests."""

    __slots__ = ()


@dataclass(frozen=True)
class NameTest(NodeTest):
    """A name test: an element/attribute name, or ``*`` for any name."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class KindTest(NodeTest):
    """A kind test: ``text()``, ``node()``, ``comment()`` or
    ``processing-instruction()`` (optionally with a target literal)."""

    kind: str
    target: str = ""

    def __str__(self) -> str:
        if self.target:
            return f"{self.kind}('{self.target}')"
        return f"{self.kind}()"


@dataclass(frozen=True)
class Step(Expr):
    """One location step: ``axis::node-test[predicate]*``."""

    axis: str
    test: NodeTest
    predicates: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath(Expr):
    """A location path; ``absolute`` paths start at the document node."""

    absolute: bool
    steps: Tuple[Step, ...]

    def __str__(self) -> str:
        body = "/".join(str(s) for s in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation: or, and, =, !=, <, <=, >, >=, +, -, *, div, mod."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""

    operand: Expr

    def __str__(self) -> str:
        return f"-{self.operand}"


@dataclass(frozen=True)
class UnionExpr(Expr):
    """Node-set union: ``left | right``."""

    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class Literal(Expr):
    """A string literal."""

    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class NumberLiteral(Expr):
    """A numeric literal (XPath numbers are IEEE doubles)."""

    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VariableRef(Expr):
    """A variable reference ``$name`` (the paper's ``$USER``)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A core-library function call."""

    name: str
    args: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class FilterExpr(Expr):
    """A primary expression filtered by predicates: ``$x[1]``."""

    primary: Expr
    predicates: Tuple[Expr, ...]

    def __str__(self) -> str:
        return str(self.primary) + "".join(f"[{p}]" for p in self.predicates)


@dataclass(frozen=True)
class PathExpr(Expr):
    """A filter expression continued by a relative path: ``$x/a/b``."""

    start: Expr
    steps: Tuple[Step, ...]

    def __str__(self) -> str:
        return str(self.start) + "/" + "/".join(str(s) for s in self.steps)
