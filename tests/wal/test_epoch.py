"""Fencing epochs in the log format and the recovery path.

The compat rule under test throughout: epoch 0 is stamped as an
*absent* field, so a pre-failover log is byte-identical to one written
by this code at epoch 0, and old-format records load as epoch 0 on
both the strict and lenient recovery paths.
"""

import os

import pytest

from repro.errors import RecoveryError, WalWriteError
from repro.wal import (
    WriteAheadLog,
    list_checkpoints,
    recover,
    scan_directory,
)

from .conftest import append_script, editors_database


def logged(wal_dir, epoch=None, **options):
    db = editors_database()
    wal = WriteAheadLog(wal_dir, epoch=epoch, **options)
    db.attach_wal(wal)
    wal.checkpoint(db)
    return db, wal


class TestEpochStamping:
    def test_epoch_zero_is_an_absent_field(self, wal_dir):
        """The seed format is preserved byte-for-byte: no ``epoch``
        key ever appears at epoch 0."""
        db, wal = logged(wal_dir)
        db.login("w1").execute(append_script("a"))
        for record in scan_directory(wal_dir).records:
            assert "epoch" not in record.payload
            assert record.epoch == 0
        assert wal.epoch == 0

    def test_positive_epoch_is_stamped_into_every_record(self, wal_dir):
        db, wal = logged(wal_dir, epoch=3)
        db.login("w1").execute(append_script("a"))
        records = scan_directory(wal_dir).records
        assert records and all(r.epoch == 3 for r in records)

    def test_reopen_discovers_the_disk_epoch(self, wal_dir):
        db, wal = logged(wal_dir, epoch=2)
        db.login("w1").execute(append_script("a"))
        wal.close()
        with WriteAheadLog(wal_dir) as reopened:
            assert reopened.epoch == 2

    def test_reopen_below_the_disk_epoch_is_refused(self, wal_dir):
        db, wal = logged(wal_dir, epoch=2)
        db.login("w1").execute(append_script("a"))
        wal.close()
        with pytest.raises(ValueError):
            WriteAheadLog(wal_dir, epoch=1)

    def test_negative_epoch_is_refused(self, wal_dir):
        with pytest.raises(ValueError):
            WriteAheadLog(wal_dir, epoch=-1)

    def test_checkpoint_filename_carries_the_epoch(self, wal_dir):
        logged(wal_dir, epoch=4)
        (checkpoint,) = list_checkpoints(wal_dir)
        assert checkpoint.epoch == 4
        assert "-e4" in os.path.basename(checkpoint.path)

    def test_epoch_zero_checkpoint_filename_is_the_old_format(
        self, wal_dir
    ):
        logged(wal_dir)
        (checkpoint,) = list_checkpoints(wal_dir)
        assert checkpoint.epoch == 0
        assert "-e" not in os.path.basename(checkpoint.path)


class TestFencing:
    def test_fence_poisons_the_writer(self, wal_dir):
        db, wal = logged(wal_dir)
        wal.fence(2)
        assert wal.failed is not None and "epoch 2" in wal.failed
        with pytest.raises(WalWriteError):
            wal.append({"kind": "update"})

    def test_fence_requires_a_strictly_higher_epoch(self, wal_dir):
        db, wal = logged(wal_dir, epoch=2)
        with pytest.raises(ValueError):
            wal.fence(2)
        with pytest.raises(ValueError):
            wal.fence(1)

    def test_fencing_never_touches_disk_state(self, wal_dir):
        db, wal = logged(wal_dir)
        db.login("w1").execute(append_script("a"))
        before = [(r.lsn, r.payload) for r in scan_directory(wal_dir).records]
        wal.fence(5)
        after = [(r.lsn, r.payload) for r in scan_directory(wal_dir).records]
        assert before == after


class TestAnnotation:
    def test_annotation_rides_the_commit_record(self, wal_dir):
        db, wal = logged(wal_dir)
        with wal.annotate(idem="key-1"):
            db.login("w1").execute(append_script("a"))
        db.login("w1").execute(append_script("b"))
        records = [
            r for r in scan_directory(wal_dir).records if r.kind == "update"
        ]
        assert records[0].payload["idem"] == "key-1"
        assert "idem" not in records[1].payload

    def test_reserved_keys_are_refused(self, wal_dir):
        _, wal = logged(wal_dir)
        for key in ("lsn", "kind", "epoch", "version"):
            with pytest.raises(ValueError):
                with wal.annotate(**{key: 1}):
                    pass


class TestEpochRecovery:
    def test_old_format_log_recovers_at_epoch_zero(self, wal_dir):
        """Satellite 6: an epoch-less log (the seed format) loads as
        epoch 0 on both recovery paths."""
        db, wal = logged(wal_dir)
        db.login("w1").execute(append_script("a"))
        wal.close()
        for strict in (False, True):
            result = recover(wal_dir, strict=strict)
            assert result.epoch == 0
            assert result.database.version == db.version

    def test_mixed_format_log_recovers_at_the_newest_epoch(self, wal_dir):
        """Old epoch-less records followed by epoch-stamped ones (the
        log a promoted-in-place primary writes) replay end to end."""
        db, wal = logged(wal_dir)
        db.login("w1").execute(append_script("old"))
        wal.close()
        db.detach_wal()
        with WriteAheadLog(wal_dir, epoch=2) as upgraded:
            db.attach_wal(upgraded)
            db.login("w1").execute(append_script("new"))
        for strict in (False, True):
            result = recover(wal_dir, strict=strict)
            assert result.epoch == 2
            assert result.database.version == db.version
            from repro.xmltree.serializer import serialize

            final = serialize(result.database.document)
            assert "<old>" in final and "<new>" in final

    def test_epoch_regression_stops_lenient_recovery(self, wal_dir):
        """A record whose epoch goes *backwards* is a deposed
        primary's leftover: lenient recovery stops in front of it."""
        db, wal = logged(wal_dir)
        db.login("w1").execute(append_script("good"))
        # Craft the regression: at epoch 0 the log stamps nothing, so a
        # payload smuggling its own epoch fields emulates a torn
        # history (epoch 2 observed, then an epoch-1 straggler).
        wal.append({"kind": "update", "epoch": 2, "user": "w1",
                    "script": append_script("x"), "version": db.version + 1})
        wal.append({"kind": "update", "epoch": 1, "user": "w1",
                    "script": append_script("y"), "version": db.version + 2})
        wal.close()
        result = recover(wal_dir)
        assert result.epoch == 2
        assert not result.report.clean
        assert any(
            "stale epoch" in str(p) for p in result.report.problems
        )
        with pytest.raises(RecoveryError):
            recover(wal_dir, strict=True)

    def test_dedup_ledger_is_rebuilt_from_annotations(self, wal_dir):
        db, wal = logged(wal_dir)
        with wal.annotate(idem="k1"):
            db.login("w1").execute(append_script("a"))
        with wal.annotate(idem="k2"):
            db.login("w1").execute(append_script("b"))
        db.login("w1").execute(append_script("unkeyed"))
        wal.close()
        result = recover(wal_dir)
        assert set(result.dedup) == {"k1", "k2"}
        for summary in result.dedup.values():
            assert summary["fully_applied"] is True
            assert summary["version"] > 0
