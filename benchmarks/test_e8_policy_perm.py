"""E8 (equation 13 + axiom 14): policy conflict resolution.

Regenerates: the perm facts of the running example -- in particular
rule 2 partially cancelling rule 1 for secretaries -- and times
permission derivation for every subject of figure 3.
"""

import pytest

from repro.security import Privilege


@pytest.mark.parametrize(
    "user", ["beaufort", "laporte", "richard", "robert", "franck"]
)
def test_e8_perm_derivation(benchmark, paper_db, user):
    db = paper_db
    diag_text = db.engine.select(
        db.document, "/patients/franck/diagnosis/text()"
    )[0]

    def run():
        return db.permissions_for(user)

    table = benchmark(run)
    # The paper's headline conflict: secretaries lose read on diagnosis
    # content (rule 2 over rule 1); doctors keep it.
    if user == "beaufort":
        assert not table.holds(diag_text, Privilege.READ)
        assert table.holds(diag_text, Privilege.POSITION)
    if user == "laporte":
        assert table.holds(diag_text, Privilege.READ)
        assert table.holds(diag_text, Privilege.UPDATE)


def test_e8_conflict_chain_resolution(benchmark, paper_db):
    """A long accept/deny alternation on one node: latest rule wins."""
    db = paper_db
    for i in range(20):
        if i % 2 == 0:
            db.policy.deny("read", "/patients/franck", "secretary")
        else:
            db.policy.grant("read", "/patients/franck", "secretary")
    franck = db.engine.select(db.document, "/patients/franck")[0]

    def run():
        return db.permissions_for("beaufort")

    table = benchmark(run)
    # 20 extra rules, last one (i=19) is a grant.
    assert table.holds(franck, Privilege.READ)
    assert table.explain(franck, Privilege.READ).effect == "accept"
