"""The request/response protocol spoken over the framing layer.

Every frame is one JSON object (see :mod:`repro.netserve.framing`).
A **request** carries::

    {"id": <int>, "op": <operation>, ...operation fields,
     "deadline_ms": <optional budget in milliseconds>}

and its **response** echoes the id::

    {"id": <int>, "ok": true,  "result": <operation result>}
    {"id": <int>, "ok": false, "error": {"kind": "<exception class>",
                                         "message": "<server message>"}}

Requests on one connection may be pipelined; responses carry the id so
a client can match them even if the server finishes them out of order
(reads overlap; only the commit groups serialize writes).

Operations (:data:`OPS`):

=============  =====================================================
op             fields -> result
=============  =====================================================
open_session   ``user`` -> ``{"user", "version", "protocol"}``;
               must be the connection's first operation, and every
               later request runs as this subject (the paper's
               ``logged(s)``)
query          ``path`` -> a typed XPath value (see below)
select         ``path`` -> ``{"nodes": [<xml>...]}``
read_xml       ``indent?`` -> ``{"xml": <string>}``
execute        ``script``, ``strict?``, ``idempotency_key?`` ->
               ``{"fully_applied", "selected", "affected", "denied",
               "version", "deduped"}``; a repeated key is answered
               from the primary's exactly-once ledger with the
               *original* acknowledgement's counts and
               ``"deduped": true`` -- the write is never applied
               twice, even when the retry lands on a freshly
               promoted primary
stats          -> the server's :meth:`stats` ledger plus ``net_*``
               front-end counters
close          -> ``{"closed": true}``; the server closes after
               responding
=============  =====================================================

``query`` results are typed the way XPath 1.0 types values::

    {"type": "node-set", "nodes": ["<entry>...</entry>", ...]}
    {"type": "string",   "value": "..."}
    {"type": "number",   "value": 3.0}          # NaN/inf as strings
    {"type": "boolean",  "value": true}

Error *kinds* are server-side exception class names
(``"AccessDenied"``, ``"OverloadError"``, ``"DeadlineExceeded"``, ...)
relayed verbatim; clients branch on
:attr:`~repro.errors.RemoteError.kind` the way in-process callers
branch on exception class.  A protocol violation (unparseable frame,
request before ``open_session``, unknown op) is answered with a final
``ProtocolError`` frame -- ``id`` null when the request's own id never
decoded -- and the connection is closed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..errors import ProtocolError, RemoteError

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "error_response",
    "ok_response",
    "request",
    "unwrap_response",
    "wire_number",
]

#: Bumped when a frame's meaning changes incompatibly.
PROTOCOL_VERSION = 1

#: Every operation the server understands.
OPS = (
    "open_session",
    "query",
    "select",
    "execute",
    "read_xml",
    "stats",
    "close",
)


def request(request_id: int, op: str, **fields: Any) -> Dict[str, Any]:
    """A request frame; None-valued fields are omitted from the wire."""
    frame: Dict[str, Any] = {"id": request_id, "op": op}
    for key, value in fields.items():
        if value is not None:
            frame[key] = value
    return frame


def ok_response(request_id: Optional[int], result: Any) -> Dict[str, Any]:
    """A success frame carrying ``result`` for the given request id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Optional[int], exc: BaseException
) -> Dict[str, Any]:
    """A failure frame relaying the server-side exception by name."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": type(exc).__name__, "message": str(exc)},
    }


def unwrap_response(frame: Dict[str, Any]) -> Any:
    """A response frame's result, re-raising relayed failures.

    Raises:
        RemoteError: the frame reports a server-side failure; its
            :attr:`~repro.errors.RemoteError.kind` is the server's
            exception class name.
        ProtocolError: the frame is not a response at all.
    """
    if "ok" not in frame:
        raise ProtocolError(f"peer sent a non-response frame: {frame!r}")
    if frame["ok"]:
        return frame.get("result")
    error = frame.get("error") or {}
    kind = str(error.get("kind", "Exception"))
    message = str(error.get("message", ""))
    raise RemoteError(
        f"server failed the request with {kind}: {message}",
        kind=kind,
        remote_message=message,
    )


def wire_number(value: float) -> Any:
    """An XPath number as JSON: floats directly, the three values JSON
    cannot spell (NaN, the infinities) as their XPath string forms."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value
