# Test lanes.  `make verify` is what CI should run: the full suite,
# then the fault-injection lane on its own so a kill-point that leaves
# partial state fails the build visibly.
PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test fault bench verify

test:
	$(PYTEST) -x -q

# Crash-safety lane: every named kill-point in the executor and the
# storage layer is injected and the atomicity invariant asserted.
fault:
	$(PYTEST) -x -q -m fault

bench:
	$(PYTEST) -q benchmarks

verify: test fault
