"""Secure write access controls (axioms 18-25), operation by operation."""

import pytest

from repro.security import (
    AccessDenied,
    Policy,
    Privilege,
    SecureWriteExecutor,
    SubjectHierarchy,
    ViewBuilder,
)
from repro.xmltree import RESTRICTED, element, parse_xml, serialize, text
from repro.xupdate import (
    Append,
    InsertAfter,
    InsertBefore,
    Remove,
    Rename,
    UpdateContent,
    UpdateScript,
)


@pytest.fixture
def sx():
    return SecureWriteExecutor()


@pytest.fixture
def builder():
    return ViewBuilder()


def make_db(xml, grants, denies=()):
    """A one-user database: grants/denies are (priv, path) pairs."""
    doc = parse_xml(xml)
    subjects = SubjectHierarchy()
    subjects.add_user("u")
    policy = Policy(subjects)
    for priv, path in grants:
        policy.grant(priv, path, "u")
    for priv, path in denies:
        policy.deny(priv, path, "u")
    return doc, policy


def view_for(builder, doc, policy):
    return builder.build(doc, policy, "u")


class TestRename:
    def test_allowed_with_update_privilege(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("update", "//a")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Rename("//a", "b"))
        assert serialize(result.document) == "<r><b/></r>"
        assert result.fully_applied

    def test_denied_without_update_privilege(self, sx, builder):
        doc, policy = make_db("<r><a/></r>", [("read", "//node()")])
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Rename("//a", "b"))
        assert result.affected == []
        assert len(result.denials) == 1
        assert result.denials[0].privilege is Privilege.UPDATE
        assert serialize(result.document) == "<r><a/></r>"

    def test_invisible_node_not_even_selected(self, sx, builder):
        doc, policy = make_db(
            "<r><a/><b/></r>",
            [("read", "/r"), ("read", "//b"), ("update", "//node()")],
        )
        view = view_for(builder, doc, policy)
        # //a is not in the view, so the PATH selects nothing: no
        # denial is even reported (the user cannot learn a exists).
        result = sx.apply(view, Rename("//a", "x"))
        assert result.selected == []
        assert result.denials == []

    def test_restricted_node_cannot_be_renamed(self, sx, builder):
        """The paper's prose rule: RESTRICTED labels block rename."""
        doc, policy = make_db(
            "<r><a/></r>",
            [
                ("read", "/r"),
                ("position", "//a"),
                ("update", "//node()"),
            ],
        )
        view = view_for(builder, doc, policy)
        # The node appears as RESTRICTED; select it the way the user
        # would -- by the label they see.
        result = sx.apply(view, Rename(f"//{RESTRICTED}", "x"))
        assert len(result.selected) == 1
        assert result.affected == []
        assert any("RESTRICTED" in d.reason for d in result.denials)

    def test_partial_success_across_targets(self, sx, builder):
        doc, policy = make_db(
            "<r><a/><a/></r>",
            [("read", "//node()"), ("update", "/r/a[1]")],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Rename("//a", "b"))
        assert len(result.selected) == 2
        assert len(result.affected) == 1
        assert len(result.denials) == 1
        assert serialize(result.document) == "<r><b/><a/></r>"


class TestUpdateContent:
    def test_requires_update_and_read_on_child(self, sx, builder):
        doc, policy = make_db(
            "<r><a>old</a></r>",
            [("read", "//node()"), ("update", "//a/text()")],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, UpdateContent("//a", "new"))
        assert serialize(result.document) == "<r><a>new</a></r>"

    def test_denied_without_read_on_child(self, sx, builder):
        doc, policy = make_db(
            "<r><a>secret</a></r>",
            [
                ("read", "/r"),
                ("read", "//a"),
                ("position", "//a/text()"),
                ("update", "//a/text()"),
            ],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, UpdateContent("//a", "new"))
        assert result.affected == []
        assert any(d.privilege is Privilege.READ for d in result.denials)
        # The secret is untouched.
        assert "secret" in serialize(result.document)

    def test_denied_without_update_on_child(self, sx, builder):
        doc, policy = make_db("<r><a>old</a></r>", [("read", "//node()")])
        view = view_for(builder, doc, policy)
        result = sx.apply(view, UpdateContent("//a", "new"))
        assert result.affected == []
        assert any(d.privilege is Privilege.UPDATE for d in result.denials)

    def test_invisible_children_not_updated(self, sx, builder):
        """Axioms 20-21 range over child_view, not child_db."""
        doc, policy = make_db(
            "<r><a><x/><y/></a></r>",
            [
                ("read", "/r"),
                ("read", "//a"),
                ("read", "//x"),
                ("update", "//node()"),
            ],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, UpdateContent("//a", "v"))
        new = result.document
        a = new.children(new.root)[0]
        labels = [new.label(c) for c in new.children(a)]
        assert labels == ["v", "y"]  # y invisible -> untouched


class TestAppend:
    def test_allowed_with_insert(self, sx, builder):
        doc, policy = make_db(
            "<r/>", [("read", "//node()"), ("insert", "/r")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Append("/r", element("a", "v")))
        assert serialize(result.document) == "<r><a>v</a></r>"

    def test_denied_without_insert(self, sx, builder):
        doc, policy = make_db("<r/>", [("read", "//node()")])
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Append("/r", element("a")))
        assert result.affected == []
        assert result.denials[0].privilege is Privilege.INSERT

    def test_appends_to_source_even_with_invisible_last_child(
        self, sx, builder
    ):
        doc, policy = make_db(
            "<r><hidden/></r>",
            [("read", "/r"), ("insert", "/r")],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Append("/r", element("new")))
        new = result.document
        labels = [new.label(c) for c in new.children(new.root)]
        assert labels == ["hidden", "new"]


class TestSiblingInsertions:
    def test_insert_before_needs_insert_on_parent(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("insert", "/r")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, InsertBefore("//a", element("z")))
        new = result.document
        assert [new.label(c) for c in new.children(new.root)] == ["z", "a"]

    def test_insert_after_needs_insert_on_parent(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("insert", "/r")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, InsertAfter("//a", element("z")))
        new = result.document
        assert [new.label(c) for c in new.children(new.root)] == ["a", "z"]

    def test_denied_with_insert_only_on_target(self, sx, builder):
        """Insert on the node itself is NOT enough (axioms 23-24)."""
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("insert", "//a")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, InsertBefore("//a", element("z")))
        assert result.affected == []
        assert result.denials[0].privilege is Privilege.INSERT

    def test_document_node_target_denied(self, sx, builder):
        doc, policy = make_db(
            "<r/>", [("read", "//node()"), ("insert", "//node()")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, InsertBefore("/", element("z")))
        assert result.affected == []
        assert len(result.denials) == 1


class TestRemove:
    def test_allowed_with_delete(self, sx, builder):
        doc, policy = make_db(
            "<r><a><b/></a><c/></r>",
            [("read", "//node()"), ("delete", "//a")],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Remove("//a"))
        assert serialize(result.document) == "<r><c/></r>"

    def test_denied_without_delete(self, sx, builder):
        doc, policy = make_db("<r><a/></r>", [("read", "//node()")])
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Remove("//a"))
        assert result.affected == []
        assert result.denials[0].privilege is Privilege.DELETE

    def test_confidentiality_over_integrity(self, sx, builder):
        """Axiom 25: invisible descendants are deleted silently."""
        doc, policy = make_db(
            "<r><a><secret>x</secret></a></r>",
            [("read", "/r"), ("read", "//a"), ("delete", "//a")],
        )
        view = view_for(builder, doc, policy)
        # The user cannot see <secret>, yet removing <a> succeeds and
        # takes the whole subtree with it.
        result = sx.apply(view, Remove("//a"))
        assert result.fully_applied
        assert serialize(result.document) == "<r/>"

    def test_nested_selected_targets(self, sx, builder):
        doc, policy = make_db(
            "<r><a><a/></a></r>",
            [("read", "//node()"), ("delete", "//a")],
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Remove("//a"))
        # Outer removal swallows the inner target.
        assert serialize(result.document) == "<r/>"


class TestStrictModeAndScripts:
    def test_strict_raises_on_denial(self, sx, builder):
        doc, policy = make_db("<r><a/></r>", [("read", "//node()")])
        view = view_for(builder, doc, policy)
        with pytest.raises(AccessDenied) as exc:
            sx.apply(view, Rename("//a", "b"), strict=True)
        assert exc.value.denials

    def test_strict_passes_when_clean(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("update", "//a")]
        )
        view = view_for(builder, doc, policy)
        result = sx.apply(view, Rename("//a", "b"), strict=True)
        assert result.fully_applied

    def test_script_sees_intermediate_state(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>",
            [("read", "//node()"), ("update", "//node()")],
        )
        view = view_for(builder, doc, policy)
        script = UpdateScript(
            (Rename("//a", "b"), Rename("//b", "c"))
        )
        result = sx.apply(view, script)
        assert serialize(result.document) == "<r><c/></r>"

    def test_script_merges_denials(self, sx, builder):
        doc, policy = make_db(
            "<r><a/><keep/></r>",
            [("read", "//node()"), ("update", "//a")],
        )
        view = view_for(builder, doc, policy)
        script = UpdateScript(
            (Rename("//a", "b"), Rename("//keep", "x"))
        )
        result = sx.apply(view, script)
        assert len(result.affected) == 1
        assert len(result.denials) == 1

    def test_source_never_mutated(self, sx, builder):
        doc, policy = make_db(
            "<r><a/></r>", [("read", "//node()"), ("update", "//a")]
        )
        view = view_for(builder, doc, policy)
        sx.apply(view, Rename("//a", "b"))
        assert serialize(doc) == "<r><a/></r>"
