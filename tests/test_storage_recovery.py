"""Strict vs lenient loading of damaged database files."""

import pytest

from repro.errors import ReproError, StorageCorrupt, StorageError
from repro.storage import LoadReport, load_database, load_from_file

GOOD = (
    '<securedb version="1">'
    '<subjects>'
    '<role name="staff"/>'
    '<user name="alice"><isa>staff</isa></user>'
    "</subjects>"
    "<policy>"
    '<rule effect="accept" privilege="read" subject="staff" '
    'priority="1" path="//*"/>'
    "</policy>"
    "<document><r><a/></r></document>"
    "</securedb>"
)


def lenient(text):
    report = LoadReport()
    db = load_database(text, mode="lenient", report=report)
    return db, report


class TestModes:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            load_database(GOOD, mode="casual")

    def test_clean_file_loads_identically_in_both_modes(self):
        strict_db = load_database(GOOD)
        lenient_db, report = lenient(GOOD)
        assert report.clean
        assert list(strict_db.policy.facts()) == list(lenient_db.policy.facts())
        assert strict_db.subjects.subjects == lenient_db.subjects.subjects

    def test_taxonomy(self):
        assert issubclass(StorageCorrupt, StorageError)
        assert issubclass(StorageError, ReproError)
        assert issubclass(StorageError, ValueError)


class TestLenientRecovery:
    def test_bad_rule_dropped_good_ones_kept(self):
        text = GOOD.replace(
            "<policy>",
            '<policy><rule effect="accept" privilege="read" '
            'subject="ghost" priority="2" path="//*"/>',
        )
        db, report = lenient(text)
        assert len(db.policy) == 1
        assert any("ghost" in str(p) for p in report.problems)
        assert all(p.section == "policy" for p in report.problems)

    def test_unparseable_priority_dropped(self):
        text = GOOD.replace('priority="1"', 'priority="soon"')
        db, report = lenient(text)
        assert len(db.policy) == 0
        assert not report.clean

    def test_bad_effect_dropped(self):
        text = GOOD.replace('effect="accept"', 'effect="maybe"')
        db, report = lenient(text)
        assert len(db.policy) == 0
        assert any("maybe" in str(p) for p in report.problems)

    def test_dangling_isa_dropped_subject_kept(self):
        text = GOOD.replace("<isa>staff</isa>", "<isa>ghost</isa>")
        db, report = lenient(text)
        assert "alice" in db.subjects.users
        assert any("isa" in str(p) for p in report.problems)

    def test_unknown_subject_kind_dropped(self):
        text = GOOD.replace('<role name="staff"/>', '<robot name="staff"/>')
        db, report = lenient(text)
        # The robot entry is dropped; the rule referencing it drops too.
        assert "staff" not in db.subjects.subjects
        assert len(db.policy) == 0
        sections = {p.section for p in report.problems}
        assert sections == {"subjects", "policy"}

    def test_missing_section_treated_as_empty(self):
        text = '<securedb version="1"><document><r/></document></securedb>'
        db, report = lenient(text)
        assert len(db.policy) == 0
        assert len(report.problems) == 2  # subjects + policy
        assert db.document.root is not None

    def test_extra_document_roots_first_kept(self):
        text = GOOD.replace("<r><a/></r>", "<r><a/></r><second/>")
        db, report = lenient(text)
        assert db.document.label(db.document.root) == "r"
        assert any("kept the first" in str(p) for p in report.problems)

    def test_unsupported_version_loaded_with_warning(self):
        text = GOOD.replace('version="1"', 'version="999"')
        db, report = lenient(text)
        assert db.document.root is not None
        assert any("version" in str(p) for p in report.problems)

    def test_committed_data_never_lost(self):
        # Everything valid in a half-broken file must survive recovery.
        text = GOOD.replace(
            "<policy>",
            '<policy><rule effect="deny" privilege="read" '
            'subject="nobody" priority="0" path="//*"/>',
        )
        db, report = lenient(text)
        assert not report.clean
        assert [r.subject for r in db.policy] == ["staff"]
        session = db.login("alice")
        assert "<a/>" in session.read_xml() or "<a>" in session.read_xml()

    def test_report_str_lists_problems(self):
        _, report = lenient(GOOD.replace('effect="accept"', 'effect="maybe"'))
        assert "problem(s) dropped" in str(report)
        clean_report = LoadReport(source="x")
        assert "cleanly" in str(clean_report)


class TestCorruptBeyondRecovery:
    def test_truncated_xml_is_corrupt_in_both_modes(self):
        truncated = GOOD[: len(GOOD) // 2]
        with pytest.raises(StorageCorrupt):
            load_database(truncated)
        with pytest.raises(StorageCorrupt):
            load_database(truncated, mode="lenient")

    def test_wrong_root_is_corrupt(self):
        with pytest.raises(StorageCorrupt):
            load_database("<not-a-db/>", mode="lenient")


class TestActionableErrors:
    def test_file_path_in_strict_error(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text(GOOD.replace('effect="accept"', 'effect="maybe"'))
        with pytest.raises(StorageError) as info:
            load_from_file(str(path))
        assert str(path) in str(info.value)
        assert "maybe" in str(info.value)

    def test_file_path_in_corrupt_error(self, tmp_path):
        path = tmp_path / "torn.xml"
        path.write_text(GOOD[:40])
        with pytest.raises(StorageCorrupt) as info:
            load_from_file(str(path))
        assert str(path) in str(info.value)
        assert ".bak" in str(info.value)

    def test_element_context_in_strict_error(self):
        text = GOOD.replace('priority="1"', "")
        with pytest.raises(StorageError) as info:
            load_database(text)
        assert "rule" in str(info.value)
        assert "priority" in str(info.value)

    def test_unknown_subject_rule_error_names_priority(self):
        text = GOOD.replace('subject="staff"', 'subject="ghost"')
        with pytest.raises(StorageError) as info:
            load_database(text)
        assert "priority 1" in str(info.value)
        assert "ghost" in str(info.value)
