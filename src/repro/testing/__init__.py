"""Test-support utilities that ship with the library.

:mod:`repro.testing.faults` provides the fault-injection harness the
update executor and the storage layer consult at named kill-points; the
crash-safety test suites arm it to simulate failures at every point.

:mod:`repro.testing.diskfaults` provides the disk-fault shim the
storage and WAL layers route their file I/O through; the integrity
suites arm it to simulate ``EIO``/``ENOSPC``, short writes, and flip
bits at rest (ISSUE 10).
"""

from .diskfaults import (
    DISK_ERRORS,
    DISK_OPS,
    DiskFaultInjector,
    FaultyFile,
    disk,
    flip_bit,
)
from .faults import (
    KILL_POINTS,
    FaultInjector,
    InjectedFault,
    faults,
    inject,
    kill_point,
)

__all__ = [
    "DISK_ERRORS",
    "DISK_OPS",
    "DiskFaultInjector",
    "FaultInjector",
    "FaultyFile",
    "InjectedFault",
    "KILL_POINTS",
    "disk",
    "faults",
    "flip_bit",
    "inject",
    "kill_point",
]
