"""Online integrity scrubbing (ISSUE 10).

Covers the :class:`~repro.scrub.Scrubber`'s conclusions (clean pass,
benign live tail, non-tail quarantine, checkpoint rot), the resumable
budgeted cursor, how the rest of the stack honours a quarantine
(streams gap, strict recovery refuses, lenient recovery stops), the
retention-prune race against an active :class:`~repro.wal.WalStream`,
and the Hypothesis property that a single flipped bit anywhere in a
segment is *detected* -- by scrub or by replay -- and never yields a
divergent recovered state.
"""

import os
import shutil

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.errors import WalCorruptionError, WalStreamGap
from repro.scrub import ScrubReport, Scrubber, scrub_directory
from repro.testing.diskfaults import disk, flip_bit
from repro.wal import (
    QUARANTINE_SUFFIX,
    WalStream,
    WriteAheadLog,
    list_checkpoints,
    recover,
)

from tests.wal.conftest import append_script, editors_database, state_of

pytestmark = pytest.mark.scrub


@pytest.fixture(autouse=True)
def clean_disk():
    disk.reset()
    yield
    disk.reset()


def segment_paths(wal_dir):
    return sorted(
        os.path.join(wal_dir, name)
        for name in os.listdir(wal_dir)
        if name.startswith("segment-") and name.endswith(".wal")
    )


def logged_directory(tmp_path, commits=3, **wal_kwargs):
    """A closed log directory: checkpoint + ``commits`` real commits."""
    wal_dir = str(tmp_path / "db.wal")
    db = editors_database()
    wal = WriteAheadLog(wal_dir, **wal_kwargs)
    db.attach_wal(wal)
    wal.checkpoint(db)
    for i in range(commits):
        db.login("w1").execute(append_script(f"entry{i}"))
    expected = state_of(db)
    db.detach_wal().close()
    return wal_dir, expected


class TestCleanPass:
    def test_clean_directory_scrubs_clean(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        report = scrub_directory(wal_dir)
        assert report.clean
        assert report.pass_completed
        assert not report.findings
        assert report.records_verified >= 4  # checkpoint marker + commits
        assert report.segments_verified >= 1
        assert report.checkpoints_verified == 1
        assert report.bytes_verified > 0

    def test_counters_accumulate_across_passes(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        scrubber = Scrubber(wal_dir)
        first = scrubber.run()
        scrubber.run()
        counters = scrubber.counters
        assert counters["passes"] == 2
        assert counters["steps"] == 2
        assert counters["records_verified"] == 2 * first.records_verified
        assert counters["segments_quarantined"] == 0
        assert counters["last_full_pass"] > 0.0

    def test_live_torn_tail_is_benign(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        last = segment_paths(wal_dir)[-1]
        with open(last, "ab") as handle:
            handle.write(b"\x99\x01")  # a half-flushed append
        report = scrub_directory(wal_dir)
        assert report.clean  # benign findings don't dirty the report
        assert len(report.findings) == 1
        assert report.findings[0].benign
        assert not report.findings[0].quarantined
        assert not os.path.exists(last + QUARANTINE_SUFFIX)

    def test_read_eio_reports_but_never_quarantines(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        scrubber = Scrubber(wal_dir)
        disk.arm("read", "eio", match="segment-")
        report = scrubber.step()
        assert report.findings  # the sick read was surfaced
        assert not report.quarantined
        assert scrubber.counters["read_errors"] == 1
        assert not any(
            name.endswith(QUARANTINE_SUFFIX) for name in os.listdir(wal_dir)
        )
        # the device recovered: the next pass verifies everything
        assert scrubber.run().clean


class TestQuarantine:
    def flip_first_record(self, wal_dir):
        """Flip a payload bit of the *first* record of the last segment
        (intact records follow it, so this is provably non-tail)."""
        last = segment_paths(wal_dir)[-1]
        # MAGIC is 10 bytes, then [4B len][4B crc]; byte 20 sits inside
        # the first record's JSON payload.
        flip_bit(last, 20, bit=3)
        return last

    def test_non_tail_corruption_is_quarantined(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        damaged = self.flip_first_record(wal_dir)
        report = scrub_directory(wal_dir)
        assert not report.clean
        assert len(report.quarantined) == 1
        finding = report.quarantined[0]
        assert finding.path == damaged
        assert "non-tail" in finding.reason
        assert os.path.exists(damaged + QUARANTINE_SUFFIX)

    def test_already_quarantined_segments_are_reported(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        self.flip_first_record(wal_dir)
        scrubber = Scrubber(wal_dir)
        scrubber.run()
        report = scrubber.run()  # second pass sees the sidecar marker
        assert not report.clean
        assert len(report.quarantined) == 1
        assert "already quarantined" in report.quarantined[0].reason
        # only the first pass *performed* a quarantine; both reported one
        assert scrubber.counters["segments_quarantined"] == 2

    def test_stream_gaps_on_a_quarantined_segment(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        self.flip_first_record(wal_dir)
        scrub_directory(wal_dir)
        stream = WalStream(wal_dir)
        with pytest.raises(WalStreamGap) as excinfo:
            while True:
                if not stream.poll():
                    break
        assert excinfo.value.oldest_available >= 1
        assert "quarantined" in str(excinfo.value)

    def test_strict_recovery_refuses_quarantined_damage(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        self.flip_first_record(wal_dir)
        scrub_directory(wal_dir)
        with pytest.raises(WalCorruptionError, match="quarantined"):
            recover(wal_dir, strict=True)

    def test_lenient_recovery_stops_before_the_damage(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        self.flip_first_record(wal_dir)
        scrub_directory(wal_dir)
        result = recover(wal_dir)
        # nothing in (or after) the quarantined segment was replayed,
        # and the result says so instead of pretending to be clean
        assert not result.report.clean
        assert "quarantined" in str(result.report)
        assert result.replayed == 0


class TestBudgetedCursor:
    def test_budget_splits_a_pass_across_steps(self, tmp_path):
        # Tiny segments force several files; a 1-byte budget verifies
        # exactly one segment per step.
        wal_dir, _ = logged_directory(
            tmp_path, commits=4, segment_bytes=256
        )
        segments = segment_paths(wal_dir)
        assert len(segments) >= 3
        scrubber = Scrubber(wal_dir, budget_bytes=1)
        steps = []
        while True:
            report = scrubber.step()
            steps.append(report)
            if report.pass_completed:
                break
        assert len(steps) > 1  # the cursor really resumed mid-pass
        assert all(not step.pass_completed for step in steps[:-1])
        assert sum(s.segments_verified for s in steps) == len(segments)
        counters = scrubber.counters
        assert counters["passes"] == 1
        assert counters["steps"] == len(steps)
        # a full unbudgeted pass verifies the same record population
        assert counters["records_verified"] == (
            scrub_directory(wal_dir).records_verified
        )

    def test_segments_pruned_between_steps_are_skipped(self, tmp_path):
        wal_dir, _ = logged_directory(
            tmp_path, commits=4, segment_bytes=256
        )
        scrubber = Scrubber(wal_dir, budget_bytes=1)
        scrubber.step()  # cursor now rests after the first segment
        for stale in segment_paths(wal_dir)[1:-1]:
            os.unlink(stale)  # retention moved the horizon mid-pass
        report = scrubber.step(budget_bytes=0)
        assert report.pass_completed
        assert report.clean

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Scrubber(str(tmp_path), budget_bytes=0)
        with pytest.raises(ValueError):
            Scrubber(str(tmp_path), budget_bytes=-5)

    def test_run_on_an_empty_directory(self, tmp_path):
        report = Scrubber(str(tmp_path)).run()
        assert report.clean and report.pass_completed
        assert report.segments_verified == 0


class TestCheckpointRot:
    def rot_checkpoint(self, wal_dir):
        """Damage the snapshot *body* without touching its header."""
        path = list_checkpoints(wal_dir)[-1].path
        flip_bit(path, -10)
        return path

    def test_shallow_scrub_only_checks_the_header(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        self.rot_checkpoint(wal_dir)
        assert scrub_directory(wal_dir).clean  # header still present

    def test_deep_scrub_catches_body_rot(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        path = self.rot_checkpoint(wal_dir)
        report = scrub_directory(wal_dir, deep=True)
        assert not report.clean
        finding = [f for f in report.findings if f.kind == "checkpoint"][0]
        assert finding.path == path
        assert "sha256 mismatch" in finding.reason

    def test_deep_scrub_passes_an_intact_checkpoint(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        report = scrub_directory(wal_dir, deep=True)
        assert report.clean
        assert report.checkpoints_verified == 1

    def test_missing_integrity_header_is_a_failure(self, tmp_path):
        wal_dir, _ = logged_directory(tmp_path)
        path = list_checkpoints(wal_dir)[-1].path
        text = open(path, encoding="utf-8").read()
        body = "\n".join(
            line for line in text.splitlines()
            if "repro-integrity" not in line
        )
        open(path, "w", encoding="utf-8").write(body)
        scrubber = Scrubber(wal_dir)
        report = scrubber.run()
        assert not report.clean
        assert scrubber.counters["checkpoint_failures"] == 1


class TestRetentionRace:
    def test_prune_under_an_active_stream_is_a_clean_gap(self, tmp_path):
        """Retention pruning racing a lagging follower must yield a
        WalStreamGap pointing at the true new horizon -- never a
        half-read pruned segment or silently skipped records."""
        wal_dir = str(tmp_path / "db.wal")
        db = editors_database()
        wal = WriteAheadLog(
            wal_dir, segment_bytes=256, retain_checkpoints=1
        )
        db.attach_wal(wal)
        wal.checkpoint(db)
        db.login("w1").execute(append_script("early"))
        stream = WalStream(wal_dir)
        consumed = stream.poll()
        assert consumed  # the follower is mid-log, cursor in old segments
        # the primary surges ahead; retention prunes the follower's past
        for i in range(4):
            db.login("w1").execute(append_script(f"late{i}"))
            wal.checkpoint(db)
        with pytest.raises(WalStreamGap) as excinfo:
            for _ in range(10):
                stream.poll()
        gap = excinfo.value
        oldest_on_disk = min(
            int(os.path.basename(p)[8:18]) for p in segment_paths(wal_dir)
        )
        assert gap.oldest_available == oldest_on_disk
        assert gap.next_lsn == stream.next_lsn
        db.detach_wal().close()


def build_template(root):
    """One closed log directory reused by every Hypothesis example,
    plus every state a truncated replay may legally land on."""
    wal_dir = os.path.join(root, "template.wal")
    db = editors_database()
    wal = WriteAheadLog(wal_dir)
    db.attach_wal(wal)
    wal.checkpoint(db)
    states = [state_of(db)]  # replaying zero commits is legal
    for i in range(4):
        db.login("w1").execute(append_script(f"flip{i}"))
        states.append(state_of(db))
    db.detach_wal().close()
    return wal_dir, states


@pytest.fixture(scope="module")
def flip_template(tmp_path_factory):
    wal_dir, states = build_template(str(tmp_path_factory.mktemp("flip")))
    size = sum(os.path.getsize(p) for p in segment_paths(wal_dir))
    return wal_dir, states, size


class TestBitFlipProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(offset=st.integers(min_value=0, max_value=4095), bit=st.integers(0, 7))
    @example(offset=0, bit=7)  # the magic header
    @example(offset=10, bit=0)  # the first record's length field
    def test_any_single_bit_flip_is_detected_never_divergent(
        self, flip_template, tmp_path, offset, bit
    ):
        template, states, total = flip_template
        offset %= total  # map the drawn offset onto the real byte space
        work = os.path.join(
            str(tmp_path), f"flip-{offset}-{bit}.wal"
        )
        if os.path.exists(work):
            shutil.rmtree(work)
        shutil.copytree(template, work)
        # locate the segment file the flat offset lands in
        remaining = offset
        for path in segment_paths(work):
            size = os.path.getsize(path)
            if remaining < size:
                flip_bit(path, remaining, bit=bit)
                break
            remaining -= size
        report = scrub_directory(work, deep=True)
        # CRC32 detects every single-bit error, so the flip is either
        # surfaced by scrub (a finding: quarantine or benign tail) or
        # caught by replay -- and the recovered state must land on a
        # legal prefix state, never a silently divergent one.
        result = recover(work)
        assert state_of(result.database) in states
        detected = (
            bool(report.findings)
            or result.torn is not None
            or not result.report.clean
        )
        assert detected, (
            f"bit flip at offset {offset} bit {bit} went undetected"
        )
