"""E21 (added): the serving layer under mixed concurrent load.

What the concurrent front-end buys, measured two ways:

**Overload.**  A small admission budget is hammered by many more
threads than it admits.  In ``block`` mode every request eventually
runs but queueing time goes straight into client latency; in ``shed``
mode the excess fails fast with :class:`~repro.errors.OverloadError`
and the requests that *are* admitted keep a bounded tail -- p99 of
completed requests under shed must stay below blocked-mode p99.

**Contention.**  Two serving front-ends over one database race their
commits (their write locks do not know about each other), so every
write risks a :class:`~repro.errors.ConcurrentUpdateError`.  The
retry/backoff schedule must resolve >= 95% of contended commits with
zero client-visible commit-race errors.

Rows: scenario | requests | completed | shed | p50 | p99.  The smoke
variant runs the same invariants at toy sizes (no timing bar) so the
lane stays meaningful on loaded CI machines.
"""

import time
from threading import Lock

import pytest

from conftest import ILLNESSES, print_series, synthetic_hospital

from repro.errors import DeadlineExceeded, OverloadError
from repro.serving import DatabaseServer, RetryPolicy
from repro.testing.faults import run_threads
from repro.xupdate import UpdateContent

PATIENTS = 200
THREADS = 8
ROUNDS = 12
WRITE_EVERY = 4  # every 4th request per thread is a write

FAST_RETRY = RetryPolicy(max_attempts=64, base=0.0005, cap=0.01)


def percentile(latencies, q):
    """The q-quantile (0..1) of a non-empty latency sample."""
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def run_mixed_load(server, threads=THREADS, rounds=ROUNDS):
    """Drive a mixed read/write load; returns (latencies of completed
    requests, counts dict).  Ungoverned exceptions fail the test."""
    latencies = []
    counts = {"completed": 0, "shed": 0, "deadline": 0}
    ledger = Lock()

    def worker(index):
        for round_ in range(rounds):
            write = (index + round_) % WRITE_EVERY == 0
            target = (index * rounds + round_) % PATIENTS
            started = time.perf_counter()
            try:
                if write:
                    server.execute(
                        "laporte",
                        UpdateContent(
                            f"//patient{target:05d}/diagnosis",
                            ILLNESSES[round_ % len(ILLNESSES)],
                        ),
                    )
                else:
                    server.query("laporte", "count(//diagnosis)")
            except OverloadError:
                with ledger:
                    counts["shed"] += 1
                continue
            except DeadlineExceeded:
                with ledger:
                    counts["deadline"] += 1
                continue
            elapsed = time.perf_counter() - started
            with ledger:
                latencies.append(elapsed)
                counts["completed"] += 1

    errors = [e for e in run_threads(worker, threads) if e is not None]
    assert not errors, [f"{type(e).__name__}: {e}" for e in errors]
    return latencies, counts


def overloaded_server(db, overload):
    """A deliberately under-provisioned server: budget of 2 against
    THREADS hammering threads."""
    return DatabaseServer(
        db, retry=FAST_RETRY, max_in_flight=2, overload=overload
    )


def test_e21_shed_mode_bounds_the_latency_tail():
    block_lat, block_counts = run_mixed_load(
        overloaded_server(synthetic_hospital(PATIENTS), "block")
    )
    shed_lat, shed_counts = run_mixed_load(
        overloaded_server(synthetic_hospital(PATIENTS), "shed")
    )
    rows = [
        ("scenario", "requests", "completed", "shed", "p50 ms", "p99 ms"),
        (
            "block",
            THREADS * ROUNDS,
            block_counts["completed"],
            block_counts["shed"],
            f"{percentile(block_lat, 0.5) * 1000:.2f}",
            f"{percentile(block_lat, 0.99) * 1000:.2f}",
        ),
        (
            "shed",
            THREADS * ROUNDS,
            shed_counts["completed"],
            shed_counts["shed"],
            f"{percentile(shed_lat, 0.5) * 1000:.2f}",
            f"{percentile(shed_lat, 0.99) * 1000:.2f}",
        ),
    ]
    print_series(
        f"E21 overload ({THREADS} threads, budget 2)", rows
    )
    # block mode completes everything but pays for it in queueing
    assert block_counts["completed"] == THREADS * ROUNDS
    assert block_counts["shed"] == 0
    # shed mode rejected real work...
    assert shed_counts["shed"] > 0
    assert shed_counts["completed"] + shed_counts["shed"] == THREADS * ROUNDS
    # ...and in exchange the completed requests kept a bounded tail
    assert percentile(shed_lat, 0.99) <= percentile(block_lat, 0.99)


def contended_commit_run(db, front_ends=2, threads=4, writes=6):
    """Race ``threads`` writers across ``front_ends`` servers over one
    database; returns (servers, total writes issued)."""
    servers = [
        DatabaseServer(db, retry=FAST_RETRY) for _ in range(front_ends)
    ]

    def worker(index):
        server = servers[index % front_ends]
        for round_ in range(writes):
            target = (index * writes + round_) % PATIENTS
            server.execute(
                "laporte",
                UpdateContent(
                    f"//patient{target:05d}/diagnosis",
                    ILLNESSES[round_ % len(ILLNESSES)],
                ),
            )

    errors = [e for e in run_threads(worker, threads) if e is not None]
    assert not errors, [f"{type(e).__name__}: {e}" for e in errors]
    return servers, threads * writes


def test_e21_retry_resolves_contended_commits():
    db = synthetic_hospital(PATIENTS)
    servers, issued = contended_commit_run(db)
    commits = sum(s.stats()["commits"] for s in servers)
    races = sum(s.stats()["commit_races"] for s in servers)
    exhausted = sum(s.stats()["retry_exhausted"] for s in servers)
    retries = sum(s.stats()["retries"] for s in servers)
    print_series(
        "E21 contention (2 front-ends, one database)",
        [
            ("writes issued", issued),
            ("commits", commits),
            ("commit races absorbed", races),
            ("backoff sleeps", retries),
            ("retry exhausted", exhausted),
        ],
    )
    # zero client-visible ConcurrentUpdateError: run_threads captured
    # no exceptions, so every race was absorbed or governed
    assert commits + exhausted == issued
    # >= 95% of contended commits resolved by retry/backoff
    assert commits >= 0.95 * issued
    assert db.version == commits


def test_e21_mixed_load_timing(benchmark):
    """Machine-readable timing of one mixed-load run through a
    provisioned server (budget == thread count: no queueing, no shed)
    for regression tracking via ``--benchmark-json``."""
    db = synthetic_hospital(PATIENTS)
    server = DatabaseServer(
        db, retry=FAST_RETRY, max_in_flight=THREADS, overload="block"
    )

    def run():
        return run_mixed_load(server, threads=THREADS, rounds=4)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert server.stats()["retry_exhausted"] == 0


@pytest.mark.parametrize("overload", ["block", "shed"])
def test_e21_smoke(overload):
    """Tiny-size variant for loaded machines: counter invariants only,
    no timing bar."""
    db = synthetic_hospital(24)
    server = DatabaseServer(
        db, retry=FAST_RETRY, max_in_flight=2, overload=overload
    )
    latencies, counts = run_mixed_load(server, threads=4, rounds=4)
    assert counts["completed"] + counts["shed"] == 16
    if overload == "block":
        assert counts["shed"] == 0
    stats = server.stats()
    assert stats["retry_exhausted"] == 0
    assert stats["commits"] == server.stats()["version"]
