"""The security policy: prioritized accept/deny rules (paper section 4.3).

A policy is the paper's set ``P`` of facts
``rule(accept|deny, privilege, path, subject, t)`` where ``t`` is the
priority -- "the timestamp indicating when the command was issued plays
the priority role.  The last issued command has the priority over the
previous ones and possibly cancels them."

:class:`Policy` therefore assigns strictly increasing priorities
automatically (explicit priorities are accepted for reproducing the
paper's numbered examples) and offers the administration verbs
``grant`` / ``deny``.  Rule paths may reference the ``$USER`` variable,
bound at evaluation time to the session user's login (rule 5 of the
example policy).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ReproError
from ..xpath.parser import parse_xpath
from .privileges import Privilege
from .subjects import SubjectHierarchy

__all__ = [
    "Effect",
    "SecurityRule",
    "Policy",
    "PolicyError",
    "PolicyLintWarning",
]


class PolicyError(ReproError, ValueError):
    """Invalid rule: unknown subject, bad path, duplicate priority..."""


@dataclass(frozen=True)
class PolicyLintWarning:
    """One suspicious rule found by :meth:`Policy.lint`.

    Attributes:
        rule: the rule the warning is about.
        kind: ``"no-audience"`` (no declared user can ever match the
            rule's subject), ``"empty-path"`` (the path selects no node
            of the document for any applicable user), or ``"dead"``
            (every node it addresses is re-decided by later rules, so
            under axiom 14's latest-rule-wins resolution the rule can
            never determine an outcome).
        detail: human-readable explanation.
    """

    rule: SecurityRule
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.rule} -- {self.detail}"


#: Rule effects, the paper's first ``rule/5`` argument.
ACCEPT = "accept"
DENY = "deny"
Effect = str


@dataclass(frozen=True)
class SecurityRule:
    """One fact ``rule(effect, privilege, path, subject, priority)``."""

    effect: Effect
    privilege: Privilege
    path: str
    subject: str
    priority: int

    def __post_init__(self) -> None:
        if self.effect not in (ACCEPT, DENY):
            raise PolicyError(f"effect must be accept or deny, got {self.effect!r}")

    def __str__(self) -> str:
        return (
            f"rule({self.effect},{self.privilege},{self.path},"
            f"{self.subject},{self.priority})"
        )


class Policy:
    """An ordered set of security rules with unique priorities.

    Args:
        subjects: the hierarchy rules must reference; subjects are
            validated at insertion time.
    """

    def __init__(self, subjects: SubjectHierarchy) -> None:
        self._subjects = subjects
        self._rules: List[SecurityRule] = []
        self._next_priority = itertools.count(1)
        self._listeners: List[Callable[..., None]] = []

    # ------------------------------------------------------------------
    # mutation listeners (the write-ahead log's capture hook)
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[..., None]) -> None:
        """Call ``listener(op, *args)`` after every successful mutation:
        ``("accept"|"deny", privilege, path, subject, priority)`` and
        ``("revoke", priority)``.  Re-dispatching the events (with the
        recorded explicit priorities) against a fresh policy reproduces
        this one exactly."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[..., None]) -> None:
        """Remove a listener added with :meth:`subscribe` (idempotent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, op: str, *args) -> None:
        for listener in list(self._listeners):
            listener(op, *args)

    # ------------------------------------------------------------------
    # administration verbs
    # ------------------------------------------------------------------
    def grant(
        self,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int] = None,
    ) -> SecurityRule:
        """Add an accept rule; returns the recorded rule."""
        return self._add(ACCEPT, privilege, path, subject, priority)

    def deny(
        self,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int] = None,
    ) -> SecurityRule:
        """Add a deny rule; returns the recorded rule."""
        return self._add(DENY, privilege, path, subject, priority)

    def _add(
        self,
        effect: Effect,
        privilege: "str | Privilege",
        path: str,
        subject: str,
        priority: Optional[int],
    ) -> SecurityRule:
        if subject not in self._subjects:
            raise PolicyError(f"unknown subject {subject!r}")
        try:
            parse_xpath(path)
        except ValueError as exc:
            raise PolicyError(f"invalid rule path {path!r}: {exc}") from exc
        if priority is None:
            priority = self._fresh_priority()
        elif any(r.priority == priority for r in self._rules):
            raise PolicyError(f"priority {priority} already used")
        rule = SecurityRule(effect, Privilege.parse(privilege), path, subject, priority)
        self._rules.append(rule)
        self._notify(
            effect, rule.privilege.value, rule.path, rule.subject, rule.priority
        )
        return rule

    def _fresh_priority(self) -> int:
        highest = max((r.priority for r in self._rules), default=0)
        candidate = next(self._next_priority)
        return max(candidate, highest + 1)

    def revoke(self, rule: SecurityRule) -> None:
        """Remove a rule (administration convenience; the paper itself
        models cancellation by issuing a later opposite rule).

        Raises:
            PolicyError: if the rule is not in the policy.
        """
        try:
            self._rules.remove(rule)
        except ValueError:
            raise PolicyError(f"rule not in policy: {rule}") from None
        self._notify("revoke", rule.priority)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SecurityRule]:
        return iter(sorted(self._rules, key=lambda r: r.priority))

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def subjects(self) -> SubjectHierarchy:
        return self._subjects

    def rules_for(self, user: str, privilege: Privilege) -> List[SecurityRule]:
        """Rules applying to ``user`` (via isa closure) for a privilege,
        in increasing priority order."""
        applicable = self._subjects.ancestors(user)
        return [
            r
            for r in self
            if r.privilege is privilege and r.subject in applicable
        ]

    def applicable_rules(self, user: str) -> Tuple[SecurityRule, ...]:
        """All rules applying to ``user`` (via isa closure), every
        privilege, in increasing priority order.

        This tuple is exactly the rule sequence axiom 14 replays when
        deriving the user's permission table, so it doubles as the
        content-based part of the user's permission fingerprint: equal
        tuples (with no ``$USER`` path) imply equal tables.

        Raises:
            repro.security.subjects.SubjectError: if ``user`` is not a
                declared subject.
        """
        applicable = self._subjects.ancestors(user)
        return tuple(r for r in self if r.subject in applicable)

    def facts(self) -> Iterator[Tuple[str, str, str, str, int]]:
        """The paper's ``rule/5`` facts (set P), in priority order."""
        for rule in self:
            yield (rule.effect, rule.privilege.value, rule.path, rule.subject, rule.priority)

    # ------------------------------------------------------------------
    # static-enforcement eligibility tagging
    # ------------------------------------------------------------------
    def automata_eligible_rules(self) -> Tuple[SecurityRule, ...]:
        """The rules whose paths the chain NFA can decide per-node
        (see :mod:`repro.security.static`), in priority order."""
        from .static import automata_eligible

        return tuple(r for r in self if automata_eligible(r))

    def static_eligibility(self, user: str, star_matches_text: bool = True):
        """Privilege -> can ``user``'s checks run statically?

        A privilege lane is eligible when *every* applicable rule for
        it is automata-eligible; one out-of-fragment rule (a predicate,
        a ``$USER`` binding, a reverse axis) sends that lane -- and only
        that lane -- back to the resolver.
        """
        from .static import decider_for

        return decider_for(self, user, star_matches_text).eligibility()

    # ------------------------------------------------------------------
    # consistency linting
    # ------------------------------------------------------------------
    def lint(self, document=None, engine=None) -> List[PolicyLintWarning]:
        """Find rules that can never decide anything.

        Under axiom 14's priority (timestamp) resolution, the latest
        matching rule wins on every node it addresses.  A rule is
        therefore *dead* when, for every declared user it applies to,
        each node its path selects is also selected by some later rule
        for the same privilege and user -- the earlier rule is fully
        shadowed and revoking it changes no outcome.  Dead rules are a
        known source of write-policy inconsistency (an administrator
        believes a grant or deny is in force when it is not), so they
        are worth surfacing even though they are formally harmless.

        Args:
            document: the source document rule paths are evaluated on.
                Without it only the structural ``no-audience`` check
                runs (a path-free analysis cannot see shadowing).
            engine: XPath engine for rule paths; a paper-compat default
                is built if omitted.

        Returns:
            Warnings in rule-priority order; empty means the policy is
            clean.
        """
        warnings: List[PolicyLintWarning] = []
        users = sorted(self._subjects.users)
        audience: dict = {}
        for rule in self:
            aud = [
                u for u in users if rule.subject in self._subjects.ancestors(u)
            ]
            audience[rule] = aud
            if not aud:
                warnings.append(
                    PolicyLintWarning(
                        rule,
                        "no-audience",
                        f"no declared user is (transitively) a member of "
                        f"{rule.subject!r}, so the rule applies to nobody",
                    )
                )
        if document is None:
            return warnings

        if engine is None:
            from ..xpath.engine import XPathEngine

            engine = XPathEngine(
                lone_variable_name_test=True, star_matches_text=True
            )
        winners: set = set()
        selects_anything = {rule: False for rule in self}
        for user in users:
            outcome: dict = {}
            for rule in self:  # __iter__ yields priority order
                if user not in audience[rule]:
                    continue
                selected = engine.select(
                    document, rule.path, variables={"USER": user}
                )
                if len(selected):
                    selects_anything[rule] = True
                for nid in selected:
                    outcome[(rule.privilege, nid)] = rule
            winners.update(outcome.values())
        for rule in self:
            if not audience[rule]:
                continue  # already warned above
            if not selects_anything[rule]:
                warnings.append(
                    PolicyLintWarning(
                        rule,
                        "empty-path",
                        f"path {rule.path!r} selects no node of the current "
                        f"document for any applicable user",
                    )
                )
            elif rule not in winners:
                warnings.append(
                    PolicyLintWarning(
                        rule,
                        "dead",
                        "every node it addresses is re-decided by a later "
                        "rule (axiom 14: latest rule wins), so this rule "
                        "never determines an outcome",
                    )
                )
        return sorted(warnings, key=lambda w: w.rule.priority)
