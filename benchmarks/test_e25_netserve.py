"""E25 (added): what the network front-end's group commit amortizes.

Group commit batches writers that arrive within a short window and
makes the whole batch durable with **one** fsync, so its payoff is the
ratio fsync/execute -- a hardware property.  Two series keep the
numbers honest:

**Write throughput vs concurrent connections (this machine's disk).**
100 / 1,000 / 10,000 real localhost connections, one durable write
each (fsync policy ``always``), against a spawned ``repro serve``
subprocess -- group commit on vs off.  On a fast NVMe/page-cache fsync
(~0.2 ms) the Python execute path (~1 ms) dominates, so the measured
speedup here is modest; the row reports whatever this disk yields,
plus the fsyncs actually saved (the amortization itself is exact:
N commits, ~N/batch fsyncs).  The 10,000-connection row is served out
of process because two in-process ends would exhaust the 20k fd limit.

**Write throughput vs fsync cost (simulated disk).**  The same 1,000
concurrent writers against an in-process server whose WAL fsync is
wrapped with a 5 ms sleep -- the cost of a commodity rotational disk
or a networked block device, the regime group commit exists for.
Here the one-fsync-per-group amortization is the whole bill, and the
grouped mode must clear **>= 5x** ungrouped throughput.

Both series also report p50/p99 per-request write latency: grouping
trades the leader's max_delay_ms window for throughput, and the tails
show the trade staying bounded.

The smoke variant (``-k smoke``) runs tiny versions of both modes and
asserts the invariants (every write acknowledged, groups actually
formed, fsyncs saved) with no timing bars.
"""

import asyncio
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

from conftest import print_series

CONNECTIONS = (100, 1_000, 10_000)
SLOW_FSYNC_S = 0.005
SLOW_DISK_WRITERS = 1_000
CONNECT_WAVE = 500

UPDATE = (
    '<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">'
    '<xupdate:update select="/log/entry">tick</xupdate:update>'
    "</xupdate:modifications>"
)


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


# ---------------------------------------------------------------------
# async client-side load
# ---------------------------------------------------------------------
async def open_clients(host, port, count, user):
    """Open ``count`` sessions in waves (a single accept loop cannot
    absorb 10k simultaneous SYNs)."""
    from repro.netserve import AsyncNetClient

    clients = []
    for wave_start in range(0, count, CONNECT_WAVE):
        wave = range(wave_start, min(wave_start + CONNECT_WAVE, count))

        async def one(_i):
            client = await AsyncNetClient.connect(host, port)
            await client.open_session(user)
            return client

        clients.extend(await asyncio.gather(*(one(i) for i in wave)))
    return clients


async def write_storm(clients, script):
    """Every client issues one durable write concurrently; returns
    (elapsed_seconds, sorted per-request latencies)."""
    latencies = []

    async def one(client):
        t0 = time.perf_counter()
        summary = await client.execute(script)
        latencies.append(time.perf_counter() - t0)
        assert summary["fully_applied"] is True

    t0 = time.perf_counter()
    await asyncio.gather(*(one(c) for c in clients))
    elapsed = time.perf_counter() - t0
    latencies.sort()
    return elapsed, latencies


async def read_storm(clients):
    """Every client issues one query concurrently; returns sorted
    per-request latencies."""
    latencies = []

    async def one(client):
        t0 = time.perf_counter()
        result = await client.query("count(/log/*)")
        latencies.append(time.perf_counter() - t0)
        assert result["type"] == "number"

    await asyncio.gather(*(one(c) for c in clients))
    latencies.sort()
    return latencies


async def drain(clients):
    for client in clients:
        await client.close()


def storm_against(host, port, count, user="w1", script=UPDATE, reads=False):
    async def run():
        clients = await open_clients(host, port, count, user)
        try:
            elapsed, writes = await write_storm(clients, script)
            read_latencies = await read_storm(clients) if reads else []
            return elapsed, writes, read_latencies
        finally:
            await drain(clients)

    return asyncio.run(run())


# ---------------------------------------------------------------------
# server-side stacks
# ---------------------------------------------------------------------
def editors_db():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
    from wal.conftest import editors_database

    return editors_database()


def spawned_server(base, grouped):
    """A ``repro serve`` subprocess over a freshly saved editors
    database; returns (process, host, port)."""
    from repro.storage import save_to_file

    db_path = os.path.join(base, "bench.xmldb")
    save_to_file(editors_db(), db_path)
    command = [
        sys.executable, "-m", "repro.cli", "serve", db_path,
        "--port", "0", "--durability", "always",
        "--max-pipeline", "64", "--workers", "8",
    ]
    if not grouped:
        command.append("--no-group-commit")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+):(\d+)", line)
    assert match, f"serve did not come up: {line!r}"
    return process, match.group(1), int(match.group(2))


def in_process_server(base, grouped, fsync_penalty=0.0):
    """An in-process stack (needed to wrap the WAL's fsync with a
    simulated disk penalty); returns (handle, server, wal)."""
    from repro.netserve import serve_in_thread
    from repro.serving import DatabaseServer
    from repro.wal import WriteAheadLog

    db = editors_db()
    wal = WriteAheadLog(os.path.join(base, "db.wal"), fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)
    if fsync_penalty:
        real_fsync = wal._fsync_now

        def slow_disk_fsync():
            time.sleep(fsync_penalty)
            real_fsync()

        wal._fsync_now = slow_disk_fsync
    server = DatabaseServer(db)
    handle = serve_in_thread(
        server, group_commit=grouped, max_pipeline=64, executor_workers=8
    )
    return handle, server, wal


def final_stats(host, port):
    from repro.netserve import NetClient

    with NetClient(host, port, timeout=30) as client:
        client.open_session("w1")
        return client.stats()


# ---------------------------------------------------------------------
# the timed experiments
# ---------------------------------------------------------------------
def test_e25_write_throughput_vs_connections(tmp_path):
    rows = [(
        "connections", "mode", "commits/s", "p50 ms", "p99 ms",
        "group fsyncs saved", "speedup",
    )]
    read_rows = [(
        "connections", "mode", "read p50 ms", "read p99 ms",
    )]
    for count in CONNECTIONS:
        per_mode = {}
        for grouped in (False, True):
            base = tmp_path / f"c{count}g{int(grouped)}"
            base.mkdir()
            process, host, port = spawned_server(str(base), grouped)
            try:
                elapsed, latencies, reads = storm_against(
                    host, port, count, reads=True
                )
                stats = final_stats(host, port)
            finally:
                process.terminate()
                process.wait(timeout=30)
            assert stats["commits"] >= count
            assert len(reads) == count
            saved = stats.get("group_fsyncs_saved", 0)
            if grouped:
                assert stats["grouped_records"] >= count
                assert saved > 0
            per_mode[grouped] = (count / elapsed, latencies, saved, reads)
        for grouped in (False, True):
            throughput, latencies, saved, reads = per_mode[grouped]
            mode = "grouped" if grouped else "per-request"
            rows.append((
                count,
                mode,
                round(throughput, 1),
                round(percentile(latencies, 0.50) * 1000, 2),
                round(percentile(latencies, 0.99) * 1000, 2),
                saved,
                round(per_mode[True][0] / per_mode[False][0], 2),
            ))
            read_rows.append((
                count,
                mode,
                round(percentile(reads, 0.50) * 1000, 2),
                round(percentile(reads, 0.99) * 1000, 2),
            ))
    print_series(
        "E25 write throughput vs connections (real disk, subprocess)", rows
    )
    print_series("E25 read latency vs connections", read_rows)


def test_e25_amortization_vs_fsync_cost(tmp_path):
    """The fsync-bound regime: with a 5 ms simulated disk, grouped
    commit must clear >= 5x the per-request-fsync throughput."""
    rows = [(
        "fsync", "mode", "commits/s", "p50 ms", "p99 ms",
        "fsyncs spent", "speedup",
    )]
    per_mode = {}
    for grouped in (False, True):
        base = tmp_path / f"slow{int(grouped)}"
        base.mkdir()
        handle, server, wal = in_process_server(
            str(base), grouped, fsync_penalty=SLOW_FSYNC_S
        )
        fsyncs_before = wal.stats["fsyncs"]
        try:
            elapsed, latencies, _ = storm_against(
                handle.host, handle.port, SLOW_DISK_WRITERS
            )
            stats = server.stats()
        finally:
            handle.stop()
        assert stats["commits"] == SLOW_DISK_WRITERS
        fsyncs = stats["wal_fsyncs"] - fsyncs_before
        per_mode[grouped] = (SLOW_DISK_WRITERS / elapsed, latencies, fsyncs)
    speedup = per_mode[True][0] / per_mode[False][0]
    for grouped in (False, True):
        throughput, latencies, fsyncs = per_mode[grouped]
        rows.append((
            f"{SLOW_FSYNC_S * 1000:.0f} ms (simulated)",
            "grouped" if grouped else "per-request",
            round(throughput, 1),
            round(percentile(latencies, 0.50) * 1000, 2),
            round(percentile(latencies, 0.99) * 1000, 2),
            fsyncs,
            round(speedup, 2),
        ))
    print_series("E25 write throughput vs fsync cost (simulated disk)", rows)
    # The headline claim: one fsync amortized over N writers.
    assert per_mode[True][2] < per_mode[False][2] / 5
    assert speedup >= 5.0, rows


# ---------------------------------------------------------------------
# smoke: invariants only, toy sizes, no timing bars
# ---------------------------------------------------------------------
def test_e25_smoke_grouped_and_ungrouped_serve_correctly(tmp_path):
    for grouped in (False, True):
        base = tmp_path / f"smoke{int(grouped)}"
        base.mkdir()
        handle, server, _ = in_process_server(str(base), grouped)
        try:
            elapsed, latencies, reads = storm_against(
                handle.host, handle.port, 24, reads=True
            )
            stats = server.stats()
        finally:
            handle.stop()
        assert stats["commits"] == 24
        assert len(latencies) == 24
        assert len(reads) == 24
        if grouped:
            assert stats["grouped_records"] == 24
            assert stats["group_fsyncs_saved"] > 0
        else:
            assert stats.get("grouped_records", 0) == 0


def test_e25_smoke_slow_disk_grouping_saves_fsyncs(tmp_path):
    handle, server, wal = in_process_server(
        str(tmp_path), grouped=True, fsync_penalty=0.001
    )
    before = wal.stats["fsyncs"]
    try:
        storm_against(handle.host, handle.port, 16)
        stats = server.stats()
    finally:
        handle.stop()
    assert stats["commits"] == 16
    assert stats["wal_fsyncs"] - before < 16
