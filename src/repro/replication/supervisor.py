"""Supervised failover: detect a dead primary, promote a replica.

The :class:`FailoverSupervisor` closes the loop the rest of the
replication stack leaves open: replicas follow and the router routes,
but when the primary dies someone must *decide* -- pick the
most-caught-up healthy replica, drain it to the reachable end of the
old log, and turn it into a full primary with its own write-ahead log.
This module is that someone.

**Failure detection** (:meth:`FailoverSupervisor.heartbeat`) probes
the primary through :meth:`~repro.serving.DatabaseServer.stats` -- the
same ledger operators read -- and folds five signals into one verdict:

* the stats probe itself raising (the server object is gone/broken);
* a poisoned write-ahead log (``wal_failed`` set, or the log already
  detached by the degrade path -- the primary can no longer make
  writes durable);
* a sick disk (``disk_sick``: consecutive commits failed with
  ``EIO``-class disk errors -- the device under the log is dying, and
  a healthy replica on a healthy disk beats a primary on a bad one);
* the circuit breaker stuck open (commit liveness lost);
* the server already fenced (a higher epoch exists somewhere).

A probe with no signals refreshes the supervisor's "last known good"
timestamp; :attr:`primary_failed` holds once signals persist past the
``heartbeat_timeout_ms`` grace window, so one transient blip never
triggers a promotion.

**Promotion** (:meth:`FailoverSupervisor.promote`) is fenced by
epochs: the new primary's log is created at ``old epoch + 1``, the
router refuses the swap unless the epoch strictly increases, and the
deposed primary (if still reachable) is fenced so it can never
acknowledge a write again.  The candidate's rebuilt dedup ledger is
carried over, so a client retrying a write the *old* primary
acknowledged still gets exactly-once semantics from the new one.

Kill-points (``supervisor-before-promote``, ``promote-mid-drain``)
fire before any cluster-visible mutation, so a supervisor that crashes
mid-promotion can simply run :meth:`promote` again.
"""

from __future__ import annotations

import contextlib
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import FailoverError, ReplicaDiverged
from ..serving.server import DatabaseServer
from ..testing.faults import kill_point
from ..wal import WriteAheadLog
from .replica import Replica
from .router import ReplicationRouter

__all__ = ["FailoverSupervisor"]

logger = logging.getLogger("repro.replication")


class FailoverSupervisor:
    """Watches a router's primary; promotes a replica when it dies.

    Args:
        router: the cluster to supervise (primary + read pool).
        promote_dir: base directory for promoted primaries' logs; each
            promotion creates ``epoch-<n>`` beneath it.
        heartbeat_timeout_ms: grace window -- the primary must look
            unhealthy for this long before :attr:`primary_failed`
            holds.  0 fails on the first bad probe.
        fsync: durability policy for the promoted primary's new log
            (same values as :class:`~repro.wal.WriteAheadLog`).
        clock: monotonic time source, injectable for tests.
        server_options: extra keyword arguments for the promoted
            :class:`~repro.serving.DatabaseServer` (retry policy,
            admission bounds, ...).
    """

    def __init__(
        self,
        router: ReplicationRouter,
        *,
        promote_dir: str,
        heartbeat_timeout_ms: float = 500.0,
        fsync: str = "always",
        clock: Callable[[], float] = time.monotonic,
        **server_options: Any,
    ) -> None:
        if heartbeat_timeout_ms < 0:
            raise ValueError("heartbeat_timeout_ms must be >= 0")
        self._router = router
        self._promote_dir = os.path.abspath(promote_dir)
        self._timeout_ms = heartbeat_timeout_ms
        self._fsync = fsync
        self._clock = clock
        self._server_options = dict(server_options)
        self._last_ok = clock()
        self._last_reasons: List[str] = []
        self._stats: Dict[str, int] = {
            "probes": 0,  # heartbeat() calls
            "unhealthy_probes": 0,  # probes that found any signal
            "promotions": 0,  # completed promotions
            "candidates_skipped": 0,  # candidates lost to drain divergence
            "demotions": 0,  # deposed primaries turned into replicas
        }

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def heartbeat(self) -> Dict[str, Any]:
        """One failure-detector probe against the current primary.

        Returns:
            ``{"healthy", "reasons", "age_ms", "epoch"}`` -- the
            verdict, the signals behind it, milliseconds since the
            last healthy probe, and the cluster epoch.
        """
        reasons: List[str] = []
        primary = self._router.primary
        stats: Optional[Dict[str, Any]] = None
        try:
            stats = primary.stats()
        except Exception as exc:  # the probe itself is a signal
            reasons.append(f"stats-probe-failed: {exc}")
        if stats is not None:
            if stats.get("wal_attached"):
                failed = stats.get("wal_failed")
                if failed:
                    reasons.append(f"wal-poisoned: {failed}")
            elif stats.get("wal_degraded", 0):
                reasons.append(
                    "wal-detached: the degrade path gave up on the log"
                )
            if stats.get("disk_sick"):
                reasons.append(
                    "disk-sick: consecutive disk I/O failures on the "
                    "primary's log volume"
                )
            if stats.get("breaker_state") == "open":
                reasons.append("breaker-open: commits are being refused")
            if stats.get("fenced"):
                reasons.append(
                    f"fenced: epoch {stats.get('fenced_at')} exists elsewhere"
                )
        now = self._clock()
        self._stats["probes"] += 1
        if reasons:
            self._stats["unhealthy_probes"] += 1
        else:
            self._last_ok = now
        self._last_reasons = reasons
        return {
            "healthy": not reasons,
            "reasons": reasons,
            "age_ms": max(0.0, (now - self._last_ok) * 1000.0),
            "epoch": self._router.epoch,
        }

    @property
    def primary_failed(self) -> bool:
        """True once unhealthy probes have outlived the grace window.

        Reflects the *last* :meth:`heartbeat` verdict -- callers drive
        the probe loop; this property only folds in the timeout.
        """
        if not self._last_reasons:
            return False
        age_ms = (self._clock() - self._last_ok) * 1000.0
        return age_ms >= self._timeout_ms

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    def promote(self, *, force: bool = False) -> DatabaseServer:
        """Promote the most-caught-up healthy replica to primary.

        The sequence (each step safe to re-run after a crash):

        1. Re-probe; refuse to depose a healthy primary unless
           ``force``.
        2. Pick the non-quarantined replica with the highest applied
           lsn; drain it to the reachable end of the old log (a
           candidate that diverges while draining is quarantined by
           its own checks and the next-best is picked).
        3. Open a fresh log at ``old epoch + 1``, checkpoint the
           candidate's state into it, seed the new server's dedup
           ledger from the candidate's rebuilt one.
        4. Swap the router's primary (it enforces the strict epoch
           increase), retarget the surviving replicas, and fence the
           deposed primary.

        Returns:
            The new primary server.

        Raises:
            FailoverError: the primary still looks healthy (and not
                ``force``), or no eligible replica exists.
            InjectedFault: an armed failover kill-point fired; the
                cluster is unchanged and :meth:`promote` may simply be
                called again.
        """
        kill_point("supervisor-before-promote", epoch=self._router.epoch)
        if not force and self.heartbeat()["healthy"]:
            raise FailoverError(
                "refusing to depose a healthy primary (use force=True "
                "for a planned switchover)",
                reason="primary-healthy",
            )
        deposed = self._router.primary
        candidate = self._drain_best_candidate()
        kill_point(
            "promote-mid-drain",
            replica=candidate.replica_id,
            lsn=candidate.applied_lsn,
        )
        new_epoch = max(self._router.epoch, candidate.epoch) + 1
        new_dir = os.path.join(self._promote_dir, f"epoch-{new_epoch:04d}")
        os.makedirs(new_dir, exist_ok=True)
        database = candidate.database
        if database.wal is not None:  # pragma: no cover - replicas log-less
            database.detach_wal()
        database.set_read_only(False)
        wal = WriteAheadLog(new_dir, fsync=self._fsync, epoch=new_epoch)
        server = DatabaseServer(database, wal=wal, **self._server_options)
        server.checkpoint()  # the new log's durable baseline
        server.dedup.seed(candidate.dedup_entries())
        server.mark_promoted()
        self._router.promote(server)  # enforces the strict epoch increase
        self._router.remove_replica(candidate)
        for survivor in self._router.replicas:
            try:
                survivor.retarget(new_dir)
            except Exception as exc:  # pragma: no cover - defensive
                logger.warning(
                    "replica %s failed to retarget onto %s: %s",
                    survivor.replica_id,
                    new_dir,
                    exc,
                )
        with contextlib.suppress(Exception):
            deposed.fence(new_epoch)  # best effort; it may be truly dead
        self._stats["promotions"] += 1
        self._last_ok = self._clock()
        self._last_reasons = []
        logger.warning(
            "promoted replica %s to primary at epoch %d (log: %s)",
            candidate.replica_id,
            new_epoch,
            new_dir,
        )
        return server

    def _drain_best_candidate(self) -> Replica:
        """The most-caught-up non-quarantined replica, fully drained."""
        while True:
            eligible = [
                r for r in self._router.replicas if not r.quarantined
            ]
            if not eligible:
                raise FailoverError(
                    "no eligible replica: every follower is quarantined "
                    "or the pool is empty",
                    reason="no-candidate",
                )
            candidate = max(eligible, key=lambda r: r.applied_lsn)
            try:
                candidate.sync()  # drain to the reachable end of the log
            except ReplicaDiverged:
                # Quarantined itself while draining; the next selection
                # skips it.  InjectedFault propagates: a simulated
                # crash aborts the whole promotion attempt cleanly.
                self._stats["candidates_skipped"] += 1
                continue
            return candidate

    def demote(self, deposed: DatabaseServer) -> Replica:
        """Re-join a deposed primary's state machine as a follower.

        The recovered old primary observes the cluster's higher epoch
        (fencing itself -- it can never acknowledge again) and a fresh
        :class:`Replica` is seeded from the *new* primary's log and
        added to the router's read pool.

        Raises:
            FailoverError: the new primary has no attached log to
                follow.
        """
        wal = self._router.primary.database.wal
        if wal is None:
            raise FailoverError(
                "the current primary has no write-ahead log; nothing "
                "for a demoted node to follow",
                reason="primary-not-logged",
            )
        deposed.observe_epoch(self._router.epoch)
        replica = Replica(wal.directory)
        self._router.add_replica(replica)
        self._stats["demotions"] += 1
        return replica

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The supervisor's ledger: probe/promotion counters, the last
        probe's signals, the grace window, and the cluster epoch."""
        out: Dict[str, Any] = dict(self._stats)
        out["heartbeat_timeout_ms"] = self._timeout_ms
        out["last_reasons"] = list(self._last_reasons)
        out["primary_failed"] = self.primary_failed
        out["epoch"] = self._router.epoch
        return out
