"""E18 (added, ablation): cross-user rule-path caching in axiom 14.

E16 located the architecture's bottleneck in permission resolution:
every rule path is re-evaluated over the whole source for every user.
Paths that never mention ``$USER`` select the same nodes for *all*
users, so the resolver can cache them per (document, mutation stamp).

Rows: workload | cold resolver | cached resolver.  The paper's policy
has 11 user-independent paths out of 12, so multi-user workloads (the
normal case for a shared database) should approach a 1/users cost.
"""

import pytest

from conftest import synthetic_hospital

from repro.security import PermissionResolver

PATIENTS = 300
USERS = ["beaufort", "laporte", "richard", "robert", "franck"]


@pytest.fixture(scope="module")
def db():
    return synthetic_hospital(PATIENTS)


def resolve_all(db, resolver):
    return [
        resolver.resolve(db.document, db.policy, user) for user in USERS
    ]


def test_e18_five_users_without_cache(benchmark, db):
    resolver = PermissionResolver(cache_paths=False)

    def run():
        return resolve_all(db, resolver)

    tables = benchmark(run)
    assert len(tables) == len(USERS)


def test_e18_five_users_with_cache(benchmark, db):
    resolver = PermissionResolver(cache_paths=True)

    def run():
        return resolve_all(db, resolver)

    tables = benchmark(run)
    assert len(tables) == len(USERS)
