"""Predicate semantics: positional filters, proximity on reverse axes,
boolean coercion, nesting, and the paper-compat lone-variable test."""

import pytest

from repro.xmltree import parse_xml
from repro.xpath import XPathEngine


@pytest.fixture
def doc():
    return parse_xml(
        "<lib>"
        "<book year='1999'><title>one</title></book>"
        "<book year='2005'><title>two</title></book>"
        "<book year='2010'><title>three</title></book>"
        "</lib>"
    )


@pytest.fixture
def engine():
    return XPathEngine()


def titles(doc, engine, path, **kw):
    return [
        doc.string_value(n) for n in engine.select(doc, path, **kw)
    ]


class TestPositional:
    def test_number_predicate_is_position(self, doc, engine):
        assert titles(doc, engine, "/lib/book[2]/title") == ["two"]

    def test_position_function(self, doc, engine):
        assert titles(doc, engine, "/lib/book[position()=3]/title") == ["three"]

    def test_last_function(self, doc, engine):
        assert titles(doc, engine, "/lib/book[last()]/title") == ["three"]

    def test_position_range(self, doc, engine):
        assert titles(doc, engine, "/lib/book[position()>1]/title") == [
            "two",
            "three",
        ]

    def test_positions_restart_per_context_node(self, doc, engine):
        doc2 = parse_xml("<r><g><i>1</i><i>2</i></g><g><i>3</i></g></r>")
        assert titles(doc2, engine, "//g/i[1]") == ["1", "3"]

    def test_reverse_axis_proximity(self, doc, engine):
        """preceding-sibling::*[1] is the *nearest* preceding sibling."""
        got = titles(doc, engine, "/lib/book[3]/preceding-sibling::*[1]/title")
        assert got == ["two"]

    def test_ancestor_proximity(self, doc, engine):
        deep = parse_xml("<a><b><c><d/></c></b></a>")
        got = [
            deep.label(n)
            for n in engine.select(deep, "//d/ancestor::*[1]")
        ]
        assert got == ["c"]

    def test_stacked_predicates_renumber(self, doc, engine):
        # First filter leaves books 2,3; second [1] picks book 2.
        got = titles(doc, engine, "/lib/book[position()>1][1]/title")
        assert got == ["two"]


class TestBooleanPredicates:
    def test_existence_predicate(self, doc, engine):
        assert len(engine.select(doc, "/lib/book[title]")) == 3
        assert engine.select(doc, "/lib/book[isbn]") == []

    def test_attribute_comparison(self, doc, engine):
        assert titles(doc, engine, "/lib/book[@year='2005']/title") == ["two"]

    def test_numeric_attribute_comparison(self, doc, engine):
        assert titles(doc, engine, "/lib/book[@year > 2000]/title") == [
            "two",
            "three",
        ]

    def test_text_comparison(self, doc, engine):
        assert len(engine.select(doc, "//book[title/text()='two']")) == 1

    def test_and_or_in_predicate(self, doc, engine):
        got = titles(
            doc,
            engine,
            "/lib/book[@year > 1999 and @year < 2010]/title",
        )
        assert got == ["two"]

    def test_not_function(self, doc, engine):
        got = titles(doc, engine, "/lib/book[not(@year='2005')]/title")
        assert got == ["one", "three"]

    def test_nested_path_predicate(self, doc, engine):
        got = titles(
            doc, engine, "/lib/book[title[text()='three']]/title"
        )
        assert got == ["three"]

    def test_variable_in_predicate(self, doc, engine):
        got = titles(
            doc,
            engine,
            "/lib/book[@year=$Y]/title",
            variables={"Y": "2010"},
        )
        assert got == ["three"]


class TestLoneVariableExtension:
    def test_disabled_by_default(self, doc):
        engine = XPathEngine()
        # Strict XPath: boolean('robert') is true -> all books match.
        got = engine.select(
            doc, "/lib/book[$USER]", variables={"USER": "book"}
        )
        assert len(got) == 3

    def test_enabled_matches_name(self, doc):
        engine = XPathEngine(lone_variable_name_test=True)
        got = engine.select(
            doc, "/lib/*[$USER]", variables={"USER": "book"}
        )
        assert len(got) == 3
        got = engine.select(
            doc, "/lib/*[$USER]", variables={"USER": "title"}
        )
        assert got == []

    def test_enabled_only_affects_lone_variable(self, doc):
        engine = XPathEngine(lone_variable_name_test=True)
        # A compound predicate keeps standard semantics.
        got = engine.select(
            doc, "/lib/book[$USER or false()]", variables={"USER": "x"}
        )
        assert len(got) == 3


class TestStarMatchesText:
    def test_strict_star_excludes_text(self):
        doc = parse_xml("<a><b>t</b></a>")
        engine = XPathEngine()
        got = engine.select(doc, "//b/*")
        assert got == []

    def test_compat_star_includes_text(self):
        doc = parse_xml("<a><b>t</b></a>")
        engine = XPathEngine(star_matches_text=True)
        got = engine.select(doc, "//b/*")
        assert len(got) == 1
        assert doc.label(got[0]) == "t"

    def test_compat_star_still_excludes_attributes_on_child_axis(self):
        doc = parse_xml('<a x="1"><b/></a>')
        engine = XPathEngine(star_matches_text=True)
        got = engine.select(doc, "/a/*")
        assert [doc.label(n) for n in got] == ["b"]

    def test_named_tests_unaffected(self):
        doc = parse_xml("<a><b>t</b></a>")
        engine = XPathEngine(star_matches_text=True)
        assert len(engine.select(doc, "//b")) == 1
