"""Multi-document collections: lifting the paper's one-document limit.

The paper simplifies its logical formulae by assuming "the database may
contain only one document" (section 3.2), while its deployment target
(Xindice [23]) is a *collection* store.  :class:`SecureCollection`
generalizes the model the way the paper's simplification anticipates:
one subject hierarchy and one security policy govern a set of named
documents, and every per-document derivation (perm, view, secure write)
is exactly the single-document model applied to that document.

Rule paths are interpreted against each document separately -- the
paper's ``rule(accept, read, /patients, staff, t)`` protects the
``/patients`` root of *every* document it matches, which is the natural
reading once several documents share a schema.  Per-document scoping is
expressed in the policy itself by the documents' distinct root labels
(e.g. ``/patients`` vs ``/inventory``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..xmltree.document import XMLDocument
from ..xmltree.parser import parse_xml
from .audit import AuditLog
from .database import SecureXMLDatabase
from .policy import Policy
from .session import Session
from .subjects import SubjectError, SubjectHierarchy
from .view import View
from .write import SecureUpdateResult

__all__ = ["CollectionError", "SecureCollection", "CollectionSession"]


class CollectionError(KeyError):
    """Unknown document name, or a duplicate insertion."""


class SecureCollection:
    """A set of named documents under one subject hierarchy and policy.

    Example::

        collection = SecureCollection()
        collection.subjects.add_user("u")
        collection.policy.grant("read", "//node()", "u")
        collection.add_document("patients", "<patients>...</patients>")
        collection.add_document("wards", "<wards>...</wards>")
        session = collection.login("u")
        session.query("patients", "count(//diagnosis)")
    """

    def __init__(
        self,
        subjects: Optional[SubjectHierarchy] = None,
        policy: Optional[Policy] = None,
    ) -> None:
        self._subjects = subjects if subjects is not None else SubjectHierarchy()
        self._policy = policy if policy is not None else Policy(self._subjects)
        if self._policy.subjects is not self._subjects:
            raise ValueError("policy must reference the collection's subjects")
        self._audit = AuditLog()
        self._databases: Dict[str, SecureXMLDatabase] = {}

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    @property
    def subjects(self) -> SubjectHierarchy:
        return self._subjects

    @property
    def policy(self) -> Policy:
        return self._policy

    @property
    def audit(self) -> AuditLog:
        """One audit log shared by every document's write executor."""
        return self._audit

    # ------------------------------------------------------------------
    # document management
    # ------------------------------------------------------------------
    def add_document(
        self, name: str, source: "str | XMLDocument"
    ) -> SecureXMLDatabase:
        """Add a document (XML text or an existing tree) under ``name``.

        Raises:
            CollectionError: if the name is taken.
        """
        if name in self._databases:
            raise CollectionError(f"document {name!r} already exists")
        document = parse_xml(source) if isinstance(source, str) else source
        database = SecureXMLDatabase(
            document, self._subjects, self._policy, self._audit
        )
        self._databases[name] = database
        return database

    def remove_document(self, name: str) -> None:
        """Drop a document from the collection.

        Raises:
            CollectionError: for an unknown name.
        """
        if name not in self._databases:
            raise CollectionError(f"no document named {name!r}")
        del self._databases[name]

    def database(self, name: str) -> SecureXMLDatabase:
        """The per-document database (the single-document model)."""
        try:
            return self._databases[name]
        except KeyError:
            raise CollectionError(f"no document named {name!r}") from None

    def names(self) -> List[str]:
        """Document names in insertion order."""
        return list(self._databases)

    def __contains__(self, name: str) -> bool:
        return name in self._databases

    def __len__(self) -> int:
        return len(self._databases)

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def login(
        self, user: str, enforcement: str = "materialized"
    ) -> "CollectionSession":
        """Open a collection-wide session for a declared user."""
        if user not in self._subjects:
            raise SubjectError(f"unknown subject {user!r}")
        if not self._subjects.is_user(user):
            raise SubjectError(f"{user!r} is a role; only users can log in")
        return CollectionSession(self, user, enforcement)


class CollectionSession:
    """One user's sessions across every document of a collection.

    Per-document sessions are created lazily and share the collection's
    subjects/policy; each behaves exactly like a single-document
    :class:`~repro.security.session.Session`.
    """

    def __init__(
        self, collection: SecureCollection, user: str, enforcement: str
    ) -> None:
        self._collection = collection
        self._user = user
        self._enforcement = enforcement
        self._sessions: Dict[str, Session] = {}

    @property
    def user(self) -> str:
        return self._user

    def session(self, name: str) -> Session:
        """The per-document session for ``name``."""
        session = self._sessions.get(name)
        if session is None:
            session = self._collection.database(name).login(
                self._user, self._enforcement
            )
            self._sessions[name] = session
        return session

    def view(self, name: str) -> View:
        """The user's authorized view of one document."""
        return self.session(name).view()

    def query(self, name: str, path: str):
        """Evaluate XPath on one document's view."""
        return self.session(name).query(path)

    def query_all(self, path: str) -> Dict[str, object]:
        """Evaluate one expression on every document's view."""
        return {
            name: self.session(name).query(path)
            for name in self._collection.names()
        }

    def execute(
        self, name: str, operation, strict: bool = False
    ) -> SecureUpdateResult:
        """Apply a secure update to one document."""
        return self.session(name).execute(operation, strict=strict)

    def read_xml(self, name: str, indent: Optional[str] = None) -> str:
        """One document's view serialized as XML."""
        return self.session(name).read_xml(indent=indent)
