"""Read/write routing with read-your-writes over stamped versions.

Every commit already stamps the database version it installed (the WAL
records carry it; :class:`~repro.serving.DatabaseServer` exposes it as
``database.version``), so consistency tokens come for free: the router
remembers, per user, the newest version that user has *seen* -- bumped
by their writes and by every read served to them -- and routes a read
to a replica only when the replica's applied version has reached that
token.  That is read-your-writes and monotonic reads in one rule; a
user who never writes may be served arbitrarily stale (but internally
consistent) views.

When no replica is fresh enough, the router *waits out the lag* under
the same :class:`~repro.serving.Deadline` machinery the serving layer
uses everywhere else -- polling the replicas forward within the
request's budget -- and falls through to the primary when the budget
is spent.  Quarantined replicas are never candidates: a diverged
replica never serves a read, period.

Failover additions (ISSUE 9): the router carries the cluster's
**fencing epoch**.  :meth:`ReplicationRouter.promote` swaps in a new
primary only at a strictly higher epoch; afterwards any write arriving
through a reference to the deposed primary is refused with
:class:`~repro.errors.StaleEpochError` (counted as ``fenced_writes``)
-- a lower-epoch server is never allowed to acknowledge again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReplicaDiverged, StaleEpochError
from ..serving.retry import Deadline
from ..serving.server import DatabaseServer
from .replica import Replica

__all__ = ["ReplicationRouter", "RouteDecision"]


@dataclass(frozen=True)
class RouteDecision:
    """Where one read went, and why it was consistent.

    Attributes:
        user: the requesting user.
        token: the user's last-seen version when the read was admitted
            (the read-your-writes floor).
        served_version: the database version the result was actually
            derived from; the consistency guarantee is
            ``served_version >= token``.
        source: ``"primary"`` or the serving replica's id.
        waited: seconds spent waiting for a replica to catch up.
    """

    user: str
    token: int
    served_version: int
    source: str
    waited: float = 0.0


class ReplicationRouter:
    """Routes writes to the primary, reads to fresh-enough replicas.

    Args:
        primary: the write side -- a :class:`DatabaseServer` over the
            logged database.
        replicas: the read pool (may be grown later with
            :meth:`add_replica`).
        max_wait: default budget (seconds) a read may spend waiting for
            a lagging replica before falling through to the primary;
            per-call deadlines override it.  0 never waits.
        poll_replicas: when True (default), a read finding every
            replica stale actively polls them forward (pull-based
            freshening) instead of only sleeping; disable when a
            dedicated apply thread owns the polling.
        clock: monotonic time source, injectable for tests.
        sleep: how to wait between freshness checks, injectable.
        trace: record a :class:`RouteDecision` per read in
            :attr:`decisions` -- the per-request evidence the
            replication lane asserts read-your-writes on.  Unbounded;
            leave off outside tests.
    """

    def __init__(
        self,
        primary: DatabaseServer,
        replicas: Sequence[Replica] = (),
        *,
        max_wait: float = 0.05,
        poll_replicas: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        trace: bool = False,
    ) -> None:
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self._primary = primary
        self._replicas: List[Replica] = list(replicas)
        self._max_wait = max_wait
        self._poll_replicas = poll_replicas
        self._clock = clock
        self._sleep = sleep
        self._tokens: Dict[str, int] = {}
        self._rr = 0  # round-robin cursor over eligible replicas
        self._lock = Lock()
        self._counters: Dict[str, int] = {
            "writes_routed": 0,  # writes sent to the primary
            "reads_to_replicas": 0,  # reads served by a replica
            "reads_to_primary": 0,  # reads that fell through
            "stale_waits": 0,  # reads that waited for replica lag
            "stale_fallthroughs": 0,  # waits that expired -> primary
            "quarantine_skips": 0,  # candidate replicas skipped as diverged
            "promotions": 0,  # primaries swapped in by promote()
            "fenced_writes": 0,  # writes refused at a stale epoch
        }
        self._epoch = primary.epoch
        #: Per-read routing evidence when ``trace`` is on.
        self.decisions: List[RouteDecision] = []
        self._trace = trace

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def primary(self) -> DatabaseServer:
        """The write side."""
        return self._primary

    @property
    def epoch(self) -> int:
        """The cluster's current fencing epoch."""
        return self._epoch

    def promote(self, new_primary: DatabaseServer) -> None:
        """Swap in a freshly promoted primary.

        The new primary must carry a *strictly higher* fencing epoch
        than the router has observed -- the single rule that makes the
        swap safe against a deposed primary still holding references:
        its epoch is now below the router's, so every later write
        through it is refused.

        Raises:
            StaleEpochError: the candidate's epoch does not supersede
                the router's current epoch.
        """
        if new_primary.epoch <= self._epoch:
            raise StaleEpochError(
                f"refusing promotion at epoch {new_primary.epoch}: this "
                f"router has already observed epoch {self._epoch}",
                epoch=new_primary.epoch,
                current=self._epoch,
            )
        with self._lock:
            self._primary = new_primary
            self._epoch = new_primary.epoch
            self._counters["promotions"] += 1

    @property
    def replicas(self) -> Tuple[Replica, ...]:
        """The current read pool (quarantined members included -- they
        are skipped at routing time, not evicted)."""
        return tuple(self._replicas)

    def add_replica(self, replica: Replica) -> None:
        """Grow the read pool."""
        self._replicas.append(replica)

    def remove_replica(self, replica: Replica) -> None:
        """Shrink the read pool (a dead or decommissioned follower)."""
        self._replicas.remove(replica)

    # ------------------------------------------------------------------
    # consistency tokens
    # ------------------------------------------------------------------
    def token(self, user: str) -> int:
        """The newest version ``user`` has seen through this router."""
        with self._lock:
            return self._tokens.get(user, 0)

    def _advance_token(self, user: str, version: int) -> None:
        with self._lock:
            if version > self._tokens.get(user, 0):
                self._tokens[user] = version

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def execute(
        self,
        user: str,
        operation,
        strict: bool = False,
        deadline: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ):
        """Apply an update as ``user`` -- always on the current primary.

        Exactly :meth:`DatabaseServer.execute` (admission, breaker,
        retry, deadline, exactly-once dedup), plus the consistency
        bookkeeping: the user's token advances to the committed
        version, so their next read is only served by a copy that has
        applied this write.

        Raises:
            StaleEpochError: the primary's epoch has fallen behind the
                router's (it was deposed); the write is never applied
                and never acknowledged.
        """
        primary = self._primary
        if primary.epoch < self._epoch:
            self._count("fenced_writes")
            raise StaleEpochError(
                f"write refused: primary at epoch {primary.epoch} was "
                f"deposed (cluster epoch {self._epoch})",
                epoch=primary.epoch,
                current=self._epoch,
            )
        try:
            result = primary.execute(
                user,
                operation,
                strict=strict,
                deadline=deadline,
                idempotency_key=idempotency_key,
            )
        except StaleEpochError:
            self._count("fenced_writes")
            raise
        self._count("writes_routed")
        self._advance_token(user, primary.database.version)
        return result

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def view(self, user: str, deadline: Optional[float] = None):
        """The user's authorized view, from the freshest eligible copy."""
        return self._route_read(user, lambda s: s.view(), "view", deadline)

    def query(self, user: str, path: str, deadline: Optional[float] = None):
        """Evaluate XPath on the user's view (replica when fresh enough)."""
        return self._route_read(
            user, lambda s: s.query(path), "query", deadline
        )

    def select(self, user: str, path: str, deadline: Optional[float] = None):
        """Evaluate a path to a node-set (replica when fresh enough)."""
        return self._route_read(
            user, lambda s: s.select(path), "select", deadline
        )

    def read_xml(
        self,
        user: str,
        indent: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> str:
        """The user's view as XML (replica when fresh enough)."""
        return self._route_read(
            user, lambda s: s.read_xml(indent=indent), "read_xml", deadline
        )

    def _route_read(self, user, fn, what, budget):
        token = self.token(user)
        started = self._clock()
        deadline = Deadline(
            budget if budget is not None else self._max_wait,
            clock=self._clock,
        )
        waited_once = False
        while True:
            replica = self._pick(token)
            if replica is not None:
                try:
                    result, version = replica.serve(user, fn)
                except ReplicaDiverged:
                    # Quarantined between picking and serving: never a
                    # client-visible failure, just not this copy.
                    self._count("quarantine_skips")
                    continue
                if waited_once:
                    self._count("stale_waits")
                self._count("reads_to_replicas")
                self._finish(
                    user, token, version, replica.replica_id, started
                )
                return result
            if deadline.expired:
                break
            # Nobody fresh enough yet: pull the lag down within budget.
            waited_once = True
            if self._poll_replicas:
                for candidate in list(self._replicas):
                    if candidate.quarantined:
                        continue
                    try:
                        candidate.poll()
                    except ReplicaDiverged:
                        self._count("quarantine_skips")
                if self._pick(token) is not None:
                    continue  # a poll got someone fresh; serve next loop
            remaining = deadline.remaining()
            if remaining <= 0:
                break
            self._sleep(min(0.001, remaining))
        if waited_once:
            self._count("stale_waits")
            self._count("stale_fallthroughs")
        result = self._primary_read(user, fn, what)
        version = self._primary.database.version
        self._count("reads_to_primary")
        self._finish(user, token, version, "primary", started)
        return result

    def _primary_read(self, user, fn, what):
        # Ride the primary server's full read discipline (admission,
        # deadline default, shared lock) through its internal hook.
        return self._primary._read(user, fn, None, what)

    def _pick(self, token: int) -> Optional[Replica]:
        """A non-quarantined replica at or past ``token``.

        Every candidate already satisfies the consistency floor, so
        freshness beyond it buys nothing -- the pick rotates through
        the eligible pool to spread read load across replicas.
        """
        candidates = []
        for replica in self._replicas:
            if replica.quarantined:
                self._count("quarantine_skips")
                continue
            if replica.version >= token:
                candidates.append(replica)
        if not candidates:
            return None
        with self._lock:
            self._rr += 1
            return candidates[self._rr % len(candidates)]

    def _finish(self, user, token, version, source, started) -> None:
        self._advance_token(user, version)
        if self._trace:
            self.decisions.append(
                RouteDecision(
                    user=user,
                    token=token,
                    served_version=version,
                    source=source,
                    waited=max(0.0, self._clock() - started),
                )
            )

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The routing ledger plus per-replica health and lag.

        ``replicas`` holds one :meth:`Replica.stats` dict per member,
        each extended with ``lag`` (records behind the primary's
        write-ahead log, 0 when no log is attached).
        """
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
        wal = self._primary.database.wal
        primary_lsn = wal.lsn if wal is not None else None
        members = []
        for replica in self._replicas:
            entry = replica.stats()
            entry["lag"] = (
                replica.lag(primary_lsn) if primary_lsn is not None else 0
            )
            members.append(entry)
        out["replica_count"] = len(members)
        out["max_lag"] = max((m["lag"] for m in members), default=0)
        out["replicas"] = members
        out["primary_version"] = self._primary.database.version
        out["epoch"] = self._epoch
        out["primary_epoch"] = self._primary.epoch
        out["primary_fenced"] = self._primary.fenced
        return out
