"""View derivation (axioms 15-17), including the paper's figure 1."""

import pytest

from repro.security import (
    Policy,
    Privilege,
    SubjectHierarchy,
    ViewBuilder,
)
from repro.xmltree import RESTRICTED, parse_xml, render_tree


@pytest.fixture
def builder():
    return ViewBuilder()


def select(doc, path):
    from repro.xpath import XPathEngine

    return XPathEngine(star_matches_text=True).select(doc, path)


class TestFigure1:
    """The paper's figure 1: read on everything except the patient
    name, position on the name -> RESTRICTED in the view."""

    @pytest.fixture
    def fig1(self, builder):
        doc = parse_xml(
            "<patients><robert><diagnosis>pneumonia</diagnosis></robert></patients>"
        )
        subjects = SubjectHierarchy()
        subjects.add_user("s")
        policy = Policy(subjects)
        policy.grant("read", "//*", "s")
        policy.deny("read", "/patients/robert", "s")
        policy.grant("position", "/patients/robert", "s")
        return builder.build(doc, policy, "s")

    def test_right_tree_of_figure_1(self, fig1):
        assert render_tree(fig1.doc).split("\n") == [
            "/",
            "  /patients",
            "    /RESTRICTED",
            "      /diagnosis",
            "        text()pneumonia",
        ]

    def test_restricted_set(self, fig1):
        assert len(fig1.restricted) == 1
        (nid,) = fig1.restricted
        assert fig1.label(nid) == RESTRICTED
        assert fig1.is_restricted(nid)

    def test_descendants_of_restricted_still_visible(self, fig1):
        diagnosis = select(fig1.doc, "//diagnosis")
        assert len(diagnosis) == 1
        assert not fig1.is_restricted(diagnosis[0])


class TestAxiom15:
    def test_document_node_always_in_view(self, builder):
        doc = parse_xml("<r/>")
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)  # empty: denies everything
        view = builder.build(doc, policy, "u")
        assert view.doc.document_node.is_document
        assert len(view.doc) == 1  # nothing else survives


class TestAxiom16And17:
    @pytest.fixture
    def setup(self):
        doc = parse_xml("<r><a><b>t</b></a><c/></r>")
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)
        return doc, subjects, policy

    def test_read_shows_label(self, setup, builder):
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        view = builder.build(doc, policy, "u")
        assert view.facts() == doc.facts()
        assert view.restricted == frozenset()

    def test_position_shows_restricted(self, setup, builder):
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        policy.deny("read", "//b", "u")
        policy.grant("position", "//b", "u")
        view = builder.build(doc, policy, "u")
        b = select(doc, "//b")[0]
        assert view.label(b) == RESTRICTED

    def test_read_beats_position(self, setup, builder):
        """Axiom 17 applies only when read is absent."""
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        policy.grant("position", "//b", "u")  # position AND read
        view = builder.build(doc, policy, "u")
        b = select(doc, "//b")[0]
        assert view.label(b) == "b"
        assert not view.is_restricted(b)

    def test_no_privilege_prunes_subtree(self, setup, builder):
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        policy.deny("read", "//a", "u")
        # No position on a: the whole a-subtree disappears, even though
        # read on b is still granted (the parent-selection condition).
        view = builder.build(doc, policy, "u")
        assert select(view.doc, "//a") == []
        assert select(view.doc, "//b") == []
        assert len(select(view.doc, "//c")) == 1

    def test_orphan_grant_without_parent_is_invisible(self, setup, builder):
        """read on a deep node whose ancestors are invisible: pruned."""
        doc, _subjects, policy = setup
        policy.grant("read", "//b", "u")  # but not on a or r
        view = builder.build(doc, policy, "u")
        assert len(view.doc) == 1  # document node only

    def test_view_is_parent_closed(self, setup, builder):
        """Every non-document view node has its parent in the view."""
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        policy.deny("read", "//b", "u")
        policy.grant("position", "//b", "u")
        view = builder.build(doc, policy, "u")
        for nid in view.doc.all_nodes():
            if not nid.is_document:
                assert nid.parent() in view.doc

    def test_identifiers_not_renumbered(self, setup, builder):
        """Section 4.4.1: selected nodes keep their source numbers."""
        doc, _subjects, policy = setup
        policy.grant("read", "//node()", "u")
        view = builder.build(doc, policy, "u")
        assert {n for n in view.doc.all_nodes()} <= {
            n for n in doc.all_nodes()
        }


class TestViewsArePerUser:
    def test_four_paper_views(self, db):
        """Section 4.4.1's four views, via the database facade."""
        secretary = db.login("beaufort").read_tree()
        assert "text()RESTRICTED" in secretary
        assert "tonsillitis" not in secretary
        assert "/franck" in secretary

        robert = db.login("robert").read_tree()
        assert "/robert" in robert
        assert "franck" not in robert
        assert "pneumonia" in robert

        richard = db.login("richard").read_tree()
        assert "/RESTRICTED" in richard
        assert "franck" not in richard
        assert "tonsillitis" in richard

        laporte = db.login("laporte").read_tree()
        assert "RESTRICTED" not in laporte
        assert "tonsillitis" in laporte


class TestAttributesInViews:
    def test_attribute_requires_privilege(self, builder):
        doc = parse_xml('<r id="7"><a/></r>')
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)
        policy.grant("read", "//node()", "u")  # node() excludes attributes
        view = builder.build(doc, policy, "u")
        assert view.doc.attributes(view.doc.root) == []

    def test_attribute_granted_via_attribute_axis(self, builder):
        doc = parse_xml('<r id="7"><a/></r>')
        subjects = SubjectHierarchy()
        subjects.add_user("u")
        policy = Policy(subjects)
        policy.grant("read", "//node()", "u")
        policy.grant("read", "//@*", "u")
        view = builder.build(doc, policy, "u")
        assert view.doc.attribute_value(view.doc.root, "id") == "7"
