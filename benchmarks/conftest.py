"""Shared generators for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1-E15).  The paper has no measurement tables -- its evaluation
artifacts are worked examples -- so E1-E11 time the exact reproduction
of those examples (asserting the paper's printed output inside the
benched function), and E12-E15 are the added scaling/ablation studies.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import random

import pytest

from repro.core import PAPER_POLICY_RULES, hospital_database
from repro.security import SecureXMLDatabase
from repro.xmltree import XMLDocument, element

SERVICES = ["cardiology", "pneumology", "oncology", "otolarynology"]
ILLNESSES = ["angina", "pneumonia", "lymphoma", "tonsillitis", "asthma"]


def synthetic_hospital(patients: int, seed: int = 2005) -> SecureXMLDatabase:
    """A hospital database with ``patients`` records under the paper's
    subject hierarchy and equation-13 policy."""
    rng = random.Random(seed)
    doc = XMLDocument()
    root = doc.add_root("patients")
    for index in range(patients):
        record = element(
            f"patient{index:05d}",
            element("service", rng.choice(SERVICES)),
            element("diagnosis", rng.choice(ILLNESSES)),
        )
        record.attach(doc, root)
    db = hospital_database()
    # Reuse the paper's subjects/policy against the synthetic document.
    return SecureXMLDatabase(doc, db.subjects, db.policy)


@pytest.fixture
def paper_db():
    """The exact running example of the paper."""
    return hospital_database()


def print_series(title: str, rows) -> None:
    """Emit a small table into the benchmark output (run with -s)."""
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + " | ".join(str(c) for c in row))
