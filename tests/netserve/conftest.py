"""Shared fixtures for the network front-end suites."""

import contextlib

import pytest

from repro.netserve import NetClient, serve_in_thread
from repro.serving import DatabaseServer
from repro.testing.faults import faults
from repro.wal import WriteAheadLog

from tests.wal.conftest import append_script, editors_database  # noqa: F401


@pytest.fixture(autouse=True)
def clean_injector():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def wal_dir(tmp_path):
    return str(tmp_path / "db.wal")


@contextlib.contextmanager
def served(wal_dir, *, server_options=None, **net_options):
    """A live network stack over a fresh editors database: yields
    ``(handle, server)`` with the listener accepting and the WAL
    checkpointed; everything is torn down on exit."""
    db = editors_database()
    wal = WriteAheadLog(wal_dir, fsync="always")
    db.attach_wal(wal)
    wal.checkpoint(db)
    server = DatabaseServer(db, **(server_options or {}))
    handle = serve_in_thread(server, **net_options)
    try:
        yield handle, server
    finally:
        handle.stop()


def connect(handle, user=None, timeout=10.0):
    """A blocking client on the handle's port, optionally logged in."""
    client = NetClient(handle.host, handle.port, timeout=timeout)
    if user is not None:
        client.open_session(user)
    return client
