"""Lazy (filter-based) enforcement equals materialized views.

The paper's conclusion asks whether filtered evaluation on the source
can produce answers "compatible with the authorized views", RESTRICTED
labels included.  These tests prove the two strategies coincide --
pointwise on the paper's example and differentially on random
documents, policies, queries and updates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import (
    LazyView,
    SecureWriteExecutor,
    ViewBuilder,
    build_lazy_view,
)
from repro.xmltree import RESTRICTED, serialize
from repro.xpath import XPathEngine
from repro.xupdate import Remove, Rename, UpdateContent

from tests.strategies import (
    RULE_PATHS,
    build_policy,
    build_subjects,
    documents,
    policy_rules,
)

ENGINE = XPathEngine(lone_variable_name_test=True, star_matches_text=True)
BUILDER = ViewBuilder()

QUERY_PATHS = [
    "//*",
    "//node()",
    "//text()",
    "//a",
    "//a/*",
    "/*/*",
    "//*[1]",
    "count(//*)",
    "string(/*)",
    "//a/following-sibling::*",
    "//b/ancestor::*",
]


class TestPaperExample:
    def test_facts_identical(self, db):
        for user in ("beaufort", "robert", "richard", "laporte"):
            lazy = db.build_lazy_view(user)
            materialized = db.build_view(user)
            assert lazy.facts() == materialized.facts()

    def test_serialization_identical(self, db):
        for user in ("beaufort", "richard"):
            assert (
                db.login(user, enforcement="lazy").read_xml()
                == db.login(user).read_xml()
            )

    def test_restricted_labels_surface(self, db):
        lazy = db.build_lazy_view("beaufort")
        restricted = [n for n in lazy.all_nodes() if lazy.is_restricted(n)]
        assert len(restricted) == 2  # both diagnosis texts
        for nid in restricted:
            assert lazy.label(nid) == RESTRICTED
            assert db.document.label(nid) != RESTRICTED  # source intact

    def test_invisible_node_raises(self, db):
        from repro.xmltree import DocumentError

        lazy = db.build_lazy_view("robert")
        franck = db.engine.select(db.document, "//franck")[0]
        assert franck not in lazy
        with pytest.raises(DocumentError):
            lazy.node(franck)
        assert lazy.get(franck) is None

    def test_string_value_hides_invisible_text(self, db):
        lazy = db.build_lazy_view("beaufort")
        # For the secretary, element string-values read RESTRICTED in
        # place of the diagnosis text -- same as the materialized view.
        materialized = db.build_view("beaufort")
        for nid in lazy.all_nodes():
            assert lazy.string_value(nid) == materialized.doc.string_value(nid)

    def test_covert_channel_closed_in_lazy_mode(self, db):
        probe = Rename("/patients/*[diagnosis/text()='pneumonia']", "x")
        result = db.login("beaufort", enforcement="lazy").execute(probe)
        assert result.selected == []

    def test_enforcement_property_and_validation(self, db):
        assert db.login("robert").enforcement == "materialized"
        assert db.login("robert", enforcement="lazy").enforcement == "lazy"
        with pytest.raises(ValueError):
            db.login("robert", enforcement="eager")


@given(documents(), policy_rules())
@settings(max_examples=80, deadline=None)
def test_fact_sets_differentially_equal(doc, rules):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    lazy = build_lazy_view(doc, policy, "u2")
    materialized = BUILDER.build(doc, policy, "u2")
    assert lazy.facts() == materialized.facts()


@given(documents(), policy_rules(), st.sampled_from(QUERY_PATHS))
@settings(max_examples=100, deadline=None)
def test_queries_differentially_equal(doc, rules, query):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    lazy = build_lazy_view(doc, policy, "u2")
    materialized = BUILDER.build(doc, policy, "u2")
    assert ENGINE.evaluate(lazy, query) == ENGINE.evaluate(
        materialized.doc, query
    )


@given(
    documents(),
    policy_rules(),
    st.sampled_from(RULE_PATHS),
    st.sampled_from(["rename", "update", "remove"]),
)
@settings(max_examples=80, deadline=None)
def test_secure_writes_differentially_equal(doc, rules, path, kind):
    """The write executor produces identical dbnew under either view."""
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    if kind == "rename":
        op = Rename(path, "zzz")
    elif kind == "update":
        op = UpdateContent(path, "zzz")
    else:
        op = Remove(path)
    executor = SecureWriteExecutor()
    via_lazy = executor.apply(build_lazy_view(doc, policy, "u2"), op)
    via_materialized = executor.apply(BUILDER.build(doc, policy, "u2"), op)
    assert via_lazy.document.facts() == via_materialized.document.facts()
    assert via_lazy.selected == via_materialized.selected
    assert len(via_lazy.denials) == len(via_materialized.denials)


@given(documents(), policy_rules())
@settings(max_examples=60, deadline=None)
def test_serialize_works_on_lazy_views(doc, rules):
    subjects = build_subjects()
    policy = build_policy(subjects, rules)
    lazy = build_lazy_view(doc, policy, "u1")
    materialized = BUILDER.build(doc, policy, "u1")
    assert serialize(lazy) == serialize(materialized.doc)


class TestLazyRendering:
    def test_read_tree_on_lazy_session(self, db):
        lazy = db.login("richard", enforcement="lazy").read_tree()
        materialized = db.login("richard").read_tree()
        assert lazy == materialized
        assert "/RESTRICTED" in lazy
