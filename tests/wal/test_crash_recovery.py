"""Crash-recovery soaks: seeded schedules, random kill-points, and the
one invariant that matters -- recovery restores exactly the committed
prefix.

Each schedule drives a *primary* database (write-ahead logged) and a
*shadow* database (same deterministic construction, no log) through the
same action sequence.  A seeded RNG occasionally arms a durability
kill-point before an action; when the injected crash fires, the primary
is abandoned mid-flight -- exactly what a process death leaves behind --
and rebuilt with :func:`repro.wal.recover`.  The recovered state must
equal the shadow, or the shadow *after* the pending action (the
durable-but-unacknowledged window of ``wal-before-fsync``); nothing
else is acceptable.  The shadow is then synced and the run continues on
the recovered database with a re-opened log, so every schedule also
exercises recover-then-resume.

The hypothesis properties generalize the torn-tail handling: *any*
byte-level truncation of the log's last segment must recover to some
exact committed prefix -- never garbage, never a crash -- and repair
must be idempotent.
"""

import itertools
import os
import random
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing.faults import InjectedFault, faults
from repro.wal import WriteAheadLog, recover, scan_directory

from .conftest import USERS, append_script, editors_database, state_of

pytestmark = pytest.mark.recovery

KILL_CHOICES = (
    "wal-before-append",
    "wal-mid-record",
    "wal-before-fsync",
    "checkpoint-mid-snapshot",
)


# ---------------------------------------------------------------------------
# the deterministic action pool
# ---------------------------------------------------------------------------
def make_action(rng: random.Random, counter):
    """One deterministic action, applicable to primary and shadow alike.

    Every action appends at most ONE log record, so a crash anywhere
    leaves exactly two possible recovered states: without the action or
    with it (users are added without a role for that reason -- the
    membership edge would be a second record).
    """
    roll = rng.random()
    n = next(counter)
    if roll < 0.50:
        user = rng.choice(USERS)
        script = append_script(f"e{n}")
        return f"execute e{n}", lambda db: db.login(user).execute(script)
    if roll < 0.65:
        script = append_script(f"adm{n}")
        return f"admin adm{n}", lambda db: db.admin_update(script)
    if roll < 0.78:
        return f"add_user u{n}", lambda db: db.subjects.add_user(f"u{n}")
    if roll < 0.90:
        return (
            f"grant g{n}",
            lambda db: db.policy.grant("read", f"/log/e{n}", "editor"),
        )

    def checkpoint(db):
        if db.wal is not None:
            db.wal.checkpoint(db)

    return "checkpoint", checkpoint


def run_schedule(seed: int, wal_dir: str, steps: int = 8) -> None:
    """Drive one seeded schedule; assert the invariant at every crash."""
    rng = random.Random(seed)
    counter = itertools.count(1)
    primary = editors_database()
    shadow = editors_database()
    wal = WriteAheadLog(wal_dir)
    primary.attach_wal(wal)
    wal.checkpoint(primary)
    crashes = 0

    for step in range(steps):
        label, action = make_action(rng, counter)
        armed = None
        if rng.random() < 0.45:
            armed = rng.choice(KILL_CHOICES)
            faults.arm(armed)
        where = f"seed={seed} step={step} action={label} armed={armed}"
        try:
            action(primary)
        except InjectedFault:
            crashes += 1
            # The crash: whatever the primary's memory held is gone.
            primary.detach_wal().close()
            result = recover(wal_dir, repair=True)
            recovered_state = state_of(result.database)
            if recovered_state != state_of(shadow):
                # Only one other state is legal: the pending action made
                # it to disk before the crash (durable, unacknowledged).
                action(shadow)
                assert recovered_state == state_of(shadow), (
                    f"{where}: recovered state is neither the committed "
                    f"prefix nor prefix+pending"
                )
            primary = result.database
            primary.attach_wal(WriteAheadLog(wal_dir))
        else:
            action(shadow)
            assert primary.version == shadow.version, where
        finally:
            faults.disarm()

    assert state_of(primary) == state_of(shadow), f"seed={seed} final drift"
    primary.detach_wal().close()
    final = recover(wal_dir, repair=True)
    assert state_of(final.database) == state_of(shadow), (
        f"seed={seed}: final recovery diverged (crashes={crashes})"
    )


def test_soak_220_seeded_crash_schedules(tmp_path):
    for seed in range(220):
        wal_dir = str(tmp_path / f"s{seed}")
        run_schedule(seed, wal_dir)
        shutil.rmtree(wal_dir)


def test_single_seed_is_reproducible(tmp_path):
    """The soak's one-line reproduction: a seed replays its schedule."""
    for attempt in ("a", "b"):
        run_schedule(7, str(tmp_path / attempt))


# ---------------------------------------------------------------------------
# hypothesis: arbitrary torn tails
# ---------------------------------------------------------------------------
N_COMMITS = 8


@pytest.fixture(scope="module")
def reference_log(tmp_path_factory):
    """A clean log of N deterministic commits, plus the expected state
    after every prefix length."""
    wal_dir = str(tmp_path_factory.mktemp("ref") / "db.wal")
    db = editors_database()
    db.attach_wal(WriteAheadLog(wal_dir))
    db.wal.checkpoint(db)
    states = [state_of(db)]
    for i in range(1, N_COMMITS + 1):
        db.login(USERS[i % len(USERS)]).execute(append_script(f"e{i}"))
        states.append(state_of(db))
    db.detach_wal().close()
    return wal_dir, states


@settings(max_examples=60, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.0))
def test_any_truncation_recovers_an_exact_prefix(reference_log, fraction):
    reference_dir, states = reference_log
    work = tempfile.mkdtemp(prefix="wal-cut-")
    try:
        wal_dir = os.path.join(work, "db.wal")
        shutil.copytree(reference_dir, wal_dir)
        last = sorted(
            os.path.join(wal_dir, n)
            for n in os.listdir(wal_dir)
            if n.startswith("segment-")
        )[-1]
        size = os.path.getsize(last)
        cut = int(fraction * size)
        with open(last, "r+b") as handle:
            handle.truncate(cut)

        result = recover(wal_dir, repair=True)
        version = result.version
        assert 0 <= version <= N_COMMITS
        assert state_of(result.database) == states[version]
        # repair is idempotent: the cut directory now reads clean
        assert scan_directory(wal_dir).torn is None
        again = recover(wal_dir)
        assert again.report.clean
        assert state_of(again.database) == states[version]
    finally:
        shutil.rmtree(work)


@settings(max_examples=25, deadline=None)
@given(
    choices=st.lists(
        st.integers(min_value=0, max_value=2 ** 30), max_size=10
    )
)
def test_no_fault_recovery_equals_the_live_database(choices):
    """Without crashes, recover() is a pure function of the history."""
    work = tempfile.mkdtemp(prefix="wal-live-")
    try:
        wal_dir = os.path.join(work, "db.wal")
        counter = itertools.count(1)
        db = editors_database()
        db.attach_wal(WriteAheadLog(wal_dir))
        db.wal.checkpoint(db)
        for choice in choices:
            _label, action = make_action(random.Random(choice), counter)
            action(db)
        expected = state_of(db)
        db.detach_wal().close()
        result = recover(wal_dir)
        assert result.report.clean
        assert state_of(result.database) == expected
    finally:
        shutil.rmtree(work)
