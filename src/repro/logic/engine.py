"""Bottom-up, semi-naive Datalog evaluation with stratified negation.

This is the runtime behind the :mod:`repro.formal` transcription of the
paper's axioms.  Evaluation is the textbook fixpoint:

1. stratify the program (negation only over lower strata);
2. within a stratum, iterate rules semi-naively -- each pass joins one
   delta occurrence of a recursive predicate against full relations
   elsewhere -- until no new tuples appear.

Relations index their tuples by (position, value) on demand, which keeps
joins near-linear for the paper's geometry and view rules.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .program import Program, StratificationError
from .terms import Atom, BodyItem, Comparison, Literal, Rule, Substitution, Term, Var

__all__ = ["DatalogEngine", "Relation"]


class Relation:
    """A set of same-arity tuples with lazy per-position hash indexes."""

    def __init__(self, tuples: Optional[Iterable[Tuple[object, ...]]] = None) -> None:
        self.tuples: Set[Tuple[object, ...]] = set(tuples or ())
        self._indexes: Dict[int, Dict[object, List[Tuple[object, ...]]]] = {}

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.tuples)

    def add(self, row: Tuple[object, ...]) -> bool:
        """Insert a tuple; returns True if it was new."""
        if row in self.tuples:
            return False
        self.tuples.add(row)
        for position, index in self._indexes.items():
            if position < len(row):
                index.setdefault(row[position], []).append(row)
        return True

    def candidates(
        self, pattern: Sequence[Term], binding: Substitution
    ) -> Iterable[Tuple[object, ...]]:
        """Rows that could match ``pattern`` under ``binding``.

        Uses an index on the first bound position; unconstrained
        patterns fall back to a full scan.
        """
        for position, term in enumerate(pattern):
            if isinstance(term, Var):
                if term.name in binding:
                    value = binding[term.name]
                else:
                    continue
            else:
                value = term
            index = self._indexes.get(position)
            if index is None:
                index = defaultdict(list)
                for row in self.tuples:
                    if position < len(row):
                        index[row[position]].append(row)
                self._indexes[position] = dict(index)
            return self._indexes[position].get(value, ())
        return self.tuples


def _unify_row(
    pattern: Sequence[Term], row: Tuple[object, ...], binding: Substitution
) -> Optional[Substitution]:
    """Extend ``binding`` so that ``pattern`` matches ``row``, or None."""
    if len(pattern) != len(row):
        return None
    out = binding
    copied = False
    for term, value in zip(pattern, row):
        if isinstance(term, Var):
            bound = out.get(term.name, _MISSING)
            if bound is _MISSING:
                if not copied:
                    out = dict(out)
                    copied = True
                out[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return out


_MISSING = object()


class DatalogEngine:
    """Evaluates a :class:`~repro.logic.program.Program` to a fixpoint."""

    def __init__(self, program: Program) -> None:
        self._program = program
        self._relations: Dict[str, Relation] = {}
        self._solved = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self) -> Dict[str, Set[Tuple[object, ...]]]:
        """Compute all derivable facts; idempotent.

        Returns:
            predicate -> set of tuples, extensional facts included.

        Raises:
            StratificationError: for non-stratifiable programs.
        """
        if not self._solved:
            self._evaluate()
            self._solved = True
        return {p: set(r.tuples) for p, r in self._relations.items()}

    def query(self, predicate: str, *pattern: Term) -> List[Tuple[object, ...]]:
        """All derived tuples of ``predicate`` matching a pattern.

        Pattern positions may be constants or :class:`Var` (wildcards).
        """
        self.solve()
        relation = self._relations.get(predicate)
        if relation is None:
            return []
        if not pattern:
            return sorted(relation.tuples, key=repr)
        out = []
        for row in relation.candidates(pattern, {}):
            if _unify_row(pattern, row, {}) is not None:
                out.append(row)
        return sorted(out, key=repr)

    def holds(self, predicate: str, *args: object) -> bool:
        """True if the ground atom is derivable."""
        self.solve()
        relation = self._relations.get(predicate)
        return relation is not None and tuple(args) in relation.tuples

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        for predicate, tuples in self._program.extensional_facts.items():
            self._relations[predicate] = Relation(tuples)
        for stratum in self._program.stratify():
            self._evaluate_stratum(stratum)

    def _relation(self, predicate: str) -> Relation:
        relation = self._relations.get(predicate)
        if relation is None:
            relation = Relation()
            self._relations[predicate] = relation
        return relation

    def _evaluate_stratum(self, rules: List[Rule]) -> None:
        heads = {rule.head.predicate for rule in rules}
        plans = [(rule, _plan(rule)) for rule in rules]

        # Naive first round seeds the deltas.
        delta: Dict[str, Set[Tuple[object, ...]]] = {h: set() for h in heads}
        for rule, plan in plans:
            for row in self._derive(plan, rule, None, heads):
                if self._relation(rule.head.predicate).add(row):
                    delta[rule.head.predicate].add(row)

        # Semi-naive iterations: only joins touching a delta tuple.
        while any(delta.values()):
            new_delta: Dict[str, Set[Tuple[object, ...]]] = {h: set() for h in heads}
            for rule, plan in plans:
                recursive_positions = [
                    i
                    for i, item in enumerate(plan)
                    if isinstance(item, Literal)
                    and not item.negated
                    and item.atom.predicate in heads
                ]
                for position in recursive_positions:
                    predicate = plan[position].atom.predicate  # type: ignore[union-attr]
                    if not delta.get(predicate):
                        continue
                    for row in self._derive(
                        plan, rule, (position, Relation(delta[predicate])), heads
                    ):
                        if self._relation(rule.head.predicate).add(row):
                            new_delta[rule.head.predicate].add(row)
            delta = new_delta

    def _derive(
        self,
        plan: Sequence[BodyItem],
        rule: Rule,
        delta_at: Optional[Tuple[int, Relation]],
        current_heads: Set[str],
    ) -> Iterator[Tuple[object, ...]]:
        """All head tuples derivable from one rule under one delta slot."""
        bindings: List[Substitution] = [{}]
        for index, item in enumerate(plan):
            if not bindings:
                return
            if isinstance(item, Comparison):
                bindings = [b for b in bindings if item.holds(b)]
                continue
            assert isinstance(item, Literal)
            if item.negated:
                bindings = [
                    b for b in bindings if not self._exists(item.atom, b)
                ]
                continue
            if delta_at is not None and index == delta_at[0]:
                relation = delta_at[1]
            else:
                relation = self._relation(item.atom.predicate)
            next_bindings: List[Substitution] = []
            for binding in bindings:
                for row in relation.candidates(item.atom.args, binding):
                    extended = _unify_row(item.atom.args, row, binding)
                    if extended is not None:
                        next_bindings.append(extended)
            bindings = next_bindings
        for binding in bindings:
            head = rule.head.substitute(binding)
            assert head.is_ground(), f"unsafe rule slipped through: {rule!r}"
            yield head.args

    def _exists(self, pattern: Atom, binding: Substitution) -> bool:
        """Existential check for a (possibly partially-bound) negated atom."""
        relation = self._relations.get(pattern.predicate)
        if relation is None:
            return False
        for row in relation.candidates(pattern.args, binding):
            if _unify_row(pattern.args, row, binding) is not None:
                return True
        return False


def _plan(rule: Rule) -> List[BodyItem]:
    """Order body items so negations/comparisons run once bound.

    Positive literals keep their given order; each negation or
    comparison is placed immediately after the positives that bind its
    (non-local) variables.
    """
    positives = [
        item
        for item in rule.body
        if isinstance(item, Literal) and not item.negated
    ]
    guarded = [
        item
        for item in rule.body
        if isinstance(item, Comparison)
        or (isinstance(item, Literal) and item.negated)
    ]
    plan: List[BodyItem] = []
    bound: Set[str] = set()
    pending = list(guarded)
    for literal in positives:
        plan.append(literal)
        bound |= literal.variables()
        still_pending = []
        for item in pending:
            needed = item.variables()
            if isinstance(item, Literal):
                # Local existential variables need no binding.
                needed = needed & (rule.positive_variables() | rule.head.variables())
            if needed <= bound:
                plan.append(item)
            else:
                still_pending.append(item)
        pending = still_pending
    plan.extend(pending)
    return plan
