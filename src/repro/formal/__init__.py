"""The paper's axioms as executable logic (the Prolog prototype's role).

- :mod:`repro.formal.geometry` -- theory ``db``: facts + tree axioms;
- :mod:`repro.formal.paths` -- ``xpath/3`` as compiled Datalog rules;
- :mod:`repro.formal.axioms` -- axioms 11-25: isa closure, perm, views,
  secure updates, derived purely by bottom-up inference.

Used throughout the test suite as a differential oracle against the
procedural engine in :mod:`repro.security`.
"""

from .axioms import FormalModel
from .geometry import document_facts, document_theory, geometry_rules
from .paths import PathCompiler, UnsupportedPathError

__all__ = [
    "FormalModel",
    "PathCompiler",
    "UnsupportedPathError",
    "document_facts",
    "document_theory",
    "geometry_rules",
]
